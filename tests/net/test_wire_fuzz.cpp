// Protocol fuzz suite (ISSUE 9 satellite): property tests that every
// message type survives encode -> decode bit-exactly for randomized
// contents, plus a seeded mutation fuzzer — byte flips, truncations,
// extensions, length-field lies, version/magic/type skew — proving the
// decoder never crashes, never over-reads (run under ASan/UBSan in CI's
// fabric job), and never accepts a malformed frame as a different value.
//
// Extends the PR-4 JSON-fuzz pattern (tests/common/test_json_fuzz.cpp)
// to the binary framing layer. Mutation counts: ≥10k seeded mutations in
// one run (the CI acceptance floor), deterministic via fixed seeds.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace impress::net {
namespace {

std::string random_string(std::mt19937_64& rng, std::size_t max_len) {
  static const std::string alphabet =
      "abcXYZ 0129_{}[]\"\\\n\t\x01\x7f\xc3\xa9";
  std::string s;
  const std::size_t len = rng() % (max_len + 1);
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s += alphabet[rng() % alphabet.size()];
  return s;
}

Message random_message(std::mt19937_64& rng) {
  switch (rng() % kMsgTypeCount) {
    case 0: {
      HelloMsg m;
      m.worker_id = static_cast<std::uint32_t>(rng());
      m.wire_version = kWireVersion;
      m.slots = static_cast<std::uint32_t>(rng() % 64);
      m.build_tag = random_string(rng, 24);
      return m;
    }
    case 1: {
      AssignShardMsg m;
      m.shard_id = static_cast<std::uint32_t>(rng() % 1024);
      m.epoch = static_cast<std::uint32_t>(rng() % 1024);
      m.seed = rng();
      m.campaign_name = random_string(rng, 16);
      const std::size_t n = rng() % 6;
      for (std::size_t i = 0; i < n; ++i)
        m.target_names.push_back(random_string(rng, 12));
      m.checkpoint_ordinal = rng() % 100;
      m.checkpoint_json = random_string(rng, 200);
      return m;
    }
    case 2: {
      TaskSubmitMsg m;
      m.shard_id = static_cast<std::uint32_t>(rng());
      m.epoch = static_cast<std::uint32_t>(rng());
      m.task_seq = rng();
      m.kind = rng() % 2 == 0 ? TaskSubmitMsg::Kind::kRunShard
                              : TaskSubmitMsg::Kind::kRemoteTask;
      m.payload = random_string(rng, 100);
      return m;
    }
    case 3: {
      TaskResultMsg m;
      m.shard_id = static_cast<std::uint32_t>(rng());
      m.epoch = static_cast<std::uint32_t>(rng());
      m.task_seq = rng();
      m.status = rng() % 2 == 0 ? TaskResultMsg::Status::kOk
                                : TaskResultMsg::Status::kError;
      m.payload = random_string(rng, 300);
      return m;
    }
    case 4: {
      HeartbeatMsg m;
      m.worker_id = static_cast<std::uint32_t>(rng());
      m.tick = rng();
      m.active_shard = rng() % 4 == 0 ? kNoShard
                                      : static_cast<std::uint32_t>(rng());
      m.busy = rng() % 2 == 0 ? 0 : 1;
      return m;
    }
    case 5: {
      CheckpointShardMsg m;
      m.shard_id = static_cast<std::uint32_t>(rng());
      m.epoch = static_cast<std::uint32_t>(rng());
      m.ordinal = rng();
      m.checkpoint_json = random_string(rng, 500);
      return m;
    }
    default: {
      WorkerDeadMsg m;
      m.worker_id = static_cast<std::uint32_t>(rng());
      m.shard_id = static_cast<std::uint32_t>(rng());
      m.epoch = static_cast<std::uint32_t>(rng());
      m.reason = random_string(rng, 40);
      return m;
    }
  }
}

/// Decode must either return a value or throw WireError — anything else
/// (other exception types, crash, over-read) fails the property.
bool decodes_cleanly(const std::vector<std::uint8_t>& frame) {
  try {
    (void)decode_frame(frame);
    return true;
  } catch (const WireError&) {
    return false;
  }
}

TEST(WireFuzz, RandomMessagesRoundTripBitExact) {
  std::mt19937_64 rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    const Message m = random_message(rng);
    const std::vector<std::uint8_t> frame = encode_frame(m);
    const Message back = decode_frame(frame);
    EXPECT_EQ(back, m) << "iteration " << i;
    // Canonical encoding: re-encoding the decoded value reproduces the
    // original bytes exactly.
    EXPECT_EQ(encode_frame(back), frame) << "iteration " << i;
  }
}

TEST(WireFuzz, SeededByteFlipsNeverCrashNeverOverread) {
  std::mt19937_64 rng(0xF00DF00D);
  std::size_t mutations = 0;
  std::size_t accepted_changed = 0;
  for (int doc = 0; doc < 500; ++doc) {
    const Message m = random_message(rng);
    const std::vector<std::uint8_t> original = encode_frame(m);
    for (int k = 0; k < 16; ++k, ++mutations) {
      std::vector<std::uint8_t> mutated = original;
      const std::size_t pos = rng() % mutated.size();
      mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
      try {
        const Message back = decode_frame(mutated);
        // Accepting a mutated frame is fine only if it decodes to a
        // well-formed message; count how often the value changed (a
        // payload-byte flip legitimately changes a string field).
        if (!(back == m)) ++accepted_changed;
      } catch (const WireError&) {
        // rejection is always acceptable
      }
    }
  }
  EXPECT_EQ(mutations, 8000u);
  EXPECT_GT(accepted_changed, 0u);  // the harness actually mutates payloads
}

TEST(WireFuzz, TruncationsAlwaysRejected) {
  std::mt19937_64 rng(0xBEEF);
  std::size_t cases = 0;
  for (int doc = 0; doc < 200; ++doc) {
    const std::vector<std::uint8_t> frame = encode_frame(random_message(rng));
    // Every strict prefix must be rejected: decode_frame demands exactly
    // one complete frame.
    for (std::size_t cut = 0; cut < frame.size();
         cut += 1 + rng() % 7, ++cases) {
      const std::vector<std::uint8_t> prefix(frame.begin(),
                                             frame.begin() + cut);
      EXPECT_FALSE(decodes_cleanly(prefix)) << "cut=" << cut;
    }
  }
  EXPECT_GT(cases, 1000u);
}

TEST(WireFuzz, ExtensionsAlwaysRejected) {
  std::mt19937_64 rng(0xCAFE);
  for (int doc = 0; doc < 500; ++doc) {
    std::vector<std::uint8_t> frame = encode_frame(random_message(rng));
    const std::size_t extra = 1 + rng() % 16;
    for (std::size_t i = 0; i < extra; ++i)
      frame.push_back(static_cast<std::uint8_t>(rng()));
    EXPECT_FALSE(decodes_cleanly(frame));
  }
}

TEST(WireFuzz, LengthFieldLiesRejected) {
  std::mt19937_64 rng(0x1E57);
  for (int doc = 0; doc < 500; ++doc) {
    const std::vector<std::uint8_t> original =
        encode_frame(random_message(rng));
    std::vector<std::uint8_t> mutated = original;
    // Overwrite the length field with an arbitrary lie (including huge
    // values probing for allocation bombs / over-reads).
    const std::uint32_t lie = static_cast<std::uint32_t>(rng());
    mutated[4] = static_cast<std::uint8_t>(lie);
    mutated[5] = static_cast<std::uint8_t>(lie >> 8);
    mutated[6] = static_cast<std::uint8_t>(lie >> 16);
    mutated[7] = static_cast<std::uint8_t>(lie >> 24);
    const std::uint32_t true_len =
        static_cast<std::uint32_t>(original.size() - kHeaderSize);
    if (lie != true_len) {
      EXPECT_FALSE(decodes_cleanly(mutated)) << "lie=" << lie;
    }
  }
}

TEST(WireFuzz, VersionAndMagicSkewRejected) {
  std::mt19937_64 rng(0x5EED);
  for (int doc = 0; doc < 300; ++doc) {
    const std::vector<std::uint8_t> original =
        encode_frame(random_message(rng));
    {
      std::vector<std::uint8_t> v = original;
      v[2] = static_cast<std::uint8_t>(kWireVersion + 1 + rng() % 250);
      EXPECT_FALSE(decodes_cleanly(v));
    }
    {
      std::vector<std::uint8_t> v = original;
      v[rng() % 2] ^= 0xFF;  // magic bytes
      EXPECT_FALSE(decodes_cleanly(v));
    }
    {
      std::vector<std::uint8_t> v = original;
      v[3] = static_cast<std::uint8_t>(kMsgTypeCount + 1 + rng() % 200);
      EXPECT_FALSE(decodes_cleanly(v));
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(424242);
  for (int doc = 0; doc < 2000; ++doc) {
    std::vector<std::uint8_t> garbage(rng() % 256);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    (void)decodes_cleanly(garbage);  // must not crash / over-read
  }
}

TEST(WireFuzz, AssemblerSurvivesMutatedStreams) {
  std::mt19937_64 rng(777);
  for (int doc = 0; doc < 300; ++doc) {
    // Concatenate a few frames, flip one byte, feed in random chunks.
    std::vector<std::uint8_t> stream;
    const std::size_t frames = 1 + rng() % 4;
    for (std::size_t i = 0; i < frames; ++i) {
      const std::vector<std::uint8_t> f = encode_frame(random_message(rng));
      stream.insert(stream.end(), f.begin(), f.end());
    }
    stream[rng() % stream.size()] ^=
        static_cast<std::uint8_t>(1u << (rng() % 8));

    FrameAssembler assembler;
    std::size_t pos = 0;
    try {
      while (pos < stream.size()) {
        const std::size_t n =
            std::min<std::size_t>(1 + rng() % 64, stream.size() - pos);
        assembler.feed(stream.data() + pos, n);
        pos += n;
        while (assembler.next()) {
        }
      }
    } catch (const WireError&) {
      EXPECT_TRUE(assembler.poisoned());
    }
  }
}

}  // namespace
}  // namespace impress::net
