// LoopbackNet transport tests: tick-gated delivery, chaos determinism
// (same seed + send order => identical drops, delays, and delivery
// order), stats accounting, and closed-link semantics.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "net/loopback.hpp"

namespace impress::net {
namespace {

HeartbeatMsg beat(std::uint32_t worker, std::uint64_t tick) {
  HeartbeatMsg m;
  m.worker_id = worker;
  m.tick = tick;
  m.active_shard = kNoShard;
  m.busy = 0;
  return m;
}

/// Drain everything deliverable right now, returning heartbeat ticks in
/// delivery order (all tests send heartbeats only).
std::vector<std::uint64_t> drain_ticks(Link& link) {
  std::vector<std::uint64_t> out;
  while (auto m = link.poll()) {
    out.push_back(std::get<HeartbeatMsg>(*m).tick);
  }
  return out;
}

TEST(Loopback, DeliversInSendOrderWithoutChaos) {
  LoopbackNet net;
  auto [a, b] = net.make_link_pair("coord", "w0");
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(a->send(beat(0, i)));
  }
  EXPECT_EQ(drain_ticks(*b), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(drain_ticks(*a), std::vector<std::uint64_t>{});  // directional
}

TEST(Loopback, DelayGatesDeliveryOnTick) {
  ChaosConfig chaos;
  chaos.delay_min = 3;
  chaos.delay_max = 3;
  LoopbackNet net(chaos);
  auto [a, b] = net.make_link_pair("coord", "w0");
  ASSERT_TRUE(a->send(beat(0, 42)));
  EXPECT_TRUE(drain_ticks(*b).empty());  // tick 0, due at 3
  net.advance(2);
  EXPECT_TRUE(drain_ticks(*b).empty());
  net.advance(1);
  EXPECT_EQ(drain_ticks(*b), std::vector<std::uint64_t>{42});
}

TEST(Loopback, ChaosReplayIsDeterministic) {
  ChaosConfig chaos;
  chaos.seed = 99;
  chaos.drop_rate = 0.25;
  chaos.reorder_rate = 0.3;
  chaos.delay_min = 0;
  chaos.delay_max = 4;

  const auto run = [&] {
    LoopbackNet net(chaos);
    auto [a, b] = net.make_link_pair("coord", "w0");
    std::vector<std::uint64_t> order;
    for (std::uint64_t i = 0; i < 200; ++i) {
      a->send(beat(0, i));
      net.advance(1);
      for (const std::uint64_t t : drain_ticks(*b)) order.push_back(t);
    }
    net.advance(64);  // flush stragglers
    for (const std::uint64_t t : drain_ticks(*b)) order.push_back(t);
    const LoopbackNet::Stats s = net.stats();
    return std::make_pair(order, s);
  };

  const auto [order1, stats1] = run();
  const auto [order2, stats2] = run();
  EXPECT_EQ(order1, order2);
  EXPECT_EQ(stats1.sent, stats2.sent);
  EXPECT_EQ(stats1.delivered, stats2.delivered);
  EXPECT_EQ(stats1.dropped, stats2.dropped);
  EXPECT_EQ(stats1.reordered, stats2.reordered);
  // The knobs actually did something at these rates over 200 sends.
  EXPECT_GT(stats1.dropped, 0u);
  EXPECT_GT(stats1.reordered, 0u);
  EXPECT_EQ(stats1.sent, 200u);
  EXPECT_EQ(stats1.delivered + stats1.dropped, stats1.sent);
}

TEST(Loopback, DifferentSeedsDiverge) {
  ChaosConfig chaos;
  chaos.drop_rate = 0.5;
  const auto dropped_with_seed = [&](std::uint64_t seed) {
    ChaosConfig c = chaos;
    c.seed = seed;
    LoopbackNet net(c);
    auto [a, b] = net.make_link_pair("coord", "w0");
    std::vector<bool> verdicts;
    for (std::uint64_t i = 0; i < 64; ++i) {
      a->send(beat(0, i));
      verdicts.push_back(!drain_ticks(*b).empty());
    }
    return verdicts;
  };
  EXPECT_NE(dropped_with_seed(1), dropped_with_seed(2));
}

TEST(Loopback, StatsCountConservation) {
  ChaosConfig chaos;
  chaos.seed = 7;
  chaos.drop_rate = 0.4;
  LoopbackNet net(chaos);
  auto [a, b] = net.make_link_pair("coord", "w0");
  for (std::uint64_t i = 0; i < 100; ++i) a->send(beat(0, i));
  (void)drain_ticks(*b);
  const LoopbackNet::Stats s = net.stats();
  EXPECT_EQ(s.sent, 100u);
  EXPECT_EQ(s.delivered + s.dropped, s.sent);  // no frame unaccounted
}

TEST(Loopback, CloseSilencesBothDirections) {
  LoopbackNet net;
  auto [a, b] = net.make_link_pair("coord", "w0");
  ASSERT_TRUE(a->send(beat(0, 1)));
  a->close();
  EXPECT_TRUE(a->closed());
  EXPECT_TRUE(b->closed());
  EXPECT_FALSE(a->send(beat(0, 2)));
  EXPECT_FALSE(b->send(beat(0, 3)));
}

TEST(Loopback, PairsAreIsolated) {
  LoopbackNet net;
  auto [a0, b0] = net.make_link_pair("coord", "w0");
  auto [a1, b1] = net.make_link_pair("coord", "w1");
  a0->send(beat(0, 10));
  a1->send(beat(1, 20));
  EXPECT_EQ(drain_ticks(*b0), std::vector<std::uint64_t>{10});
  EXPECT_EQ(drain_ticks(*b1), std::vector<std::uint64_t>{20});
}

TEST(Loopback, KindIsLoopback) {
  LoopbackNet net;
  auto [a, b] = net.make_link_pair("coord", "w0");
  EXPECT_EQ(a->kind(), "loopback");
}

}  // namespace
}  // namespace impress::net
