// Inference-server surrogate (infer/infer.hpp): the deterministic
// batching accounting, the cost model, the cache-aware fold path's
// bit-identity with FoldCache::predict, and the adaptive batch tuner.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "infer/infer.hpp"
#include "protein/datasets.hpp"

namespace impress::infer {
namespace {

/// Bench-grade cost model: setup 6x the per-item cost, so a full batch of
/// 8 models the classic 56/14 = 4x gain.
InferenceServer::Config toy_config(std::uint32_t max_batch = 8) {
  InferenceServer::Config cfg;
  cfg.policy.max_batch = max_batch;
  cfg.policy.max_linger_s = 600.0;
  cfg.fold_cost = GpuCostModel{.setup_s = 6.0, .per_item_s = 1.0};
  cfg.design_cost = GpuCostModel{.setup_s = 6.0, .per_item_s = 1.0};
  return cfg;
}

std::vector<mpnn::ScoredSequence> no_designs() { return {}; }

TEST(GpuCostModelTest, BatchLatencyIsSetupPlusLinear) {
  const GpuCostModel m{.setup_s = 6.0, .per_item_s = 1.0};
  EXPECT_DOUBLE_EQ(m.batch_latency_s(0), 0.0);
  EXPECT_DOUBLE_EQ(m.batch_latency_s(1), 7.0);
  EXPECT_DOUBLE_EQ(m.batch_latency_s(8), 14.0);
  // A 2x-faster GPU generation halves the whole dispatch.
  EXPECT_DOUBLE_EQ(m.batch_latency_s(8, 2.0), 7.0);
}

TEST(InferenceServerTest, FullBatchesModelFourXSpeedupAtEight) {
  InferenceServer server(toy_config(8));
  for (int i = 0; i < 16; ++i)
    (void)server.design(no_designs, /*now_s=*/0.0);
  const auto snap = server.snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.design.requests, 16u);
  EXPECT_EQ(snap.design.batches, 2u);
  EXPECT_EQ(snap.design.max_batch, 8u);
  EXPECT_DOUBLE_EQ(snap.design.batched_gpu_s, 2.0 * 14.0);
  EXPECT_DOUBLE_EQ(snap.design.unbatched_gpu_s, 16.0 * 7.0);
  EXPECT_DOUBLE_EQ(snap.design.speedup(), 4.0);
}

TEST(InferenceServerTest, LingerExpiryClosesAStaleBatch) {
  InferenceServer server(toy_config(8));
  for (int i = 0; i < 3; ++i) (void)server.design(no_designs, 0.0);
  // Arrives 1000 s after the open batch's first member (> 600 s linger):
  // the stale batch of 3 is dispatched, this request starts the next one.
  (void)server.design(no_designs, 1000.0);
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.design.batches, 2u);  // closed(3) + flushed open(1)
  EXPECT_EQ(snap.design.max_batch, 3u);
  EXPECT_DOUBLE_EQ(snap.design.batched_gpu_s, (6.0 + 3.0) + (6.0 + 1.0));
}

TEST(InferenceServerTest, SnapshotFlushDoesNotMutateLiveAccounting) {
  InferenceServer server(toy_config(8));
  for (int i = 0; i < 3; ++i) (void)server.design(no_designs, 0.0);
  const auto a = server.snapshot();
  const auto b = server.snapshot();
  EXPECT_EQ(a.design.batches, b.design.batches);
  EXPECT_DOUBLE_EQ(a.design.batched_gpu_s, b.design.batched_gpu_s);
  // The open batch keeps filling after a snapshot.
  for (int i = 0; i < 5; ++i) (void)server.design(no_designs, 0.0);
  const auto c = server.snapshot();
  EXPECT_EQ(c.design.batches, 1u);
  EXPECT_EQ(c.design.max_batch, 8u);
}

TEST(InferenceServerTest, SpeedFactorDividesModeledLatency) {
  auto cfg = toy_config(8);
  InferenceServer server(cfg);
  server.set_speed_factor(2.0);
  for (int i = 0; i < 8; ++i) (void)server.design(no_designs, 0.0);
  const auto snap = server.snapshot();
  EXPECT_DOUBLE_EQ(snap.speed_factor, 2.0);
  EXPECT_DOUBLE_EQ(snap.design.batched_gpu_s, 7.0);
  EXPECT_DOUBLE_EQ(snap.design.unbatched_gpu_s, 8.0 * 3.5);
  // The speedup ratio is speed-factor invariant.
  EXPECT_DOUBLE_EQ(snap.design.speedup(), 4.0);
}

TEST(InferenceServerTest, FoldWithoutCacheMatchesDirectPredictBitwise) {
  const auto target =
      protein::make_target("INF-A", 86, protein::alpha_synuclein().tail(10));
  const fold::AlphaFold folder;
  InferenceServer server(toy_config(8));

  common::Rng via_server(7);
  common::Rng direct(7);
  const auto a = server.fold(folder, nullptr, target.start_complex(),
                             target.landscape, via_server, 0.0);
  const auto b =
      folder.predict(target.start_complex(), target.landscape, direct);
  ASSERT_EQ(a.models.size(), b.models.size());
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.best().metrics.plddt, b.best().metrics.plddt);
  EXPECT_DOUBLE_EQ(a.best().metrics.ptm, b.best().metrics.ptm);
  EXPECT_DOUBLE_EQ(a.best().metrics.ipae, b.best().metrics.ipae);
  // The server advanced the rng exactly as the direct call did.
  EXPECT_EQ(via_server.fingerprint(), direct.fingerprint());
}

TEST(InferenceServerTest, CacheHitSkipsDispatchAndMatchesCacheSemantics) {
  const auto target =
      protein::make_target("INF-B", 90, protein::alpha_synuclein().tail(10));
  const fold::AlphaFold folder;
  auto cache = std::make_shared<fold::FoldCache>();
  InferenceServer server(toy_config(8));

  common::Rng first(3);
  common::Rng second(3);  // same fingerprint => same cache key
  const auto a = server.fold(folder, cache, target.start_complex(),
                             target.landscape, first, 0.0);
  const auto b = server.fold(folder, cache, target.start_complex(),
                             target.landscape, second, 10.0);
  EXPECT_DOUBLE_EQ(a.best().metrics.plddt, b.best().metrics.plddt);
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.fold.requests, 2u);
  EXPECT_EQ(snap.fold.cache_hits, 1u);
  EXPECT_EQ(snap.fold.batches, 1u);  // only the miss dispatched
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u);
  // A hit leaves the rng untouched, exactly like FoldCache::predict.
  EXPECT_EQ(second.fingerprint(), common::Rng(3).fingerprint());
}

TEST(BatchTunerTest, PicksLargestBatchThatFillsWithinLinger) {
  BatchTuner tuner(
      BatchTuner::Config{
          .ewma_alpha = 1.0, .min_batch = 1, .max_batch = 16,
          .max_linger_s = 600.0},
      /*initial_batch=*/8);
  EXPECT_FALSE(tuner.observe(0.0).has_value());  // first sample: no gap yet
  // Completions every 100 s: 1 + floor(600/100) = 7.
  const auto first = tuner.observe(100.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 7u);
  EXPECT_FALSE(tuner.observe(200.0).has_value());  // steady cadence: no change
  // Cadence collapses to simultaneous completions: saturate at max.
  (void)tuner.observe(200.0);
  EXPECT_EQ(tuner.batch_size(), 16u);
  EXPECT_EQ(tuner.decisions(), 2u);
}

TEST(BatchTunerTest, DecisionsAreDeterministicInTheTimestamps) {
  const auto run = [] {
    BatchTuner tuner(BatchTuner::Config{}, 8);
    std::vector<std::uint32_t> sizes;
    for (int i = 0; i < 50; ++i) {
      const double t = 37.0 * i + (i % 7) * 11.0;
      if (const auto b = tuner.observe(t)) sizes.push_back(*b);
    }
    sizes.push_back(tuner.batch_size());
    return sizes;
  };
  EXPECT_EQ(run(), run());
}

TEST(InferenceServerTest, NonAdaptiveServerIgnoresCompletions) {
  InferenceServer server(toy_config(8));
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(server.observe_completion(100.0 * i).has_value());
  EXPECT_EQ(server.snapshot().tuner_decisions, 0u);
}

TEST(InferenceServerTest, AdaptiveServerAppliesTunedSizeToLaterBatches) {
  auto cfg = toy_config(8);
  cfg.adaptive = true;
  cfg.tuner = BatchTuner::Config{.ewma_alpha = 1.0,
                                 .min_batch = 1,
                                 .max_batch = 16,
                                 .max_linger_s = 200.0};
  InferenceServer server(cfg);
  // Completions every 100 s: tuned size 1 + floor(200/100) = 3.
  EXPECT_FALSE(server.observe_completion(0.0).has_value());
  const auto tuned = server.observe_completion(100.0);
  ASSERT_TRUE(tuned.has_value());
  EXPECT_EQ(*tuned, 3u);
  for (int i = 0; i < 6; ++i) (void)server.design(no_designs, 0.0);
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.batch_size, 3u);
  EXPECT_EQ(snap.design.batches, 2u);
  EXPECT_EQ(snap.design.max_batch, 3u);
  EXPECT_EQ(snap.tuner_decisions, 1u);
}

// TSan target: concurrent executors dispatching into both streams while a
// foreign thread polls snapshots and retunes — the accounting mutex is
// the only synchronization.
TEST(InferenceServerTest, ConcurrentDispatchesAccountExactly) {
  auto cfg = toy_config(8);
  cfg.adaptive = true;
  InferenceServer server(cfg);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      (void)server.snapshot();
      (void)server.observe_completion(1.0);
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        (void)server.design(no_designs, static_cast<double>(t));
    });
  for (auto& w : workers) w.join();
  stop.store(true);
  poller.join();
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.design.requests,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  // Every dispatched item was also accounted at its unbatched cost.
  EXPECT_DOUBLE_EQ(snap.design.unbatched_gpu_s,
                   static_cast<double>(kThreads * kPerThread) * 7.0);
  EXPECT_GE(snap.design.batches, snap.design.requests / 16u);
  EXPECT_LE(snap.design.batches, snap.design.requests);
}

}  // namespace
}  // namespace impress::infer
