#include "mpnn/mpnn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/stats.hpp"
#include "protein/datasets.hpp"

namespace impress::mpnn {
namespace {

const protein::DesignTarget& target() {
  static const auto t =
      protein::make_target("MPNN-T", 90, protein::alpha_synuclein().tail(10));
  return t;
}

TEST(Mpnn, ConfigValidation) {
  SamplerConfig bad;
  bad.num_sequences = 0;
  EXPECT_THROW(Mpnn{bad}, std::invalid_argument);
  bad = SamplerConfig{};
  bad.temperature = 0.0;
  EXPECT_THROW(Mpnn{bad}, std::invalid_argument);
}

TEST(Mpnn, ProducesRequestedCount) {
  SamplerConfig count_cfg;
  count_cfg.num_sequences = 10;
  const Mpnn model(count_cfg);
  common::Rng rng(1);
  const auto seqs = model.design(target().start_complex(), target().landscape, rng);
  EXPECT_EQ(seqs.size(), 10u);
}

TEST(Mpnn, SequencesHaveReceptorLength) {
  const Mpnn model{SamplerConfig{}};
  common::Rng rng(2);
  for (const auto& s :
       model.design(target().start_complex(), target().landscape, rng))
    EXPECT_EQ(s.sequence.size(), 90u);
}

TEST(Mpnn, MutatesOnlyDesignablePositions) {
  SamplerConfig cfg;
  cfg.prior_weight = 0.0;
  const Mpnn model(cfg);
  common::Rng rng(3);
  const auto& start = target().start_receptor;
  const auto& iface = target().landscape.interface_positions();
  for (const auto& s :
       model.design(target().start_complex(), target().landscape, rng)) {
    for (std::size_t pos = 0; pos < start.size(); ++pos) {
      if (s.sequence[pos] != start[pos]) {
        EXPECT_TRUE(std::binary_search(iface.begin(), iface.end(), pos))
            << "mutation at non-interface position " << pos;
      }
    }
  }
}

TEST(Mpnn, RespectsFixedPositions) {
  const auto& iface = target().landscape.interface_positions();
  SamplerConfig cfg;
  // Fix the first three pocket positions (the Future-Work catalytic-residue
  // protocol).
  cfg.fixed_positions = {iface[0], iface[1], iface[2]};
  cfg.mutations_per_sequence = 10;
  const Mpnn model(cfg);
  common::Rng rng(4);
  const auto& start = target().start_receptor;
  for (const auto& s :
       model.design(target().start_complex(), target().landscape, rng)) {
    EXPECT_EQ(s.sequence[iface[0]], start[iface[0]]);
    EXPECT_EQ(s.sequence[iface[1]], start[iface[1]]);
    EXPECT_EQ(s.sequence[iface[2]], start[iface[2]]);
  }
}

TEST(Mpnn, AllPositionsFixedThrows) {
  SamplerConfig cfg;
  cfg.fixed_positions = target().landscape.interface_positions();
  const Mpnn model(cfg);
  common::Rng rng(5);
  EXPECT_THROW(
      (void)model.design(target().start_complex(), target().landscape, rng),
      std::invalid_argument);
}

TEST(Mpnn, MutationsPerSequenceRespected) {
  SamplerConfig cfg;
  cfg.mutations_per_sequence = 2;
  const Mpnn model(cfg);
  common::Rng rng(6);
  const auto& start = target().start_receptor;
  for (const auto& s :
       model.design(target().start_complex(), target().landscape, rng))
    EXPECT_LE(s.sequence.hamming_distance(start), 2u);
}

TEST(Mpnn, DeterministicInRng) {
  const Mpnn model{SamplerConfig{}};
  common::Rng r1(7), r2(7);
  const auto a = model.design(target().start_complex(), target().landscape, r1);
  const auto b = model.design(target().start_complex(), target().landscape, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, b[i].sequence);
    EXPECT_DOUBLE_EQ(a[i].log_likelihood, b[i].log_likelihood);
  }
}

TEST(Mpnn, LogLikelihoodsAreNegativeLogProbs) {
  const Mpnn model{SamplerConfig{}};
  common::Rng rng(8);
  for (const auto& s :
       model.design(target().start_complex(), target().landscape, rng))
    EXPECT_LT(s.log_likelihood, 0.0);
}

TEST(Mpnn, LengthMismatchThrows) {
  const Mpnn model{SamplerConfig{}};
  common::Rng rng(9);
  const auto wrong = protein::Complex::make(
      "w", protein::Sequence::from_string("MKVLA"), target().peptide);
  EXPECT_THROW((void)model.design(wrong, target().landscape, rng),
               std::invalid_argument);
}

TEST(Mpnn, LogLikelihoodCorrelatesWithTrueFitness) {
  // The core statistical contract: ranking by log-likelihood must be
  // informative of (not identical to) landscape fitness.
  SamplerConfig cfg;
  cfg.num_sequences = 200;
  cfg.knowledge_noise = 0.35;
  const Mpnn model(cfg);
  common::Rng rng(10);
  const auto seqs =
      model.design(target().start_complex(), target().landscape, rng);
  std::vector<double> lls, fs;
  for (const auto& s : seqs) {
    lls.push_back(s.log_likelihood);
    fs.push_back(target().landscape.fitness(s.sequence));
  }
  const double r = common::pearson(lls, fs);
  EXPECT_GT(r, 0.25);   // informative
  EXPECT_LT(r, 0.98);   // but imperfect
}

TEST(Mpnn, PriorWeightLowersProposalQuality) {
  SamplerConfig clean;
  clean.num_sequences = 100;
  clean.prior_weight = 0.0;
  SamplerConfig drifty = clean;
  drifty.prior_weight = 0.8;
  common::Rng r1(11), r2(11);
  auto mean_fitness = [&](const SamplerConfig& cfg, common::Rng& rng) {
    const auto seqs = Mpnn(cfg).design(target().start_complex(),
                                       target().landscape, rng);
    double sum = 0.0;
    for (const auto& s : seqs) sum += target().landscape.fitness(s.sequence);
    return sum / static_cast<double>(seqs.size());
  };
  EXPECT_GT(mean_fitness(clean, r1), mean_fitness(drifty, r2));
}

TEST(SortByLogLikelihood, DescendingAndStable) {
  std::vector<ScoredSequence> seqs;
  const auto s = protein::Sequence::from_string("MK");
  seqs.push_back({s, -2.0});
  seqs.push_back({s, -1.0});
  seqs.push_back({s, -3.0});
  sort_by_log_likelihood(seqs);
  EXPECT_DOUBLE_EQ(seqs[0].log_likelihood, -1.0);
  EXPECT_DOUBLE_EQ(seqs[2].log_likelihood, -3.0);
}

class MpnnTemperatureSweep : public ::testing::TestWithParam<double> {};

TEST_P(MpnnTemperatureSweep, DiversityGrowsWithTemperature) {
  SamplerConfig cfg;
  cfg.temperature = GetParam();
  cfg.num_sequences = 30;
  const Mpnn model(cfg);
  common::Rng rng(12);
  const auto seqs =
      model.design(target().start_complex(), target().landscape, rng);
  std::set<std::string> distinct;
  for (const auto& s : seqs) distinct.insert(s.sequence.to_string());
  EXPECT_GE(distinct.size(), 2u);  // sampling, not argmax
}

INSTANTIATE_TEST_SUITE_P(Temperatures, MpnnTemperatureSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 1.0));

}  // namespace
}  // namespace impress::mpnn
