// The task factories: resource footprints and phase structure of the
// ProteinMPNN / AlphaFold task descriptions, and their end-to-end
// execution through the simulated runtime.

#include <gtest/gtest.h>

#include "fold/fold_task.hpp"
#include "mpnn/mpnn_task.hpp"
#include "runtime/session.hpp"

namespace impress {
namespace {

TEST(MpnnTask, SinglePhaseGpuResident) {
  const mpnn::MpnnDurationModel model;
  const auto td = mpnn::make_mpnn_task("m", 1, model, {});
  ASSERT_EQ(td.phases.size(), 1u);
  EXPECT_EQ(td.resources.gpus, model.gpus);
  EXPECT_EQ(td.resources.cores, model.cores);
  EXPECT_DOUBLE_EQ(td.phases[0].duration_s, model.seconds_per_structure);
  EXPECT_EQ(td.metadata.at("app"), "proteinmpnn");
}

TEST(MpnnTask, DurationScalesWithStructures) {
  const mpnn::MpnnDurationModel model;
  const auto td = mpnn::make_mpnn_task("m", 4, model, {});
  EXPECT_DOUBLE_EQ(td.phases[0].duration_s, 4.0 * model.seconds_per_structure);
}

TEST(FoldTask, TwoPhaseCpuThenGpu) {
  const fold::FoldDurationModel model;
  const auto td = fold::make_fold_task("f", model, {});
  ASSERT_EQ(td.phases.size(), 2u);
  EXPECT_EQ(td.phases[0].name, "msa_features");
  EXPECT_EQ(td.phases[0].gpus, 0u);         // GPUs idle during features
  EXPECT_GT(td.phases[0].cores, td.phases[1].cores);
  EXPECT_EQ(td.phases[1].name, "inference");
  EXPECT_EQ(td.phases[1].gpus, 1u);
  EXPECT_EQ(td.metadata.at("features"), "computed");
  // Allocation covers the widest phase.
  EXPECT_EQ(td.resources.cores, model.feature_cores);
  EXPECT_EQ(td.resources.gpus, 1u);
}

TEST(FoldTask, FeatureReuseSkipsCpuPhase) {
  fold::FoldDurationModel model;
  model.reuse_features = true;
  const auto td = fold::make_fold_task("f", model, {});
  ASSERT_EQ(td.phases.size(), 1u);
  EXPECT_EQ(td.phases[0].name, "inference");
  EXPECT_EQ(td.resources.cores, model.inference_cores);
  EXPECT_EQ(td.metadata.at("features"), "cached");
}

TEST(FoldTask, RunsThroughRuntimeWithCorrectTiming) {
  rp::SessionConfig cfg;
  rp::Session session(cfg);
  rp::PilotDescription pd;  // default amarel node, zero overheads
  auto pilot = session.submit_pilot(pd);

  fold::FoldDurationModel model;
  model.features_s = 1000.0;
  model.features_jitter = 0.0;
  model.inference_s = 500.0;
  model.inference_jitter = 0.0;
  auto task = session.task_manager().submit(fold::make_fold_task(
      "f", model, [](rp::Task&) -> std::any { return 1; }));
  session.run();
  EXPECT_EQ(task->state(), rp::TaskState::kDone);
  EXPECT_DOUBLE_EQ(session.now(), 1500.0);

  // GPU only busy during the inference phase.
  const auto features_window = pilot->recorder().summarize(0.0, 1000.0);
  EXPECT_DOUBLE_EQ(features_window.gpu_active, 0.0);
  const auto inference_window = pilot->recorder().summarize(1000.0, 1500.0);
  EXPECT_GT(inference_window.gpu_active, 0.0);
}

TEST(FoldTask, FeatureStagesContendForCores) {
  // Amarel: 28 cores; three 7-core feature stages fit, a fourth waits for
  // the GPU-phase shrink... with whole-task allocations, 4 x 7 = 28 fit.
  rp::SessionConfig cfg;
  rp::Session session(cfg);
  rp::PilotDescription pd;
  session.submit_pilot(pd);
  fold::FoldDurationModel model;
  model.features_s = 1000.0;
  model.features_jitter = 0.0;
  model.inference_s = 0.0;
  model.inference_jitter = 0.0;
  model.feature_cores = 12;
  for (int i = 0; i < 4; ++i)
    session.task_manager().submit(
        fold::make_fold_task("f" + std::to_string(i), model, {}));
  session.run();
  // 12-core tasks: two fit (24 <= 28), so 4 tasks take two rounds.
  EXPECT_DOUBLE_EQ(session.now(), 2000.0);
}

}  // namespace
}  // namespace impress
