// FoldCache: content-addressed memoization of AlphaFold predictions.
// The load-bearing property is exactness — a hit must return bit-for-bit
// what the miss path would have computed — plus LRU bookkeeping and the
// key's sensitivity to every input the predictor actually reads.

#include "fold/fold_cache.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "protein/datasets.hpp"

namespace impress::fold {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

const protein::DesignTarget& target() {
  static const auto t = protein::make_target(
      "CACHE", 64, protein::alpha_synuclein().tail(10));
  return t;
}

void expect_identical(const Prediction& a, const Prediction& b) {
  EXPECT_EQ(a.best_index, b.best_index);
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t i = 0; i < a.models.size(); ++i) {
    EXPECT_EQ(bits(a.models[i].metrics.plddt), bits(b.models[i].metrics.plddt));
    EXPECT_EQ(bits(a.models[i].metrics.ptm), bits(b.models[i].metrics.ptm));
    EXPECT_EQ(bits(a.models[i].metrics.ipae), bits(b.models[i].metrics.ipae));
  }
}

TEST(FoldCache, HitReturnsBitIdenticalPrediction) {
  const auto& t = target();
  const auto cx = t.start_complex();
  const AlphaFold folder;
  FoldCache cache;

  const common::Rng rng(123);
  common::Rng first = rng;
  common::Rng second = rng;  // equal fingerprint => same stream
  const auto a = cache.predict(folder, cx, t.landscape, first);
  const auto b = cache.predict(folder, cx, t.landscape, second);
  expect_identical(a, b);

  // And the hit really did come from the cache, not a recompute.
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);

  // Reference: the uncached path with the same rng computes the same.
  common::Rng naive = rng;
  expect_identical(a, folder.predict(cx, t.landscape, naive));
}

TEST(FoldCache, HitLeavesRngUntouched) {
  const auto& t = target();
  const auto cx = t.start_complex();
  const AlphaFold folder;
  FoldCache cache;
  common::Rng warm(9);
  (void)cache.predict(folder, cx, t.landscape, warm);  // miss, fills cache
  common::Rng rng(9);
  const auto before = rng.fingerprint();
  (void)cache.predict(folder, cx, t.landscape, rng);  // hit
  EXPECT_EQ(rng.fingerprint(), before);
}

TEST(FoldCache, KeySensitiveToEveryInput) {
  const auto& t = target();
  const auto cx = t.start_complex();
  const AlphaFold folder;
  const common::Rng rng(1);
  const auto base_content =
      FoldCache::content_key(cx, t.landscape, folder.config());
  const auto base = FoldCache::key(base_content, rng);

  // Receptor sequence.
  const auto mutated = cx.with_receptor(
      cx.receptor().sequence.with_mutation(0, protein::AminoAcid::kTrp));
  EXPECT_NE(FoldCache::content_key(mutated, t.landscape, folder.config()),
            base_content);

  // Predictor config (each field).
  auto cfg = folder.config();
  cfg.metric_noise *= 0.65;
  EXPECT_NE(FoldCache::content_key(cx, t.landscape, cfg), base_content);
  cfg = folder.config();
  cfg.num_models += 1;
  EXPECT_NE(FoldCache::content_key(cx, t.landscape, cfg), base_content);
  cfg = folder.config();
  cfg.msa_quality = 0.5;
  EXPECT_NE(FoldCache::content_key(cx, t.landscape, cfg), base_content);
  cfg = folder.config();
  cfg.model_noise *= 2.0;
  EXPECT_NE(FoldCache::content_key(cx, t.landscape, cfg), base_content);

  // Landscape identity.
  const auto other = protein::make_target(
      "CACHE2", 64, protein::alpha_synuclein().tail(10));
  EXPECT_NE(FoldCache::content_key(cx, other.landscape, folder.config()),
            base_content);

  // Rng stream.
  common::Rng advanced(1);
  (void)advanced();
  EXPECT_NE(FoldCache::key(base_content, advanced), base);
}

TEST(FoldCache, LruEvictsLeastRecentlyUsed) {
  FoldCache cache(FoldCache::Config{.capacity = 3, .shards = 1});
  Prediction p;
  p.models.push_back(ModelPrediction{});
  cache.insert(1, p);
  cache.insert(2, p);
  cache.insert(3, p);
  EXPECT_TRUE(cache.lookup(1).has_value());  // refresh 1; 2 is now LRU
  cache.insert(4, p);                        // evicts 2
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_TRUE(cache.lookup(4).has_value());

  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.lookups(), 5u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 4.0 / 5.0);
}

TEST(FoldCache, DuplicateInsertKeepsIncumbent) {
  FoldCache cache(FoldCache::Config{.capacity = 4, .shards = 1});
  Prediction a;
  a.models.push_back(ModelPrediction{});
  a.models[0].metrics.ptm = 0.25;
  Prediction b = a;
  b.models[0].metrics.ptm = 0.75;
  cache.insert(7, a);
  cache.insert(7, b);  // raced duplicate: must keep the incumbent
  const auto got = cache.lookup(7);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->models[0].metrics.ptm, 0.25);
  EXPECT_EQ(cache.stats().entries, 1u);
  // Regression (PR 10): the losing insert used to vanish from the stats —
  // neither hit nor discard — breaking conservation.
  EXPECT_EQ(cache.stats().duplicate_discards, 1u);
}

TEST(FoldCache, StatsConserveUnderThreadedDuplicateRaces) {
  // N threads all miss the same keys, compute, and insert concurrently.
  // Whatever the interleaving, every miss must be accounted for exactly
  // once: resident, evicted, or discarded as a duplicate — the
  // conservation law the BENCH_kernels hit-rate math relies on.
  FoldCache cache(FoldCache::Config{.capacity = 64, .shards = 4});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 16;
  Prediction p;
  p.models.push_back(ModelPrediction{});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, p] {
      for (std::uint64_t k = 1; k <= kKeys; ++k) {
        if (!cache.lookup(k).has_value()) cache.insert(k, p);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kKeys);
  // Every key fits (64 >= 16), so no evictions; each miss either created
  // the resident entry or was discarded as a duplicate.
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, kKeys);
  EXPECT_EQ(s.misses, s.entries + s.evictions + s.duplicate_discards);
}

TEST(FoldCache, SnapshotRoundTripsDuplicateDiscards) {
  FoldCache cache(FoldCache::Config{.capacity = 4, .shards = 1});
  Prediction p;
  p.models.push_back(ModelPrediction{});
  cache.insert(1, p);
  cache.insert(1, p);  // one duplicate discard
  const auto snap = cache.snapshot();
  EXPECT_EQ(snap.duplicate_discards, 1u);
  FoldCache restored(FoldCache::Config{.capacity = 4, .shards = 1});
  restored.restore(snap);
  EXPECT_EQ(restored.stats().duplicate_discards, 1u);
}

TEST(FoldCache, ClearResetsEverything) {
  const auto& t = target();
  const auto cx = t.start_complex();
  const AlphaFold folder;
  FoldCache cache;
  common::Rng rng(5);
  (void)cache.predict(folder, cx, t.landscape, rng);
  cache.clear();
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(FoldCache, RejectsZeroCapacityOrShards) {
  EXPECT_THROW(FoldCache(FoldCache::Config{.capacity = 0, .shards = 1}),
               std::invalid_argument);
  EXPECT_THROW(FoldCache(FoldCache::Config{.capacity = 8, .shards = 0}),
               std::invalid_argument);
  // More shards than capacity is clamped, not an error.
  const FoldCache cache(FoldCache::Config{.capacity = 2, .shards = 64});
  EXPECT_EQ(cache.config().shards, 2u);
}

TEST(FoldCache, ShardedCapacityHolds) {
  // Distinct keys spread over shards; total entries never exceed the
  // configured capacity by more than the per-shard rounding slack.
  FoldCache cache(FoldCache::Config{.capacity = 16, .shards = 4});
  Prediction p;
  p.models.push_back(ModelPrediction{});
  for (std::uint64_t k = 1; k <= 200; ++k) cache.insert(k, p);
  EXPECT_LE(cache.stats().entries, 16u);
  EXPECT_GE(cache.stats().evictions, 200u - 16u);
}

}  // namespace
}  // namespace impress::fold
