#include "fold/fold.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/stats.hpp"
#include "protein/datasets.hpp"

namespace impress::fold {
namespace {

const protein::DesignTarget& target() {
  static const auto t =
      protein::make_target("FOLD-T", 92, protein::alpha_synuclein().tail(10));
  return t;
}

TEST(FoldMetrics, CompositeBlendsAllThree) {
  FoldMetrics good{.plddt = 90.0, .ptm = 0.9, .ipae = 5.0};
  FoldMetrics bad{.plddt = 50.0, .ptm = 0.4, .ipae = 25.0};
  EXPECT_GT(good.composite(), bad.composite());
  EXPECT_GE(bad.composite(), 0.0);
  EXPECT_LE(good.composite(), 1.0);
}

TEST(FoldMetrics, CompositeMonotonePerMetric) {
  const FoldMetrics base{.plddt = 70.0, .ptm = 0.7, .ipae = 12.0};
  FoldMetrics better = base;
  better.plddt += 5.0;
  EXPECT_GT(better.composite(), base.composite());
  better = base;
  better.ptm += 0.05;
  EXPECT_GT(better.composite(), base.composite());
  better = base;
  better.ipae -= 2.0;  // lower pAE is better
  EXPECT_GT(better.composite(), base.composite());
}

TEST(AlphaFold, ConfigValidation) {
  PredictorConfig bad;
  bad.num_models = 0;
  EXPECT_THROW(AlphaFold{bad}, std::invalid_argument);
  bad = PredictorConfig{};
  bad.msa_quality = 0.0;
  EXPECT_THROW(AlphaFold{bad}, std::invalid_argument);
  bad.msa_quality = 1.5;
  EXPECT_THROW(AlphaFold{bad}, std::invalid_argument);
}

TEST(AlphaFold, ProducesFiveRankedModels) {
  const AlphaFold model;
  common::Rng rng(1);
  const auto pred = model.predict(target().start_complex(), target().landscape, rng);
  ASSERT_EQ(pred.models.size(), 5u);
  // Best is argmax pTM (Stage-4 ranking).
  for (const auto& m : pred.models)
    EXPECT_LE(m.metrics.ptm, pred.best().metrics.ptm);
}

TEST(AlphaFold, MetricsWithinPhysicalRanges) {
  const AlphaFold model;
  common::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const auto pred =
        model.predict(target().start_complex(), target().landscape, rng);
    for (const auto& m : pred.models) {
      EXPECT_GE(m.metrics.plddt, 0.0);
      EXPECT_LE(m.metrics.plddt, 100.0);
      EXPECT_GE(m.metrics.ptm, 0.0);
      EXPECT_LE(m.metrics.ptm, 1.0);
      EXPECT_GE(m.metrics.ipae, 1.0);
      EXPECT_LE(m.metrics.ipae, 30.0);
    }
  }
}

TEST(AlphaFold, PredictedStructureMatchesInput) {
  const AlphaFold model;
  common::Rng rng(3);
  const auto cx = target().start_complex();
  const auto pred = model.predict(cx, target().landscape, rng);
  const auto& s = pred.best().structure;
  EXPECT_EQ(s.chain('A').sequence, cx.receptor().sequence);
  EXPECT_EQ(s.chain('B').sequence, cx.peptide().sequence);
  // Per-residue confidence attached (AlphaFold writes pLDDT per residue).
  EXPECT_EQ(s.plddt().size(), s.size());
}

TEST(AlphaFold, PerResiduePlddtTracksGlobal) {
  const AlphaFold model;
  common::Rng rng(4);
  const auto pred =
      model.predict(target().start_complex(), target().landscape, rng);
  const auto& best = pred.best();
  const auto& plddt = best.structure.plddt();
  const double mean_plddt = common::mean({plddt.data(), plddt.size()});
  EXPECT_NEAR(mean_plddt, best.metrics.plddt, 8.0);
}

TEST(AlphaFold, DeterministicInRng) {
  const AlphaFold model;
  common::Rng r1(5), r2(5);
  const auto a = model.predict(target().start_complex(), target().landscape, r1);
  const auto b = model.predict(target().start_complex(), target().landscape, r2);
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.best().metrics.ptm, b.best().metrics.ptm);
}

TEST(AlphaFold, MetricsTrackFitnessMonotonically) {
  // The classifier property ([12],[13] in the paper): better sequences get
  // better confidence, on average.
  const AlphaFold model;
  const auto& l = target().landscape;
  common::Rng rng(6);
  auto avg = [&](const protein::Sequence& seq) {
    FoldMetrics acc{};
    const auto cx = target().start_complex().with_receptor(seq);
    for (int i = 0; i < 30; ++i) {
      const auto m = model.predict(cx, l, rng).best().metrics;
      acc.plddt += m.plddt;
      acc.ptm += m.ptm;
      acc.ipae += m.ipae;
    }
    return FoldMetrics{acc.plddt / 30, acc.ptm / 30, acc.ipae / 30};
  };
  const auto weak = avg(l.native_sequence());
  const auto strong = avg(l.greedy_optimal_sequence());
  EXPECT_GT(strong.plddt, weak.plddt + 3.0);
  EXPECT_GT(strong.ptm, weak.ptm + 0.1);
  EXPECT_LT(strong.ipae, weak.ipae - 2.0);
}

TEST(AlphaFold, SingleSequenceModeBlursSignal) {
  // EvoPro-style msa_quality < 1: the gap between weak and strong
  // sequences shrinks (predictions revert toward the mean).
  PredictorConfig full;
  PredictorConfig single;
  single.msa_quality = 0.5;
  const auto& l = target().landscape;
  auto gap = [&](const PredictorConfig& cfg) {
    const AlphaFold model(cfg);
    common::Rng rng(7);
    double weak = 0.0, strong = 0.0;
    for (int i = 0; i < 30; ++i) {
      weak += model
                  .predict(target().start_complex().with_receptor(
                               l.native_sequence()),
                           l, rng)
                  .best()
                  .metrics.ptm;
      strong += model
                    .predict(target().start_complex().with_receptor(
                                 l.greedy_optimal_sequence()),
                             l, rng)
                    .best()
                    .metrics.ptm;
    }
    return (strong - weak) / 30.0;
  };
  EXPECT_GT(gap(full), gap(single) + 0.05);
}

TEST(AlphaFold, CustomModelCount) {
  PredictorConfig cfg;
  cfg.num_models = 2;
  const AlphaFold model(cfg);
  common::Rng rng(8);
  EXPECT_EQ(
      model.predict(target().start_complex(), target().landscape, rng).models.size(),
      2u);
}

class FoldSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FoldSeedSweep, BestIndexAlwaysValidAndArgmax) {
  const AlphaFold model;
  common::Rng rng(GetParam());
  const auto pred =
      model.predict(target().start_complex(), target().landscape, rng);
  ASSERT_LT(pred.best_index, pred.models.size());
  for (const auto& m : pred.models)
    EXPECT_GE(pred.best().metrics.ptm, m.metrics.ptm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace impress::fold
