#include "runtime/task_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/session.hpp"

namespace impress::rp {
namespace {

using NodeState = TaskGraph::Execution::NodeState;

PilotDescription node4() {
  PilotDescription pd;
  pd.nodes = {hpc::NodeSpec{.name = "n", .cores = 4, .gpus = 0, .mem_gb = 8.0}};
  return pd;
}

TEST(TaskGraph, AddAndEdgeValidation) {
  TaskGraph g;
  const auto a = g.add(make_simple_task("a", 1, 0, 1.0));
  const auto b = g.add(make_simple_task("b", 1, 0, 1.0));
  EXPECT_EQ(g.size(), 2u);
  g.add_edge(a, b);
  g.add_edge(a, b);  // duplicate is idempotent
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 99), std::out_of_range);
  g.validate();
}

TEST(TaskGraph, CycleDetected) {
  TaskGraph g;
  const auto a = g.add(make_simple_task("a", 1, 0, 1.0));
  const auto b = g.add(make_simple_task("b", 1, 0, 1.0));
  const auto c = g.add(make_simple_task("c", 1, 0, 1.0));
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(TaskGraph, ChainRunsInOrder) {
  Session session{SessionConfig{}};
  session.submit_pilot(node4());
  std::vector<TaskDescription> stages;
  for (int i = 0; i < 5; ++i)
    stages.push_back(make_simple_task("s" + std::to_string(i), 4, 0, 10.0));
  const auto graph = make_chain(std::move(stages));
  const auto exec = graph.run(session.task_manager());
  session.run();
  ASSERT_TRUE(exec->finished());
  EXPECT_FALSE(exec->failed());
  EXPECT_EQ(exec->done_count(), 5u);
  // Strict ordering: each stage's exec starts after the previous stops.
  for (TaskGraph::NodeId i = 1; i < 5; ++i) {
    const double prev_done = exec->task(i - 1)->state_time(TaskState::kDone);
    const double next_exec = exec->task(i)->state_time(TaskState::kExecuting);
    EXPECT_GE(next_exec, prev_done);
  }
  // A 5-stage chain of 10 s tasks takes 50 s even on a wide node.
  EXPECT_DOUBLE_EQ(session.now(), 50.0);
}

TEST(TaskGraph, DiamondJoinsBeforeSink) {
  Session session{SessionConfig{}};
  session.submit_pilot(node4());
  TaskGraph g;
  const auto src = g.add(make_simple_task("src", 1, 0, 5.0));
  const auto left = g.add(make_simple_task("left", 1, 0, 30.0));
  const auto right = g.add(make_simple_task("right", 1, 0, 10.0));
  const auto sink = g.add(make_simple_task("sink", 1, 0, 5.0));
  g.add_edge(src, left);
  g.add_edge(src, right);
  g.add_edge(left, sink);
  g.add_edge(right, sink);
  const auto exec = g.run(session.task_manager());
  session.run();
  EXPECT_EQ(exec->done_count(), 4u);
  // Branches ran concurrently: 5 + max(30,10) + 5 = 40.
  EXPECT_DOUBLE_EQ(session.now(), 40.0);
  EXPECT_GE(exec->task(sink)->state_time(TaskState::kExecuting),
            exec->task(left)->state_time(TaskState::kDone));
}

TEST(TaskGraph, IndependentNodesRunConcurrently) {
  Session session{SessionConfig{}};
  session.submit_pilot(node4());
  TaskGraph g;
  for (int i = 0; i < 4; ++i)
    g.add(make_simple_task("p" + std::to_string(i), 1, 0, 20.0));
  const auto exec = g.run(session.task_manager());
  session.run();
  EXPECT_EQ(exec->done_count(), 4u);
  EXPECT_DOUBLE_EQ(session.now(), 20.0);  // all four fit the node at once
}

TEST(TaskGraph, FailureSkipsTransitiveDependents) {
  Session session{SessionConfig{}};
  session.submit_pilot(node4());
  TaskGraph g;
  const auto ok = g.add(make_simple_task("ok", 1, 0, 5.0));
  const auto bad = g.add(make_simple_task(
      "bad", 1, 0, 5.0,
      [](Task&) -> std::any { throw std::runtime_error("boom"); }));
  const auto child = g.add(make_simple_task("child", 1, 0, 5.0));
  const auto grandchild = g.add(make_simple_task("grandchild", 1, 0, 5.0));
  const auto sibling = g.add(make_simple_task("sibling", 1, 0, 5.0));
  g.add_edge(bad, child);
  g.add_edge(child, grandchild);
  g.add_edge(ok, sibling);
  const auto exec = g.run(session.task_manager());
  session.run();
  ASSERT_TRUE(exec->finished());
  EXPECT_TRUE(exec->failed());
  EXPECT_EQ(exec->state(bad), NodeState::kFailed);
  EXPECT_EQ(exec->state(child), NodeState::kSkipped);
  EXPECT_EQ(exec->state(grandchild), NodeState::kSkipped);
  EXPECT_EQ(exec->state(ok), NodeState::kDone);
  EXPECT_EQ(exec->state(sibling), NodeState::kDone);
  EXPECT_EQ(exec->skipped_count(), 2u);
  // Skipped nodes were never submitted.
  EXPECT_EQ(exec->task(child), nullptr);
}

TEST(TaskGraph, ResultsFlowThroughWorkFunctions) {
  Session session{SessionConfig{}};
  session.submit_pilot(node4());
  TaskGraph g;
  const auto producer = g.add(make_simple_task(
      "produce", 1, 0, 1.0, [](Task&) -> std::any { return 21; }));
  const auto consumer = g.add(make_simple_task("consume", 1, 0, 1.0));
  g.add_edge(producer, consumer);
  const auto exec = g.run(session.task_manager());
  session.run();
  EXPECT_EQ(exec->task(producer)->result_as<int>(), 21);
}

TEST(TaskGraph, GraphReusableAcrossRuns) {
  TaskGraph g = make_chain({make_simple_task("a", 1, 0, 5.0),
                            make_simple_task("b", 1, 0, 5.0)});
  for (int round = 0; round < 2; ++round) {
    Session session{SessionConfig{}};
    session.submit_pilot(node4());
    const auto exec = g.run(session.task_manager());
    session.run();
    EXPECT_EQ(exec->done_count(), 2u);
  }
}

TEST(TaskGraph, ThreadedModeWorks) {
  SessionConfig cfg;
  cfg.mode = ExecutionMode::kThreaded;
  cfg.time_scale = 1e-3;
  Session session{cfg};
  session.submit_pilot(node4());
  TaskGraph g;
  const auto a = g.add(make_simple_task("a", 1, 0, 10.0));
  const auto b = g.add(make_simple_task("b", 1, 0, 10.0));
  const auto c = g.add(make_simple_task("c", 2, 0, 10.0));
  g.add_edge(a, c);
  g.add_edge(b, c);
  const auto exec = g.run(session.task_manager());
  session.run();
  ASSERT_TRUE(exec->finished());
  EXPECT_EQ(exec->done_count(), 3u);
}

class ChainLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainLengthSweep, MakespanIsSumOfStages) {
  Session session{SessionConfig{}};
  session.submit_pilot(node4());
  std::vector<TaskDescription> stages;
  for (int i = 0; i < GetParam(); ++i)
    stages.push_back(make_simple_task("s" + std::to_string(i), 1, 0, 7.0));
  const auto graph = make_chain(std::move(stages));
  const auto exec = graph.run(session.task_manager());
  session.run();
  EXPECT_TRUE(exec->finished());
  EXPECT_DOUBLE_EQ(session.now(), 7.0 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLengthSweep,
                         ::testing::Values(1, 2, 8, 20));

}  // namespace
}  // namespace impress::rp
