#include "runtime/task_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/session.hpp"

namespace impress::rp {
namespace {

PilotDescription node(std::uint32_t cores, std::uint32_t gpus) {
  PilotDescription pd;
  pd.nodes = {hpc::NodeSpec{.name = "n", .cores = cores, .gpus = gpus,
                            .mem_gb = 64.0}};
  return pd;
}

TEST(TaskManager, RoutesToPilotThatFits) {
  Session session{SessionConfig{}};
  auto cpu_pilot = session.submit_pilot(node(8, 0));
  auto gpu_pilot = session.submit_pilot(node(2, 2));
  auto gpu_task = session.task_manager().submit(make_simple_task("g", 1, 1, 10.0));
  auto wide_task = session.task_manager().submit(make_simple_task("w", 8, 0, 10.0));
  session.run();
  EXPECT_EQ(gpu_task->state(), TaskState::kDone);
  EXPECT_EQ(wide_task->state(), TaskState::kDone);
  // The GPU task can only have run on the GPU pilot, and vice versa.
  EXPECT_FALSE(gpu_pilot->recorder().intervals().empty());
  EXPECT_FALSE(cpu_pilot->recorder().intervals().empty());
}

TEST(TaskManager, LeastLoadedRouting) {
  Session session{SessionConfig{}};
  auto p1 = session.submit_pilot(node(4, 0));
  auto p2 = session.submit_pilot(node(4, 0));
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 6; ++i)
    tasks.push_back(session.task_manager().submit(
        make_simple_task("t" + std::to_string(i), 2, 0, 100.0)));
  session.run();
  // Load should be spread: both pilots executed some tasks.
  EXPECT_GE(p1->recorder().intervals().size(), 2u);
  EXPECT_GE(p2->recorder().intervals().size(), 2u);
}

TEST(TaskManager, BatchSubmitPreservesOrderAndCount) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(4, 0));
  std::vector<TaskDescription> tds;
  for (int i = 0; i < 5; ++i)
    tds.push_back(make_simple_task("t" + std::to_string(i), 1, 0, 1.0));
  const auto tasks = session.task_manager().submit(std::move(tds));
  ASSERT_EQ(tasks.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(tasks[i]->description().name, "t" + std::to_string(i));
  // Uids are sequential.
  EXPECT_EQ(tasks[0]->uid(), "task.000000");
  EXPECT_EQ(tasks[4]->uid(), "task.000004");
}

TEST(TaskManager, FinishedPilotNotRouted) {
  Session session{SessionConfig{}};
  auto pilot = session.submit_pilot(node(4, 0));
  pilot->finish();
  EXPECT_THROW(session.task_manager().submit(make_simple_task("t", 1, 0, 1.0)),
               std::runtime_error);
}

TEST(TaskManager, CancelUnknownTaskFails) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(4, 0));
  // A task that was never submitted to this manager.
  auto foreign = std::make_shared<Task>("task.foreign",
                                        make_simple_task("f", 1, 0, 1.0));
  EXPECT_FALSE(session.task_manager().cancel(foreign));
}

TEST(TaskManager, MultipleCallbacksAllFire) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(4, 0));
  int a = 0, b = 0;
  session.task_manager().add_callback([&](const TaskPtr&) { ++a; });
  session.task_manager().add_callback([&](const TaskPtr&) { ++b; });
  session.task_manager().submit(make_simple_task("t", 1, 0, 1.0));
  session.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

// Regression (cancel TOCTOU): the terminal-state check and the pilot
// lookup happen atomically under the manager lock, so repeated cancels
// return consistently — true exactly once, false ever after.
TEST(TaskManager, CancelReturnsTrueOnceThenFalse) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(4, 0));
  const auto task =
      session.task_manager().submit(make_simple_task("t", 1, 0, 100.0));
  session.call_after(1.0, [&] {
    EXPECT_TRUE(session.task_manager().cancel(task));
  });
  session.call_after(2.0, [&] {
    EXPECT_FALSE(session.task_manager().cancel(task));
  });
  session.run();
  EXPECT_EQ(task->state(), TaskState::kCancelled);
  EXPECT_EQ(session.task_manager().cancelled(), 1u);
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
}

// Regression (cancel TOCTOU): a task waiting out a retry backoff has no
// pilot; cancel must still find and finalize it instead of returning a
// spurious false.
TEST(TaskManager, CancelDuringRetryBackoffFinalizes) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(4, 0));
  auto td = make_simple_task("flaky", 1, 0, 1.0, [](Task&) -> std::any {
    throw std::runtime_error("fails first");
  });
  td.retry = RetryPolicy{.max_attempts = 2, .backoff_initial_s = 1000.0};
  const auto task = session.task_manager().submit(std::move(td));
  // Well inside the backoff window (attempt 1 fails at ~1s).
  session.call_after(10.0, [&] {
    EXPECT_TRUE(session.task_manager().cancel(task));
  });
  session.run();
  EXPECT_EQ(task->state(), TaskState::kCancelled);
  EXPECT_EQ(session.task_manager().cancelled(), 1u);
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
  // The armed resubmission became a no-op: no second attempt ran.
  EXPECT_EQ(task->attempt(), 1);
}

// Regression (wait_all early return): a terminal callback may submit
// follow-on work; wait_all must not return between the last task's
// completion and its callback finishing.
TEST(TaskManager, WaitAllWaitsForCallbackSubmissions) {
  SessionConfig cfg;
  cfg.mode = ExecutionMode::kThreaded;
  cfg.time_scale = 1e-4;
  Session session{cfg};
  session.submit_pilot(node(4, 0));
  std::atomic<bool> chained{false};
  session.task_manager().add_callback([&](const TaskPtr& task) {
    if (task->description().name != "root") return;
    // Simulate decision-making latency before the follow-on submission.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    chained.store(true);
    (void)session.task_manager().submit(
        make_simple_task("chained", 1, 0, 50.0));
  });
  (void)session.task_manager().submit(make_simple_task("root", 1, 0, 50.0));
  session.run();  // wait_all
  EXPECT_TRUE(chained.load());
  EXPECT_EQ(session.task_manager().done(), 2u);
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
}

TEST(TaskManager, FailedTasksCountedSeparately) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(4, 0));
  session.task_manager().submit(make_simple_task("ok", 1, 0, 1.0));
  session.task_manager().submit(make_simple_task(
      "bad", 1, 0, 1.0,
      [](Task&) -> std::any { throw std::runtime_error("x"); }));
  session.run();
  EXPECT_EQ(session.task_manager().done(), 1u);
  EXPECT_EQ(session.task_manager().failed(), 1u);
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
}

}  // namespace
}  // namespace impress::rp
