// Retry / backoff / per-attempt deadline coverage for the fault-tolerance
// subsystem (docs/fault_tolerance.md): failed attempts are resubmitted
// under the task's RetryPolicy, deadlines evict overrunning attempts, and
// pilot outages re-route work to surviving pilots.

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/session.hpp"
#include "runtime/task_manager.hpp"

namespace impress::rp {
namespace {

PilotDescription node(std::uint32_t cores, std::uint32_t gpus = 0) {
  PilotDescription pd;
  pd.nodes = {hpc::NodeSpec{.name = "n", .cores = cores, .gpus = gpus,
                            .mem_gb = 64.0}};
  return pd;
}

/// Work that throws until the given attempt succeeds.
WorkFn flaky_until(int succeeds_on_attempt) {
  return [succeeds_on_attempt](Task& t) -> std::any {
    if (t.attempt() < succeeds_on_attempt)
      throw std::runtime_error("flaky (attempt " +
                               std::to_string(t.attempt()) + ")");
    return t.attempt();
  };
}

TEST(RetryPolicy, BackoffDelayIsExponential) {
  const RetryPolicy p{.max_attempts = 5,
                      .backoff_initial_s = 2.0,
                      .backoff_multiplier = 3.0,
                      .backoff_jitter = 0.0,
                      .attempt_timeout_s = 0.0};
  common::Rng rng(1);
  EXPECT_DOUBLE_EQ(p.backoff_delay(2, rng), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_delay(3, rng), 6.0);
  EXPECT_DOUBLE_EQ(p.backoff_delay(4, rng), 18.0);
}

TEST(RetryPolicy, JitterStaysWithinBounds) {
  const RetryPolicy p{.max_attempts = 3,
                      .backoff_initial_s = 10.0,
                      .backoff_multiplier = 2.0,
                      .backoff_jitter = 0.5,
                      .attempt_timeout_s = 0.0};
  common::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double d = p.backoff_delay(2, rng);
    EXPECT_GE(d, 5.0);
    EXPECT_LE(d, 15.0);
  }
}

TEST(RetryPolicy, InvalidPoliciesRejectedAtValidation) {
  auto td = make_simple_task("bad", 1, 0, 1.0);
  td.retry.max_attempts = 0;
  EXPECT_THROW(Task("task.x", td), std::invalid_argument);
  td.retry.max_attempts = 2;
  td.retry.backoff_initial_s = -1.0;
  EXPECT_THROW(Task("task.y", td), std::invalid_argument);
  td.retry.backoff_initial_s = 0.0;
  td.retry.attempt_timeout_s = -5.0;
  EXPECT_THROW(Task("task.z", td), std::invalid_argument);
}

TEST(Retry, FlakyWorkRetriedToSuccess) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(8));
  auto td = make_simple_task("flaky", 1, 0, 10.0, flaky_until(3));
  td.retry = RetryPolicy{.max_attempts = 3, .backoff_initial_s = 5.0};
  const auto task = session.task_manager().submit(std::move(td));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kDone);
  EXPECT_EQ(task->attempt(), 3);
  EXPECT_EQ(session.task_manager().done(), 1u);
  EXPECT_EQ(session.task_manager().failed(), 0u);
  EXPECT_EQ(session.task_manager().retried(), 2u);
  // Two runs plus two backoffs (5s then 10s) must have elapsed.
  EXPECT_GE(session.now(), 10.0 + 5.0 + 10.0);
}

TEST(Retry, ExhaustedPolicyIsTerminalFailure) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(8));
  auto td = make_simple_task("doomed", 1, 0, 1.0, [](Task&) -> std::any {
    throw std::runtime_error("always fails");
  });
  td.retry = RetryPolicy{.max_attempts = 2};
  const auto task = session.task_manager().submit(std::move(td));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kFailed);
  EXPECT_EQ(task->attempt(), 2);
  EXPECT_EQ(session.task_manager().failed(), 1u);
  EXPECT_EQ(session.task_manager().retried(), 1u);
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
}

TEST(Retry, InjectedFaultsFlowThroughPolicy) {
  SessionConfig cfg;
  cfg.faults.task_failure_rate = 1.0;  // every attempt crashes
  Session session{cfg};
  session.submit_pilot(node(8));
  auto td = make_simple_task("injected", 1, 0, 10.0);
  td.retry = RetryPolicy{.max_attempts = 2, .backoff_initial_s = 1.0};
  const auto task = session.task_manager().submit(std::move(td));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kFailed);
  EXPECT_EQ(task->attempt(), 2);
  EXPECT_NE(task->error().find("injected fault"), std::string::npos);
  EXPECT_EQ(session.task_manager().retried(), 1u);
}

TEST(Retry, AttemptDeadlineEvictsAndRetries) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(8));
  auto td = make_simple_task("slowpoke", 1, 0, 100.0);
  td.retry = RetryPolicy{.max_attempts = 2,
                         .backoff_initial_s = 1.0,
                         .backoff_multiplier = 2.0,
                         .backoff_jitter = 0.0,
                         .attempt_timeout_s = 10.0};
  const auto task = session.task_manager().submit(std::move(td));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kFailed);
  EXPECT_EQ(task->attempt(), 2);
  EXPECT_EQ(task->error(), "attempt deadline exceeded");
  EXPECT_EQ(session.task_manager().timed_out(), 2u);
  EXPECT_EQ(session.task_manager().retried(), 1u);
  // Both attempts were cut at 10s, not run to 100s.
  EXPECT_LT(session.now(), 100.0);
}

TEST(Retry, DeadlineDoesNotFireForFastTasks) {
  Session session{SessionConfig{}};
  session.submit_pilot(node(8));
  auto td = make_simple_task("quick", 1, 0, 5.0);
  td.retry = RetryPolicy{.max_attempts = 3,
                         .backoff_initial_s = 1.0,
                         .backoff_multiplier = 2.0,
                         .backoff_jitter = 0.0,
                         .attempt_timeout_s = 50.0};
  const auto task = session.task_manager().submit(std::move(td));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kDone);
  EXPECT_EQ(task->attempt(), 1);
  EXPECT_EQ(session.task_manager().timed_out(), 0u);
}

TEST(Retry, ResubmissionPrefersDifferentPilot) {
  Session session{SessionConfig{}};
  auto p1 = session.submit_pilot(node(8));
  auto p2 = session.submit_pilot(node(8));
  auto td = make_simple_task("mover", 1, 0, 10.0, flaky_until(2));
  td.retry = RetryPolicy{.max_attempts = 2, .backoff_initial_s = 1.0};
  const auto task = session.task_manager().submit(std::move(td));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kDone);
  EXPECT_EQ(task->attempt(), 2);
  // The failed first attempt ran on one pilot, the retry on the other.
  EXPECT_FALSE(p1->recorder().intervals().empty());
  EXPECT_FALSE(p2->recorder().intervals().empty());
}

TEST(Retry, PilotOutageReroutesWorkToSurvivor) {
  SessionConfig cfg;
  cfg.faults.pilot_outages.push_back(
      PilotOutage{.pilot_index = 0, .at_s = 50.0});
  Session session{cfg};
  auto doomed = session.submit_pilot(node(4));
  auto survivor = session.submit_pilot(node(4));
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 8; ++i) {
    auto td = make_simple_task("t" + std::to_string(i), 2, 0, 100.0);
    td.retry = RetryPolicy{.max_attempts = 3, .backoff_initial_s = 1.0};
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  session.run();
  EXPECT_EQ(doomed->state(), PilotState::kFailed);
  for (const auto& t : tasks) EXPECT_EQ(t->state(), TaskState::kDone);
  // Executing tasks on the dead pilot were evicted and retried; queued
  // ones were drained and re-routed without consuming an attempt.
  EXPECT_GT(session.task_manager().retried() +
                session.task_manager().requeued(),
            0u);
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
}

TEST(Retry, NoSurvivingPilotMeansTerminalFailure) {
  SessionConfig cfg;
  cfg.faults.pilot_outages.push_back(
      PilotOutage{.pilot_index = 0, .at_s = 10.0});
  Session session{cfg};
  session.submit_pilot(node(4));
  auto td = make_simple_task("stranded", 1, 0, 100.0);
  td.retry = RetryPolicy{.max_attempts = 5, .backoff_initial_s = 1.0};
  const auto task = session.task_manager().submit(std::move(td));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kFailed);
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
}

TEST(Retry, SpotReclaimEvictsAndPilotReturns) {
  // Spot capacity on pilot 0 is reclaimed at t=50 for 100s: executing
  // work is evicted onto the survivor (the PR-2 outage path) and the
  // pilot re-enters ACTIVE when the window ends — unlike a plain
  // PilotOutage, which is forever.
  SessionConfig cfg;
  cfg.faults.spot_reclaims.push_back(
      SpotReclaim{.pilot_index = 0, .at_s = 50.0, .down_s = 100.0});
  Session session{cfg};
  auto spot = session.submit_pilot(node(4));
  session.submit_pilot(node(4));
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 8; ++i) {
    auto td = make_simple_task("t" + std::to_string(i), 2, 0, 100.0);
    td.retry = RetryPolicy{.max_attempts = 3, .backoff_initial_s = 1.0};
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  session.run();
  for (const auto& t : tasks) EXPECT_EQ(t->state(), TaskState::kDone);
  // The window closed before the workload drained, so the pilot is back.
  EXPECT_EQ(spot->state(), PilotState::kActive);
  EXPECT_GT(session.task_manager().retried() +
                session.task_manager().requeued(),
            0u);
  bool reactivated = false;
  for (const auto& e : session.profiler().events())
    if (e.event == hpc::events::kPilotReactivated) reactivated = true;
  EXPECT_TRUE(reactivated);
}

TEST(Retry, ReturnedSpotPilotAcceptsNewWork) {
  // Single spot pilot, no survivor: work submitted after the window ends
  // lands on the returned pilot. (Work evicted *during* the window would
  // fail terminally — there is nowhere to retry — which is why campaigns
  // pair spot pilots with at least one durable one.)
  SessionConfig cfg;
  cfg.faults.spot_reclaims.push_back(
      SpotReclaim{.pilot_index = 0, .at_s = 10.0, .down_s = 40.0});
  Session session{cfg};
  auto spot = session.submit_pilot(node(4));
  TaskPtr late;
  session.call_after(60.0, [&] {
    auto td = make_simple_task("late", 1, 0, 5.0);
    late = session.task_manager().submit(std::move(td));
  });
  session.run();
  EXPECT_EQ(spot->state(), PilotState::kActive);
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->state(), TaskState::kDone);
}

TEST(Retry, SpotReclaimedRunIsDeterministic) {
  auto run_once = [] {
    SessionConfig cfg;
    cfg.seed = 77;
    cfg.faults.spot_reclaims.push_back(
        SpotReclaim{.pilot_index = 1, .at_s = 30.0, .down_s = 60.0});
    Session session{cfg};
    session.submit_pilot(node(4));
    session.submit_pilot(node(4));
    for (int i = 0; i < 12; ++i) {
      auto td = make_simple_task("t" + std::to_string(i), 2, 0, 50.0);
      td.retry = RetryPolicy{.max_attempts = 3, .backoff_initial_s = 2.0};
      (void)session.task_manager().submit(std::move(td));
    }
    session.run();
    return std::tuple{session.task_manager().done(),
                      session.task_manager().failed(),
                      session.task_manager().retried(),
                      session.task_manager().requeued(), session.now(),
                      session.profiler().events().size()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Retry, FaultedRunIsDeterministic) {
  auto run_once = [] {
    SessionConfig cfg;
    cfg.seed = 1234;
    cfg.faults.task_failure_rate = 0.3;
    cfg.faults.slow_task_rate = 0.2;
    Session session{cfg};
    session.submit_pilot(node(8));
    for (int i = 0; i < 16; ++i) {
      auto td = make_simple_task("t" + std::to_string(i), 1, 0, 20.0);
      td.retry = RetryPolicy{.max_attempts = 3, .backoff_initial_s = 2.0};
      (void)session.task_manager().submit(std::move(td));
    }
    session.run();
    return std::tuple{session.task_manager().done(),
                      session.task_manager().failed(),
                      session.task_manager().retried(), session.now(),
                      session.profiler().events().size()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace impress::rp
