#include "runtime/task.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace impress::rp {
namespace {

TEST(TaskState, Names) {
  EXPECT_EQ(to_string(TaskState::kNew), "NEW");
  EXPECT_EQ(to_string(TaskState::kSubmitted), "SUBMITTED");
  EXPECT_EQ(to_string(TaskState::kScheduling), "SCHEDULING");
  EXPECT_EQ(to_string(TaskState::kExecuting), "EXECUTING");
  EXPECT_EQ(to_string(TaskState::kDone), "DONE");
  EXPECT_EQ(to_string(TaskState::kFailed), "FAILED");
  EXPECT_EQ(to_string(TaskState::kCancelled), "CANCELLED");
}

TEST(TaskState, TerminalClassification) {
  EXPECT_FALSE(is_terminal(TaskState::kNew));
  EXPECT_FALSE(is_terminal(TaskState::kSubmitted));
  EXPECT_FALSE(is_terminal(TaskState::kScheduling));
  EXPECT_FALSE(is_terminal(TaskState::kExecuting));
  EXPECT_TRUE(is_terminal(TaskState::kDone));
  EXPECT_TRUE(is_terminal(TaskState::kFailed));
  EXPECT_TRUE(is_terminal(TaskState::kCancelled));
}

TEST(TaskDescription, NormalizeAddsDefaultPhase) {
  TaskDescription td;
  td.name = "t";
  td.resources = {.cores = 3, .gpus = 1, .mem_gb = 0.0};
  td.validate_and_normalize();
  ASSERT_EQ(td.phases.size(), 1u);
  EXPECT_EQ(td.phases[0].cores, 3u);
  EXPECT_EQ(td.phases[0].gpus, 1u);
}

TEST(TaskDescription, RejectsNoResources) {
  TaskDescription td;
  td.name = "t";
  td.resources = {.cores = 0, .gpus = 0, .mem_gb = 0.0};
  EXPECT_THROW(td.validate_and_normalize(), std::invalid_argument);
}

TEST(TaskDescription, RejectsPhaseExceedingAllocation) {
  TaskDescription td;
  td.name = "t";
  td.resources = {.cores = 2, .gpus = 0, .mem_gb = 0.0};
  td.phases.push_back(TaskPhase{.name = "p", .duration_s = 1.0, .cores = 4});
  EXPECT_THROW(td.validate_and_normalize(), std::invalid_argument);
}

TEST(TaskDescription, RejectsNegativeDuration) {
  TaskDescription td;
  td.name = "t";
  td.resources = {.cores = 1, .gpus = 0, .mem_gb = 0.0};
  td.phases.push_back(TaskPhase{.name = "p", .duration_s = -1.0, .cores = 1});
  EXPECT_THROW(td.validate_and_normalize(), std::invalid_argument);
}

TEST(TaskDescription, RejectsBadIntensity) {
  TaskDescription td;
  td.name = "t";
  td.resources = {.cores = 1, .gpus = 0, .mem_gb = 0.0};
  td.phases.push_back(
      TaskPhase{.name = "p", .duration_s = 1.0, .cores = 1, .cpu_intensity = 1.5});
  EXPECT_THROW(td.validate_and_normalize(), std::invalid_argument);
}

TEST(TaskDescription, TotalDurationSumsPhases) {
  TaskDescription td = make_simple_task("t", 1, 0, 5.0);
  td.phases.push_back(TaskPhase{.name = "p2", .duration_s = 3.0, .cores = 1});
  EXPECT_DOUBLE_EQ(td.total_duration_s(), 8.0);
}

TEST(MakeSimpleTask, FillsFields) {
  const auto td = make_simple_task("x", 2, 1, 60.0);
  EXPECT_EQ(td.name, "x");
  EXPECT_EQ(td.resources.cores, 2u);
  EXPECT_EQ(td.resources.gpus, 1u);
  ASSERT_EQ(td.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(td.phases[0].duration_s, 60.0);
}

TEST(Task, ConstructionValidates) {
  TaskDescription bad;
  bad.name = "bad";
  bad.resources = {.cores = 0, .gpus = 0, .mem_gb = 0.0};
  EXPECT_THROW(Task("task.0", bad), std::invalid_argument);
}

TEST(Task, InitialState) {
  Task t("task.0", make_simple_task("t", 1, 0, 1.0));
  EXPECT_EQ(t.uid(), "task.0");
  EXPECT_EQ(t.state(), TaskState::kNew);
  EXPECT_TRUE(t.allocation().empty());
  EXPECT_FALSE(t.result().has_value());
}

TEST(Task, StateTimestampsRecordFirstEntry) {
  Task t("task.0", make_simple_task("t", 1, 0, 1.0));
  EXPECT_TRUE(std::isnan(t.state_time(TaskState::kDone)));
  t.set_state(TaskState::kDone, 12.5);
  EXPECT_DOUBLE_EQ(t.state_time(TaskState::kDone), 12.5);
  t.set_state(TaskState::kDone, 99.0);  // re-entry keeps the first time
  EXPECT_DOUBLE_EQ(t.state_time(TaskState::kDone), 12.5);
}

TEST(Task, ResultTypedAccess) {
  Task t("task.0", make_simple_task("t", 1, 0, 1.0));
  t.set_result(std::any(42));
  EXPECT_EQ(t.result_as<int>(), 42);
  EXPECT_THROW((void)t.result_as<std::string>(), std::bad_any_cast);
}

}  // namespace
}  // namespace impress::rp
