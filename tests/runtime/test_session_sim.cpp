// End-to-end runtime behaviour on the simulated (discrete-event) executor:
// state machines, timing, utilization accounting, profiler events,
// cancellation, phases, and failure propagation.

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/session.hpp"

namespace impress::rp {
namespace {

PilotDescription small_pilot(double bootstrap = 0.0, double setup = 0.0) {
  PilotDescription pd;
  pd.nodes = {hpc::NodeSpec{.name = "n", .cores = 4, .gpus = 1, .mem_gb = 32.0}};
  pd.bootstrap_s = bootstrap;
  pd.exec_overhead = ExecOverheadModel{.setup_mean_s = setup,
                                       .setup_jitter_sigma = 0.0};
  pd.policy = SchedulerPolicy::kBackfill;
  return pd;
}

TEST(SimSession, SingleTaskLifecycle) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  auto task = session.task_manager().submit(make_simple_task("t", 1, 0, 100.0));
  EXPECT_FALSE(is_terminal(task->state()));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kDone);
  EXPECT_DOUBLE_EQ(session.now(), 100.0);
}

TEST(SimSession, StateTimestampsAreOrdered) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot(10.0, 5.0));
  auto task = session.task_manager().submit(make_simple_task("t", 1, 0, 100.0));
  session.run();
  const double submitted = task->state_time(TaskState::kSubmitted);
  const double scheduling = task->state_time(TaskState::kScheduling);
  const double executing = task->state_time(TaskState::kExecuting);
  const double done = task->state_time(TaskState::kDone);
  EXPECT_LE(submitted, scheduling);
  EXPECT_LE(scheduling, executing);
  EXPECT_LT(executing, done);
  // Bootstrap delays execution to t=10; setup adds 5; run takes 100.
  EXPECT_DOUBLE_EQ(executing, 10.0);
  EXPECT_DOUBLE_EQ(done, 115.0);
}

TEST(SimSession, WorkFunctionProducesResult) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  auto task = session.task_manager().submit(make_simple_task(
      "t", 1, 0, 1.0, [](Task&) -> std::any { return std::string("payload"); }));
  session.run();
  EXPECT_EQ(task->result_as<std::string>(), "payload");
}

TEST(SimSession, ThrowingWorkFails) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  auto task = session.task_manager().submit(make_simple_task(
      "t", 1, 0, 1.0,
      [](Task&) -> std::any { throw std::runtime_error("sim boom"); }));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kFailed);
  EXPECT_EQ(task->error(), "sim boom");
  EXPECT_EQ(session.task_manager().failed(), 1u);
}

TEST(SimSession, ConcurrentTasksOverlapInTime) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  // Two 2-core tasks fit the 4-core node simultaneously.
  auto a = session.task_manager().submit(make_simple_task("a", 2, 0, 100.0));
  auto b = session.task_manager().submit(make_simple_task("b", 2, 0, 100.0));
  session.run();
  EXPECT_DOUBLE_EQ(session.now(), 100.0);  // not 200: they ran concurrently
  EXPECT_EQ(a->state(), TaskState::kDone);
  EXPECT_EQ(b->state(), TaskState::kDone);
}

TEST(SimSession, ResourceContentionSerializes) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  auto a = session.task_manager().submit(make_simple_task("a", 3, 0, 100.0));
  auto b = session.task_manager().submit(make_simple_task("b", 3, 0, 100.0));
  session.run();
  EXPECT_DOUBLE_EQ(session.now(), 200.0);  // 3+3 > 4 cores: serialized
}

TEST(SimSession, UtilizationRecorded) {
  Session session{SessionConfig{}};
  auto pilot = session.submit_pilot(small_pilot());
  session.task_manager().submit(make_simple_task("t", 4, 1, 50.0));
  session.run();
  const auto s = pilot->recorder().summarize(0.0, 50.0);
  EXPECT_DOUBLE_EQ(s.cpu_active, 1.0);
  EXPECT_DOUBLE_EQ(s.gpu_active, 1.0);
}

TEST(SimSession, PhasesChangeResourceFootprint) {
  Session session{SessionConfig{}};
  auto pilot = session.submit_pilot(small_pilot());
  TaskDescription td;
  td.name = "two-phase";
  td.resources = {.cores = 4, .gpus = 1, .mem_gb = 0.0};
  td.phases.push_back(TaskPhase{.name = "cpu",
                                .duration_s = 60.0,
                                .cores = 4,
                                .gpus = 0,
                                .cpu_intensity = 1.0,
                                .gpu_intensity = 0.0});
  td.phases.push_back(TaskPhase{.name = "gpu",
                                .duration_s = 40.0,
                                .cores = 1,
                                .gpus = 1,
                                .cpu_intensity = 1.0,
                                .gpu_intensity = 1.0});
  session.task_manager().submit(std::move(td));
  session.run();
  EXPECT_DOUBLE_EQ(session.now(), 100.0);
  // First 60 s: full CPU, no GPU. Last 40 s: 1/4 CPU, full GPU.
  const auto early = pilot->recorder().summarize(0.0, 60.0);
  EXPECT_DOUBLE_EQ(early.cpu_active, 1.0);
  EXPECT_DOUBLE_EQ(early.gpu_active, 0.0);
  const auto late = pilot->recorder().summarize(60.0, 100.0);
  EXPECT_DOUBLE_EQ(late.cpu_active, 0.25);
  EXPECT_DOUBLE_EQ(late.gpu_active, 1.0);
}

TEST(SimSession, ProfilerEventOrdering) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot(5.0, 2.0));
  auto task = session.task_manager().submit(make_simple_task("t", 1, 0, 10.0));
  session.run();
  auto& prof = session.profiler();
  const auto submit = prof.time_of(task->uid(), hpc::events::kSubmit);
  const auto sched = prof.time_of(task->uid(), hpc::events::kSchedule);
  const auto setup = prof.time_of(task->uid(), hpc::events::kExecSetupStart);
  const auto start = prof.time_of(task->uid(), hpc::events::kExecStart);
  const auto stop = prof.time_of(task->uid(), hpc::events::kExecStop);
  const auto done = prof.time_of(task->uid(), hpc::events::kDone);
  ASSERT_TRUE(submit && sched && setup && start && stop && done);
  EXPECT_LE(*submit, *sched);
  EXPECT_LE(*sched, *setup);
  EXPECT_LT(*setup, *start);
  EXPECT_LT(*start, *stop);
  EXPECT_LE(*stop, *done);
  EXPECT_DOUBLE_EQ(*start - *setup, 2.0);
  EXPECT_DOUBLE_EQ(*stop - *start, 10.0);
}

TEST(SimSession, PhaseDurationsAggregated) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot(5.0, 2.0));
  session.task_manager().submit(make_simple_task("a", 1, 0, 10.0));
  session.task_manager().submit(make_simple_task("b", 1, 0, 20.0));
  session.run();
  const auto d = session.profiler().phase_durations();
  EXPECT_DOUBLE_EQ(d.at("bootstrap"), 5.0);
  EXPECT_DOUBLE_EQ(d.at("exec_setup"), 4.0);
  EXPECT_DOUBLE_EQ(d.at("running"), 30.0);
}

TEST(SimSession, CancelQueuedTask) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot(100.0));  // long bootstrap keeps it queued
  auto task = session.task_manager().submit(make_simple_task("t", 1, 0, 10.0));
  EXPECT_TRUE(session.task_manager().cancel(task));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kCancelled);
  EXPECT_EQ(session.task_manager().cancelled(), 1u);
}

TEST(SimSession, CancelExecutingTaskReleasesResources) {
  Session session{SessionConfig{}};
  auto pilot = session.submit_pilot(small_pilot());
  auto victim = session.task_manager().submit(make_simple_task("v", 4, 0, 1000.0));
  auto waiter = session.task_manager().submit(make_simple_task("w", 4, 0, 10.0));
  session.engine().schedule_at(
      50.0, [&] { session.task_manager().cancel(victim); });
  session.run();
  EXPECT_EQ(victim->state(), TaskState::kCancelled);
  EXPECT_EQ(waiter->state(), TaskState::kDone);
  EXPECT_DOUBLE_EQ(session.now(), 60.0);  // waiter starts right after cancel
  EXPECT_EQ(pilot->pool().free_cores(), 4u);
}

TEST(SimSession, CancelTerminalTaskFails) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  auto task = session.task_manager().submit(make_simple_task("t", 1, 0, 1.0));
  session.run();
  EXPECT_FALSE(session.task_manager().cancel(task));
}

TEST(SimSession, OversizedTaskRejectedAtSubmit) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  EXPECT_THROW(session.task_manager().submit(make_simple_task("big", 99, 0, 1.0)),
               std::runtime_error);
}

TEST(SimSession, SubmitWithNoPilotThrows) {
  Session session{SessionConfig{}};
  EXPECT_THROW(session.task_manager().submit(make_simple_task("t", 1, 0, 1.0)),
               std::runtime_error);
}

TEST(SimSession, CallbacksFireOncePerTerminalTask) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  int calls = 0;
  session.task_manager().add_callback([&](const TaskPtr&) { ++calls; });
  session.task_manager().submit(make_simple_task("a", 1, 0, 1.0));
  session.task_manager().submit(make_simple_task("b", 1, 0, 2.0));
  session.run();
  EXPECT_EQ(calls, 2);
}

TEST(SimSession, CallbackCanSubmitFollowOnWork) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  int completed = 0;
  session.task_manager().add_callback([&](const TaskPtr& t) {
    ++completed;
    if (t->description().name == "first")
      session.task_manager().submit(make_simple_task("second", 1, 0, 5.0));
  });
  session.task_manager().submit(make_simple_task("first", 1, 0, 5.0));
  session.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(session.task_manager().done(), 2u);
  EXPECT_DOUBLE_EQ(session.now(), 10.0);
}

TEST(SimSession, DurationJitterIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    SessionConfig cfg;
    cfg.seed = seed;
    Session session{cfg};
    session.submit_pilot(small_pilot());
    auto td = make_simple_task("t", 1, 0, 100.0);
    td.phases[0].jitter_sigma = 0.3;
    session.task_manager().submit(std::move(td));
    session.run();
    return session.now();
  };
  EXPECT_DOUBLE_EQ(run_once(1), run_once(1));
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(SimSession, MultiplePilotsShareLoad) {
  Session session{SessionConfig{}};
  auto p1 = session.submit_pilot(small_pilot());
  auto p2 = session.submit_pilot(small_pilot());
  for (int i = 0; i < 8; ++i)
    session.task_manager().submit(
        make_simple_task("t" + std::to_string(i), 4, 0, 100.0));
  session.run();
  // 8 node-filling tasks over 2 nodes -> 4 rounds of 100 s.
  EXPECT_DOUBLE_EQ(session.now(), 400.0);
  EXPECT_GT(p1->recorder().intervals().size(), 0u);
  EXPECT_GT(p2->recorder().intervals().size(), 0u);
}

TEST(SimSession, TaskCountsAreConsistent) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  for (int i = 0; i < 5; ++i)
    session.task_manager().submit(make_simple_task("t" + std::to_string(i), 1, 0, 1.0));
  EXPECT_EQ(session.task_manager().submitted(), 5u);
  EXPECT_EQ(session.task_manager().outstanding(), 5u);
  session.run();
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
  EXPECT_EQ(session.task_manager().done(), 5u);
}

}  // namespace
}  // namespace impress::rp
