#include "runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace impress::rp {
namespace {

struct Fixture {
  hpc::ResourcePool pool{hpc::amarel_node()};
  std::vector<std::pair<TaskPtr, hpc::Allocation>> placed;

  Scheduler make(SchedulerPolicy policy) {
    return Scheduler(policy, pool, [this](TaskPtr t, hpc::Allocation a) {
      placed.emplace_back(std::move(t), std::move(a));
    });
  }

  static TaskPtr task(const std::string& name, std::uint32_t cores,
                      std::uint32_t gpus = 0, int priority = 0) {
    auto td = make_simple_task(name, cores, gpus, 1.0);
    td.priority = priority;
    return std::make_shared<Task>("task." + name, std::move(td));
  }
};

TEST(SchedulerPolicyNames, Strings) {
  EXPECT_EQ(to_string(SchedulerPolicy::kFifo), "FIFO");
  EXPECT_EQ(to_string(SchedulerPolicy::kBackfill), "BACKFILL");
}

TEST(Scheduler, PlacesWhatFits) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kFifo);
  s.enqueue(Fixture::task("a", 10));
  s.enqueue(Fixture::task("b", 10));
  EXPECT_EQ(s.try_schedule(), 2u);
  EXPECT_EQ(f.placed.size(), 2u);
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST(Scheduler, FifoHeadBlocksQueue) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kFifo);
  // Occupy 22 cores so the 10-core head cannot start.
  auto big = f.pool.allocate({.cores = 22});
  ASSERT_TRUE(big);
  s.enqueue(Fixture::task("head", 10));
  s.enqueue(Fixture::task("small", 2));  // would fit, but FIFO blocks it
  EXPECT_EQ(s.try_schedule(), 0u);
  EXPECT_EQ(s.queue_length(), 2u);
  f.pool.release(*big);
  EXPECT_EQ(s.try_schedule(), 2u);
}

TEST(Scheduler, BackfillSkipsBlockedHead) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kBackfill);
  auto big = f.pool.allocate({.cores = 22});
  ASSERT_TRUE(big);
  s.enqueue(Fixture::task("head", 10));
  s.enqueue(Fixture::task("small", 2));
  EXPECT_EQ(s.try_schedule(), 1u);
  ASSERT_EQ(f.placed.size(), 1u);
  EXPECT_EQ(f.placed[0].first->description().name, "small");
  EXPECT_EQ(s.queue_length(), 1u);
  f.pool.release(*big);
}

TEST(Scheduler, BackfillHonorsPriority) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kBackfill);
  s.enqueue(Fixture::task("low", 2, 0, 0));
  s.enqueue(Fixture::task("high", 2, 0, 5));
  EXPECT_EQ(s.try_schedule(), 2u);
  ASSERT_EQ(f.placed.size(), 2u);
  EXPECT_EQ(f.placed[0].first->description().name, "high");
}

TEST(Scheduler, BackfillStableWithinPriority) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kBackfill);
  s.enqueue(Fixture::task("first", 2));
  s.enqueue(Fixture::task("second", 2));
  EXPECT_EQ(s.try_schedule(), 2u);
  ASSERT_EQ(f.placed.size(), 2u);
  EXPECT_EQ(f.placed[0].first->description().name, "first");
}

TEST(Scheduler, RemoveDequeuesTask) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kFifo);
  auto t = Fixture::task("a", 2);
  s.enqueue(t);
  EXPECT_TRUE(s.remove(t));
  EXPECT_FALSE(s.remove(t));
  EXPECT_EQ(s.queue_length(), 0u);
  EXPECT_EQ(s.try_schedule(), 0u);
}

TEST(Scheduler, GpuContentionLimitsPlacement) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kBackfill);
  for (int i = 0; i < 6; ++i)
    s.enqueue(Fixture::task("g" + std::to_string(i), 1, 1));
  EXPECT_EQ(s.try_schedule(), 4u);  // only 4 GPUs
  EXPECT_EQ(s.queue_length(), 2u);
}

TEST(Scheduler, AllocationsMatchRequests) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kBackfill);
  s.enqueue(Fixture::task("a", 5, 2));
  EXPECT_EQ(s.try_schedule(), 1u);
  ASSERT_EQ(f.placed.size(), 1u);
  EXPECT_EQ(f.placed[0].second.cores.size(), 5u);
  EXPECT_EQ(f.placed[0].second.gpus.size(), 2u);
}

// Regression (per-tick sort): under kBackfill the queue is kept in
// priority order at enqueue, so try_schedule never sorts. Interleaved
// enqueues must still come out highest-priority first, submission order
// preserved within a priority class.
TEST(Scheduler, EnqueueMaintainsPriorityOrder) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kBackfill);
  s.enqueue(Fixture::task("p0-a", 2, 0, 0));
  s.enqueue(Fixture::task("p5-a", 2, 0, 5));
  s.enqueue(Fixture::task("p3", 2, 0, 3));
  s.enqueue(Fixture::task("p5-b", 2, 0, 5));
  s.enqueue(Fixture::task("p0-b", 2, 0, 0));
  const auto drained = s.drain();
  ASSERT_EQ(drained.size(), 5u);
  EXPECT_EQ(drained[0]->description().name, "p5-a");
  EXPECT_EQ(drained[1]->description().name, "p5-b");
  EXPECT_EQ(drained[2]->description().name, "p3");
  EXPECT_EQ(drained[3]->description().name, "p0-a");
  EXPECT_EQ(drained[4]->description().name, "p0-b");
}

TEST(Scheduler, PriorityOrderSurvivesPartialScheduling) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kBackfill);
  // Fill the node so nothing can start, then enqueue out of order.
  auto big = f.pool.allocate({.cores = 28});
  ASSERT_TRUE(big);
  s.enqueue(Fixture::task("low", 2, 0, 1));
  s.enqueue(Fixture::task("high", 2, 0, 9));
  EXPECT_EQ(s.try_schedule(), 0u);
  s.enqueue(Fixture::task("mid", 2, 0, 4));
  f.pool.release(*big);
  EXPECT_EQ(s.try_schedule(), 3u);
  ASSERT_EQ(f.placed.size(), 3u);
  EXPECT_EQ(f.placed[0].first->description().name, "high");
  EXPECT_EQ(f.placed[1].first->description().name, "mid");
  EXPECT_EQ(f.placed[2].first->description().name, "low");
}

TEST(Scheduler, DrainEmptiesQueueInOrder) {
  Fixture f;
  auto s = f.make(SchedulerPolicy::kFifo);
  s.enqueue(Fixture::task("a", 2));
  s.enqueue(Fixture::task("b", 2));
  s.enqueue(Fixture::task("c", 2));
  const auto drained = s.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0]->description().name, "a");
  EXPECT_EQ(drained[2]->description().name, "c");
  EXPECT_EQ(s.queue_length(), 0u);
  EXPECT_EQ(s.try_schedule(), 0u);
}

class SchedulerPolicySweep : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(SchedulerPolicySweep, EventuallyDrainsQueue) {
  Fixture f;
  auto s = f.make(GetParam());
  for (int i = 0; i < 20; ++i)
    s.enqueue(Fixture::task("t" + std::to_string(i), 7, i % 2));
  // Repeatedly schedule and free everything placed, as completions would.
  int rounds = 0;
  while (s.queue_length() > 0 && rounds < 100) {
    (void)s.try_schedule();
    for (auto& [t, a] : f.placed) f.pool.release(a);
    f.placed.clear();
    ++rounds;
  }
  EXPECT_EQ(s.queue_length(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerPolicySweep,
                         ::testing::Values(SchedulerPolicy::kFifo,
                                           SchedulerPolicy::kBackfill));

}  // namespace
}  // namespace impress::rp
