// Runtime behaviour on the threaded executor: the same middleware under
// real concurrency. Durations here are virtual seconds scaled by
// time_scale, so keep them small enough that tests stay fast but large
// enough that overlap is real.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "runtime/session.hpp"

namespace impress::rp {
namespace {

SessionConfig threaded_config(std::uint64_t seed = 42) {
  SessionConfig cfg;
  cfg.mode = ExecutionMode::kThreaded;
  cfg.seed = seed;
  cfg.time_scale = 1e-3;  // 1 virtual second = 1 ms wall
  cfg.worker_threads = 8;
  return cfg;
}

PilotDescription small_pilot() {
  PilotDescription pd;
  pd.nodes = {hpc::NodeSpec{.name = "n", .cores = 4, .gpus = 1, .mem_gb = 32.0}};
  pd.policy = SchedulerPolicy::kBackfill;
  return pd;
}

TEST(ThreadedSession, SingleTaskCompletes) {
  Session session{threaded_config()};
  session.submit_pilot(small_pilot());
  auto task = session.task_manager().submit(make_simple_task("t", 1, 0, 20.0));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kDone);
}

TEST(ThreadedSession, WorkRunsOnWorkerAndReturnsResult) {
  Session session{threaded_config()};
  session.submit_pilot(small_pilot());
  const auto main_id = std::this_thread::get_id();
  auto task = session.task_manager().submit(make_simple_task(
      "t", 1, 0, 1.0, [main_id](Task&) -> std::any {
        EXPECT_NE(std::this_thread::get_id(), main_id);
        return 123;
      }));
  session.run();
  EXPECT_EQ(task->result_as<int>(), 123);
}

TEST(ThreadedSession, ManyTasksAllComplete) {
  Session session{threaded_config()};
  session.submit_pilot(small_pilot());
  for (int i = 0; i < 50; ++i)
    session.task_manager().submit(
        make_simple_task("t" + std::to_string(i), 1, 0, 5.0));
  session.run();
  EXPECT_EQ(session.task_manager().done(), 50u);
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
}

TEST(ThreadedSession, TasksActuallyOverlap) {
  Session session{threaded_config()};
  auto pilot = session.submit_pilot(small_pilot());
  for (int i = 0; i < 4; ++i)
    session.task_manager().submit(
        make_simple_task("t" + std::to_string(i), 1, 0, 80.0));
  const auto wall0 = std::chrono::steady_clock::now();
  session.run();
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall0)
                        .count();
  EXPECT_EQ(session.task_manager().done(), 4u);
  // 4 x 80 virtual ms would be ~320 ms wall if serialized; the 4-core
  // node runs them concurrently, so well under that even with slack.
  EXPECT_LT(wall, 0.25);
  // And the recorded usage intervals must actually overlap in time.
  const auto intervals = pilot->recorder().intervals();
  ASSERT_EQ(intervals.size(), 4u);
  double earliest_end = intervals[0].end, latest_start = intervals[0].start;
  for (const auto& iv : intervals) {
    earliest_end = std::min(earliest_end, iv.end);
    latest_start = std::max(latest_start, iv.start);
  }
  EXPECT_LT(latest_start, earliest_end);
}

TEST(ThreadedSession, FailurePropagates) {
  Session session{threaded_config()};
  session.submit_pilot(small_pilot());
  auto task = session.task_manager().submit(make_simple_task(
      "t", 1, 0, 1.0,
      [](Task&) -> std::any { throw std::runtime_error("thread boom"); }));
  session.run();
  EXPECT_EQ(task->state(), TaskState::kFailed);
  EXPECT_EQ(task->error(), "thread boom");
}

TEST(ThreadedSession, UtilizationIntervalsRecorded) {
  Session session{threaded_config()};
  auto pilot = session.submit_pilot(small_pilot());
  session.task_manager().submit(make_simple_task("t", 2, 1, 30.0));
  session.run();
  const auto intervals = pilot->recorder().intervals();
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].cores, 2u);
  EXPECT_EQ(intervals[0].gpus, 1u);
  EXPECT_GT(intervals[0].end, intervals[0].start);
}

TEST(ThreadedSession, CallbacksFireOffMainThread) {
  Session session{threaded_config()};
  session.submit_pilot(small_pilot());
  std::atomic<int> calls{0};
  session.task_manager().add_callback([&](const TaskPtr&) { ++calls; });
  for (int i = 0; i < 10; ++i)
    session.task_manager().submit(
        make_simple_task("t" + std::to_string(i), 1, 0, 2.0));
  session.run();
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadedSession, CooperativeCancelBetweenPhases) {
  Session session{threaded_config()};
  session.submit_pilot(small_pilot());
  TaskDescription td;
  td.name = "phased";
  td.resources = {.cores = 1, .gpus = 0, .mem_gb = 0.0};
  for (int i = 0; i < 10; ++i)
    td.phases.push_back(TaskPhase{.name = "p" + std::to_string(i),
                                  .duration_s = 30.0,
                                  .cores = 1});
  auto task = session.task_manager().submit(std::move(td));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  session.task_manager().cancel(task);
  session.run();
  EXPECT_EQ(task->state(), TaskState::kCancelled);
  EXPECT_EQ(session.task_manager().cancelled(), 1u);
}

TEST(ThreadedSession, FollowOnSubmissionFromCallback) {
  Session session{threaded_config()};
  session.submit_pilot(small_pilot());
  std::atomic<int> chain{0};
  session.task_manager().add_callback([&](const TaskPtr& t) {
    if (t->description().name.rfind("chain", 0) == 0 && chain < 5) {
      ++chain;
      session.task_manager().submit(
          make_simple_task("chain" + std::to_string(chain.load()), 1, 0, 2.0));
    }
  });
  session.task_manager().submit(make_simple_task("chain0", 1, 0, 2.0));
  session.run();
  EXPECT_EQ(session.task_manager().done(), 6u);  // original + 5 follow-ons
}

}  // namespace
}  // namespace impress::rp
