#include "runtime/fault.hpp"

#include <gtest/gtest.h>

#include <string>

namespace impress::rp {
namespace {

TEST(FaultConfig, AnyDetectsEverySource) {
  EXPECT_FALSE(FaultConfig{}.any());
  EXPECT_TRUE((FaultConfig{.task_failure_rate = 0.1}.any()));
  EXPECT_TRUE((FaultConfig{.slow_task_rate = 0.1}.any()));
  FaultConfig outage;
  outage.pilot_outages.push_back(PilotOutage{.pilot_index = 0, .at_s = 10.0});
  EXPECT_TRUE(outage.any());
}

TEST(FaultInjector, DrawIsDeterministicPerUidAndAttempt) {
  const FaultConfig cfg{.task_failure_rate = 0.5, .slow_task_rate = 0.5};
  const FaultInjector inj(cfg, common::Rng(7));
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const auto a = inj.draw_attempt("task.000001", attempt);
    const auto b = inj.draw_attempt("task.000001", attempt);
    EXPECT_EQ(a.fail, b.fail);
    EXPECT_DOUBLE_EQ(a.fail_fraction, b.fail_fraction);
    EXPECT_DOUBLE_EQ(a.slow_factor, b.slow_factor);
  }
}

TEST(FaultInjector, AttemptsAreIndependentDraws) {
  // With a 50% failure rate, 64 attempts of one task cannot all share the
  // same fate unless the attempt number were ignored.
  const FaultConfig cfg{.task_failure_rate = 0.5};
  const FaultInjector inj(cfg, common::Rng(11));
  int failures = 0;
  for (int attempt = 1; attempt <= 64; ++attempt)
    failures += inj.draw_attempt("task.000042", attempt).fail ? 1 : 0;
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 64);
}

TEST(FaultInjector, RatesRoughlyRespected) {
  const FaultConfig cfg{.task_failure_rate = 0.25};
  const FaultInjector inj(cfg, common::Rng(3));
  int failures = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i)
    if (inj.draw_attempt("task." + std::to_string(i), 1).fail) ++failures;
  const double rate = static_cast<double>(failures) / n;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultInjector, NeutralWhenNothingConfigured) {
  const FaultInjector inj(FaultConfig{}, common::Rng(1));
  EXPECT_FALSE(inj.enabled());
  const auto fault = inj.draw_attempt("task.000001", 1);
  EXPECT_FALSE(fault.fail);
  EXPECT_DOUBLE_EQ(fault.slow_factor, 1.0);
}

TEST(FaultInjector, SlowTasksGetStretchedNotFailed) {
  const FaultConfig cfg{.slow_task_rate = 1.0, .slow_factor = 4.0};
  const FaultInjector inj(cfg, common::Rng(5));
  const auto fault = inj.draw_attempt("task.000009", 1);
  EXPECT_FALSE(fault.fail);
  EXPECT_DOUBLE_EQ(fault.slow_factor, 4.0);
}

TEST(FaultInjector, FailFractionIsAPartialRun) {
  const FaultConfig cfg{.task_failure_rate = 1.0};
  const FaultInjector inj(cfg, common::Rng(13));
  for (int i = 0; i < 32; ++i) {
    const auto fault = inj.draw_attempt("task." + std::to_string(i), 1);
    ASSERT_TRUE(fault.fail);
    EXPECT_GT(fault.fail_fraction, 0.0);
    EXPECT_LT(fault.fail_fraction, 1.0);
  }
}

TEST(FaultInjector, DifferentSeedsDifferentFates) {
  const FaultConfig cfg{.task_failure_rate = 0.5};
  const FaultInjector a(cfg, common::Rng(1));
  const FaultInjector b(cfg, common::Rng(2));
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    const auto uid = "task." + std::to_string(i);
    if (a.draw_attempt(uid, 1).fail != b.draw_attempt(uid, 1).fail)
      ++differing;
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace impress::rp
