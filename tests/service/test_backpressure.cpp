#include "service/backpressure.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace impress::service {
namespace {

BackpressureConfig test_config() {
  BackpressureConfig c;
  c.interval_s = 1.0;
  c.epsilon = 0.05;
  c.latency_ref_s = 10.0;
  return c;
}

TEST(Utility, GoodputTimesQualityDominatesWhenFast) {
  const BackpressureConfig c = test_config();
  IntervalStats s;
  s.goodput = 10.0;
  s.mean_quality = 0.8;
  s.mean_first_result_s = 0.0;
  s.drop_rate = 0.0;
  EXPECT_DOUBLE_EQ(RateController::utility(s, c), 8.0);
}

TEST(Utility, MonotoneInGoodputAndQuality) {
  const BackpressureConfig c = test_config();
  IntervalStats lo;
  lo.goodput = 5.0;
  lo.mean_quality = 0.5;
  lo.mean_first_result_s = 1.0;
  IntervalStats hi_goodput = lo;
  hi_goodput.goodput = 6.0;
  IntervalStats hi_quality = lo;
  hi_quality.mean_quality = 0.7;
  EXPECT_GT(RateController::utility(hi_goodput, c),
            RateController::utility(lo, c));
  EXPECT_GT(RateController::utility(hi_quality, c),
            RateController::utility(lo, c));
}

TEST(Utility, DelayAndDropsPenalize) {
  const BackpressureConfig c = test_config();
  IntervalStats base;
  base.goodput = 5.0;
  base.mean_quality = 0.8;
  IntervalStats slow = base;
  slow.mean_first_result_s = 5.0;
  IntervalStats lossy = base;
  lossy.drop_rate = 3.0;
  EXPECT_LT(RateController::utility(slow, c),
            RateController::utility(base, c));
  EXPECT_LT(RateController::utility(lossy, c),
            RateController::utility(base, c));
}

TEST(RateController, ProbesPairAroundBaseRate) {
  const BackpressureConfig c = test_config();
  RateController rc(c, 100.0);
  EXPECT_DOUBLE_EQ(rc.rate(), 100.0);
  // First interval probes up, second probes down.
  EXPECT_DOUBLE_EQ(rc.applied_rate(), 100.0 * (1.0 + c.epsilon));
  IntervalStats flat;
  flat.goodput = 10.0;
  flat.mean_quality = 0.5;
  rc.on_interval(flat);
  EXPECT_DOUBLE_EQ(rc.applied_rate(), 100.0 * (1.0 - c.epsilon));
  rc.on_interval(flat);
  // Identical utilities in both probes -> zero gradient -> rate unchanged.
  EXPECT_DOUBLE_EQ(rc.rate(), 100.0);
}

TEST(RateController, MovesTowardHigherUtility) {
  const BackpressureConfig c = test_config();
  // Plant: utility strictly increases with rate (uncongested). The
  // controller should raise the base rate on every completed probe pair.
  RateController rc(c, 10.0);
  double prev = rc.rate();
  for (int pair = 0; pair < 8; ++pair) {
    for (int half = 0; half < 2; ++half) {
      IntervalStats s;
      s.goodput = rc.applied_rate();  // all admitted work completes
      s.mean_quality = 0.8;
      rc.on_interval(s);
    }
    EXPECT_GT(rc.rate(), prev);
    prev = rc.rate();
  }
}

TEST(RateController, BacksOffUnderCongestion) {
  const BackpressureConfig c = test_config();
  // Plant: capacity 20/s; goodput saturates and delay grows with rate.
  RateController rc(c, 100.0);
  double prev = rc.rate();
  for (int pair = 0; pair < 8; ++pair) {
    for (int half = 0; half < 2; ++half) {
      const double r = rc.applied_rate();
      IntervalStats s;
      s.goodput = std::min(r, 20.0);
      s.mean_quality = 0.8;
      s.mean_first_result_s = r > 20.0 ? (r - 20.0) : 0.0;  // queue builds
      s.drop_rate = r > 20.0 ? (r - 20.0) : 0.0;
      rc.on_interval(s);
    }
    EXPECT_LT(rc.rate(), prev);
    prev = rc.rate();
  }
}

TEST(RateController, ConvergesNearPlantCapacity) {
  const BackpressureConfig c = test_config();
  // Memoryless overload plant with capacity 20/s: utility rises with rate
  // below capacity (goodput term) and falls above it (delay + drop
  // terms), so the utility optimum sits at capacity. A stateful backlog
  // plant would bias the paired probes (the later down-probe always sees
  // more backlog); the service-level convergence test covers that case.
  constexpr double kCapacity = 20.0;
  RateController rc(c, 200.0);
  for (int interval = 0; interval < 400; ++interval) {
    const double r = rc.applied_rate();
    const double over = std::max(0.0, r - kCapacity);
    IntervalStats s;
    s.goodput = std::min(r, kCapacity);
    s.mean_quality = 0.8;
    s.mean_first_result_s = over / kCapacity * 5.0;
    s.drop_rate = over;
    rc.on_interval(s);
  }
  // Settles near capacity rather than pinning at the clamp rails.
  EXPECT_GT(rc.rate(), 0.5 * kCapacity);
  EXPECT_LT(rc.rate(), 2.0 * kCapacity);
}

TEST(RateController, RespectsClampRails) {
  BackpressureConfig c = test_config();
  c.min_rate = 1.0;
  c.max_rate = 50.0;
  // Relentless congestion: rate must floor at min_rate, never below.
  RateController down(c, 40.0);
  for (int i = 0; i < 200; ++i) {
    IntervalStats s;
    s.goodput = 0.0;
    s.mean_quality = 0.0;
    s.drop_rate = down.applied_rate();
    down.on_interval(s);
    EXPECT_GE(down.rate(), c.min_rate);
  }
  EXPECT_NEAR(down.rate(), c.min_rate, 1e-9);
  // Relentless headroom: rate must cap at max_rate, never above.
  RateController up(c, 10.0);
  for (int i = 0; i < 200; ++i) {
    IntervalStats s;
    s.goodput = up.applied_rate();
    s.mean_quality = 1.0;
    up.on_interval(s);
    EXPECT_LE(up.rate(), c.max_rate);
  }
  EXPECT_NEAR(up.rate(), c.max_rate, 1e-9);
}

TEST(RateController, DeterministicReplay) {
  const BackpressureConfig c = test_config();
  auto run = [&c] {
    RateController rc(c, 64.0);
    double backlog = 0.0;
    for (int i = 0; i < 100; ++i) {
      const double r = rc.applied_rate();
      backlog = std::max(0.0, backlog + (r - 30.0));
      IntervalStats s;
      s.goodput = std::min(r, 30.0);
      s.mean_quality = 0.7;
      s.mean_first_result_s = backlog / 30.0;
      rc.on_interval(s);
    }
    return rc.rate();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace impress::service
