// The allocation-free hot-path pin: this binary replaces the global
// operator new/delete with counting versions and asserts that a warmed-up
// CampaignService performs ZERO heap allocations across steady-state
// submit / tick / backend-advance / completion cycles.
//
// Kept as its own test binary (see tests/CMakeLists.txt) so the operator
// replacement cannot perturb the other service tests.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/lockdep.hpp"
#include "common/rng.hpp"
#include "service/service.hpp"
#include "service/sim_backend.hpp"

namespace {

// Allocations by the current thread through any global new. thread_local
// so allocator traffic from other threads (gtest internals, the runtime)
// cannot pollute a measurement window.
thread_local std::uint64_t g_thread_allocs = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_thread_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace impress::service {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

TEST(AllocFree, CountingAllocatorSeesOurOwnAllocations) {
  const std::uint64_t before = g_thread_allocs;
  auto* p = new int(7);
  EXPECT_EQ(g_thread_allocs, before + 1);
  delete p;
}

TEST(AllocFree, SteadyStateSubmitTickCompleteIsAllocationFree) {
#if IMPRESS_LOCKDEP_COMPILED_IN
  GTEST_SKIP() << "lockdep instrumentation may allocate inside TrackedMutex";
#endif
  SimulatedBackendConfig bc;
  bc.slots = 16;
  bc.duration_scale = 1e-6;  // campaigns finish within a few virtual ms
  bc.reserve_events = 8192;
  SimulatedBackend backend(bc);

  ServiceConfig c;
  c.backpressure_enabled = true;  // the rate controller must be free too
  c.backpressure.interval_s = 0.5;
  c.global_max_open = 1024;
  c.max_dispatched = 64;
  c.max_dispatch_per_tick = 512;
  c.shed_age_ns = 2 * kSecond;  // exercise the shed path as well
  for (int i = 0; i < 4; ++i) {
    TenantConfig t;
    t.name = "tenant";
    t.tier = static_cast<Tier>(i % 3);
    t.weight = static_cast<std::uint32_t>(1 + i);
    t.max_open = 128;
    t.initial_rate = 1e5;
    c.tenants.push_back(t);
  }
  CampaignService svc(c, backend);
  backend.attach(svc);

  common::Rng rng(0xA110CFEE);
  std::uint64_t payload = 1;
  auto cycle = [&](std::uint64_t from_s, std::uint64_t to_s) {
    for (std::uint64_t now = from_s * kSecond; now <= to_s * kSecond;
         now += kSecond / 10) {
      backend.advance_to(now);
      for (TenantId t = 0; t < 4; ++t) {
        const int burst = 1 + static_cast<int>(payload % 8);
        for (int i = 0; i < burst; ++i) {
          svc.submit(t, payload, 1 + static_cast<std::uint32_t>(payload % 4),
                     now);
          payload = common::splitmix64(payload);
        }
      }
      svc.tick(now);
    }
  };

  // Warm-up: every lazy structure (pool slabs, event heap reservation,
  // controller state) must be in place after construction + one cycle.
  cycle(0, 5);

  const std::uint64_t before = g_thread_allocs;
  cycle(5, 30);
  const std::uint64_t after = g_thread_allocs;
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations leaked into the hot path";

  // The work actually ran — this wasn't a no-op loop.
  const ServiceReport r = svc.report();
  EXPECT_GT(r.admitted, 1000u);
  EXPECT_GT(r.completed, 1000u);
  EXPECT_EQ(r.pool.capacity, 1024u);
}

TEST(AllocFree, RejectionPathsAreAllocationFree) {
#if IMPRESS_LOCKDEP_COMPILED_IN
  GTEST_SKIP() << "lockdep instrumentation may allocate inside TrackedMutex";
#endif
  SimulatedBackendConfig bc;
  bc.slots = 1;
  SimulatedBackend backend(bc);
  ServiceConfig c;
  c.backpressure_enabled = false;
  c.global_max_open = 8;
  c.tenants.resize(2);
  c.tenants[0].name = "a";
  c.tenants[0].max_open = 4;
  c.tenants[0].initial_rate = 2.0;
  c.tenants[1].name = "b";
  c.tenants[1].max_open = 8;
  c.tenants[1].initial_rate = 1e6;
  CampaignService svc(c, backend);
  backend.attach(svc);

  // Warm-up covers every admission outcome once.
  for (int i = 0; i < 64; ++i) {
    svc.submit(0, 1, 1, 0);
    svc.submit(1, 1, 1, 0);
    svc.submit(9, 1, 1, 0);  // bad tenant
  }

  const std::uint64_t before = g_thread_allocs;
  for (int i = 0; i < 10000; ++i) {
    svc.submit(0, 1, 1, 0);  // rate-rejected (bucket drained)
    svc.submit(1, 1, 1, 0);  // quota/capacity-rejected (cap full)
    svc.submit(9, 1, 1, 0);  // bad tenant
  }
  EXPECT_EQ(g_thread_allocs - before, 0u);

  const ServiceReport r = svc.report();
  EXPECT_GT(r.rejected, 20000u);
}

}  // namespace
}  // namespace impress::service
