// CampaignService behavior: admission property tests (quotas and caps
// never exceeded), DRR weight shares, strict tier priority, token-bucket
// rate limiting, shedding, and seed-determinism of the full service +
// simulated-backend stack.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "service/sim_backend.hpp"

namespace impress::service {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

/// Backend that parks every dispatched record until the test completes it
/// explicitly — makes in-flight occupancy and completion timing exact.
class ManualBackend final : public ExecutionBackend {
 public:
  void attach(CampaignService& s) noexcept { service_ = &s; }

  void start(SubmissionRecord& rec, std::uint64_t /*now_ns*/) override {
    held_.push_back(&rec);
  }

  [[nodiscard]] rp::LoadSnapshot load() const override {
    return {held_.size(), held_.size(), 16};
  }

  [[nodiscard]] std::size_t held() const noexcept { return held_.size(); }

  /// Complete the oldest `n` held records at `now_ns`.
  void complete(std::size_t n, std::uint64_t now_ns, double quality = 0.9) {
    while (n-- > 0 && !held_.empty()) {
      SubmissionRecord* rec = held_.front();
      held_.pop_front();
      service_->on_complete(*rec, now_ns, quality);
    }
  }

 private:
  CampaignService* service_ = nullptr;
  std::deque<SubmissionRecord*> held_;
};

TenantConfig tenant(const std::string& name, Tier tier, std::uint32_t weight,
                    std::uint32_t max_open, double rate) {
  TenantConfig t;
  t.name = name;
  t.tier = tier;
  t.weight = weight;
  t.max_open = max_open;
  t.initial_rate = rate;
  t.burst_s = 2.0;
  return t;
}

ServiceConfig base_config() {
  ServiceConfig c;
  c.backpressure_enabled = false;  // fixed rates unless a test opts in
  c.global_max_open = 4096;
  c.max_dispatched = 4096;
  c.max_dispatch_per_tick = 4096;
  return c;
}

TEST(CampaignService, LifecycleCountsAndLatency) {
  ServiceConfig c = base_config();
  c.tenants = {tenant("a", Tier::kStandard, 1, 64, 1e6)};
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);

  for (int i = 0; i < 10; ++i) {
    const SubmitResult r =
        svc.submit(0, /*seed=*/static_cast<std::uint64_t>(i), 1, 0);
    ASSERT_TRUE(r.admitted());
    EXPECT_EQ(r.seq, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(svc.open_now(), 10u);
  EXPECT_EQ(svc.in_flight_now(), 0u);

  svc.tick(0);
  EXPECT_EQ(backend.held(), 10u);
  EXPECT_EQ(svc.in_flight_now(), 10u);

  backend.complete(10, 3 * kSecond, 0.8);
  EXPECT_EQ(svc.open_now(), 0u);
  EXPECT_EQ(svc.in_flight_now(), 0u);

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.submitted, 10u);
  EXPECT_EQ(r.admitted, 10u);
  EXPECT_EQ(r.dispatched, 10u);
  EXPECT_EQ(r.completed, 10u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.queued_now, 0u);
  // Completion doubled as the first result at t=3s.
  EXPECT_EQ(r.tenants[0].first_results, 10u);
  EXPECT_NEAR(r.tenants[0].mean_first_result_s, 3.0, 1e-9);
  EXPECT_GE(r.first_result_p50_ns, 3 * kSecond - 3 * kSecond / 128);
  EXPECT_NEAR(r.tenants[0].mean_quality, 0.8, 1e-12);
  EXPECT_EQ(r.pool.in_use, 0u);
  // The human rendering covers every headline counter.
  const std::string table = render(r);
  EXPECT_NE(table.find("10 admitted"), std::string::npos);
  EXPECT_NE(table.find("a"), std::string::npos);
}

TEST(CampaignService, RejectsUnknownTenant) {
  ServiceConfig c = base_config();
  c.tenants = {tenant("a", Tier::kStandard, 1, 64, 1e6)};
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);
  const SubmitResult r = svc.submit(7, 1, 1, 0);
  EXPECT_EQ(r.admission, Admission::kRejectedBadTenant);
  EXPECT_FALSE(r.admitted());
}

// Property: a tenant's open submissions never exceed its quota, and the
// quota frees up exactly as completions land.
TEST(CampaignService, QuotaNeverExceeded) {
  ServiceConfig c = base_config();
  c.tenants = {tenant("a", Tier::kStandard, 1, /*max_open=*/16, 1e6)};
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);

  std::uint64_t admitted = 0;
  std::uint64_t rejected_quota = 0;
  for (int i = 0; i < 100; ++i) {
    const SubmitResult r = svc.submit(0, 1, 1, 0);
    (r.admitted() ? admitted : rejected_quota)++;
    ASSERT_LE(svc.open_now(), 16u);
  }
  EXPECT_EQ(admitted, 16u);
  EXPECT_EQ(rejected_quota, 84u);

  svc.tick(0);
  backend.complete(10, kSecond);
  for (int i = 0; i < 100; ++i) {
    if (svc.submit(0, 1, 1, kSecond).admitted()) ++admitted;
    ASSERT_LE(svc.open_now(), 16u);
  }
  EXPECT_EQ(admitted, 26u);

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.tenants[0].rejected_quota, r.submitted - r.admitted);
}

// Property: the global open cap holds across tenants, the record pool
// never grows past it, and overflow is accounted as capacity rejection.
TEST(CampaignService, GlobalCapNeverExceeded) {
  ServiceConfig c = base_config();
  c.global_max_open = 64;
  for (int i = 0; i < 4; ++i) {
    c.tenants.push_back(
        tenant("t" + std::to_string(i), Tier::kStandard, 1, 32, 1e6));
  }
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);

  for (TenantId t = 0; t < 4; ++t) {
    for (int i = 0; i < 32; ++i) {
      svc.submit(t, 1, 1, 0);
      ASSERT_LE(svc.open_now(), 64u);
    }
  }
  svc.tick(0);
  const ServiceReport r = svc.report();
  EXPECT_EQ(r.admitted, 64u);
  EXPECT_EQ(r.rejected, 64u);
  EXPECT_EQ(r.tenants[2].rejected_capacity + r.tenants[3].rejected_capacity,
            64u);
  EXPECT_LE(r.pool.capacity, 64u);
  EXPECT_LE(r.pool.high_water, 64u);

  // Freeing capacity makes the cap available to any tenant again.
  backend.complete(64, kSecond);
  EXPECT_TRUE(svc.submit(3, 1, 1, kSecond).admitted());
}

TEST(CampaignService, TokenBucketLimitsAdmissionRate) {
  ServiceConfig c = base_config();
  // rate 5/s, burst 2 s -> bucket depth 10 tokens.
  c.tenants = {tenant("a", Tier::kStandard, 1, 1024, 5.0)};
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);

  std::uint64_t admitted = 0;
  for (int i = 0; i < 12; ++i) {
    if (svc.submit(0, 1, 1, 0).admitted()) ++admitted;
  }
  EXPECT_EQ(admitted, 10u);  // burst drained

  svc.tick(kSecond);  // 1 s at 5/s refills 5 tokens
  admitted = 0;
  for (int i = 0; i < 7; ++i) {
    if (svc.submit(0, 1, 1, kSecond).admitted()) ++admitted;
  }
  EXPECT_EQ(admitted, 5u);

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.tenants[0].rejected_rate, 4u);
}

// DRR: with saturated queues and equal costs, dispatch shares within a
// tier match the configured weights exactly when the tick budget covers
// whole rotation rounds.
TEST(CampaignService, DrrSharesMatchWeights) {
  ServiceConfig c = base_config();
  c.tenants = {tenant("w1", Tier::kStandard, 1, 1024, 1e6),
               tenant("w2", Tier::kStandard, 2, 1024, 1e6),
               tenant("w4", Tier::kStandard, 4, 1024, 1e6)};
  c.drr_quantum = 4;
  // One rotation round dispatches quantum * (1+2+4) = 28; 10 rounds.
  c.max_dispatch_per_tick = 280;
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);

  for (TenantId t = 0; t < 3; ++t) {
    for (int i = 0; i < 600; ++i) svc.submit(t, 1, 1, 0);
  }
  svc.tick(0);
  const ServiceReport r = svc.report();
  EXPECT_EQ(r.dispatched, 280u);
  EXPECT_EQ(r.tenants[0].dispatched, 40u);
  EXPECT_EQ(r.tenants[1].dispatched, 80u);
  EXPECT_EQ(r.tenants[2].dispatched, 160u);

  // Completing exactly the dispatched shares gives weight-normalized
  // completions of 40/40/40 -> a perfect Jain index.
  backend.complete(280, kSecond);
  EXPECT_NEAR(svc.report().fairness_jain, 1.0, 1e-9);
}

// Multi-cost submissions bill their cost against the tenant's deficit:
// a tenant submitting cost-4 campaigns gets 1/4 the campaigns of an
// equal-weight tenant submitting cost-1 campaigns.
TEST(CampaignService, DrrBillsCost) {
  ServiceConfig c = base_config();
  c.tenants = {tenant("cheap", Tier::kStandard, 1, 2048, 1e6),
               tenant("pricey", Tier::kStandard, 1, 2048, 1e6)};
  c.drr_quantum = 4;
  c.max_dispatch_per_tick = 200;
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);

  for (int i = 0; i < 1000; ++i) {
    svc.submit(0, 1, /*cost=*/1, 0);
    svc.submit(1, 1, /*cost=*/4, 0);
  }
  svc.tick(0);
  const ServiceReport r = svc.report();
  ASSERT_GT(r.tenants[1].dispatched, 0u);
  const double ratio = static_cast<double>(r.tenants[0].dispatched) /
                       static_cast<double>(r.tenants[1].dispatched);
  EXPECT_NEAR(ratio, 4.0, 0.5);
}

// Strict priority: with a limited budget, the interactive tier drains
// completely before the standard and batch tiers see a single dispatch.
TEST(CampaignService, TiersAreStrictPriority) {
  ServiceConfig c = base_config();
  c.tenants = {tenant("batch", Tier::kBatch, 8, 1024, 1e6),
               tenant("standard", Tier::kStandard, 8, 1024, 1e6),
               tenant("urgent", Tier::kInteractive, 1, 1024, 1e6)};
  c.max_dispatch_per_tick = 50;
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);

  for (TenantId t = 0; t < 3; ++t) {
    for (int i = 0; i < 50; ++i) svc.submit(t, 1, 1, 0);
  }
  svc.tick(0);
  ServiceReport r = svc.report();
  EXPECT_EQ(r.tenants[2].dispatched, 50u);
  EXPECT_EQ(r.tenants[0].dispatched, 0u);
  EXPECT_EQ(r.tenants[1].dispatched, 0u);

  // Next tick: interactive is empty, standard outranks batch.
  svc.tick(1);
  r = svc.report();
  EXPECT_EQ(r.tenants[1].dispatched, 50u);
  EXPECT_EQ(r.tenants[0].dispatched, 0u);
}

TEST(CampaignService, StaleQueuedWorkIsShed) {
  ServiceConfig c = base_config();
  c.tenants = {tenant("a", Tier::kStandard, 1, 64, 1e6)};
  c.max_dispatched = 1;
  c.shed_age_ns = 1 * kSecond;
  ManualBackend backend;
  CampaignService svc(c, backend);
  backend.attach(svc);

  for (int i = 0; i < 5; ++i) svc.submit(0, 1, 1, 0);
  svc.tick(0);  // dispatches 1, queues 4
  EXPECT_EQ(svc.in_flight_now(), 1u);

  backend.complete(1, 3 * kSecond);
  svc.tick(3 * kSecond);  // remaining heads are 3 s old: shed, not run
  const ServiceReport r = svc.report();
  EXPECT_EQ(r.shed, 4u);
  EXPECT_EQ(r.completed, 1u);
  EXPECT_EQ(r.queued_now, 0u);
  EXPECT_EQ(svc.open_now(), 0u);
  EXPECT_EQ(r.pool.in_use, 0u);
}

// Full-stack determinism: the same seed replays the exact admission
// sequence and final report against the virtual-time backend, with
// backpressure enabled.
TEST(CampaignService, SeededRunsAreBitIdentical) {
  struct Outcome {
    std::vector<std::uint8_t> admissions;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t p99_ns = 0;
    double fairness = 0.0;
    double rate0 = 0.0;
  };
  auto run = [](std::uint64_t seed) {
    SimulatedBackendConfig bc;
    bc.slots = 8;
    bc.duration_scale = 1e-3;  // ~6.4 s virtual first result
    SimulatedBackend backend(bc);
    ServiceConfig c;
    c.backpressure_enabled = true;
    c.backpressure.interval_s = 4.0;
    c.backpressure.latency_ref_s = 30.0;
    c.global_max_open = 256;
    c.max_dispatched = 16;
    c.shed_age_ns = 45 * kSecond;
    for (int i = 0; i < 4; ++i) {
      c.tenants.push_back(tenant("t" + std::to_string(i), Tier::kStandard,
                                 1u << (i % 3), 64, 4.0));
    }
    CampaignService svc(c, backend);
    backend.attach(svc);

    common::Rng root(seed, 0x5345525631);
    std::vector<common::Rng> rngs;
    std::vector<std::uint64_t> next_ns(4);
    std::vector<std::uint64_t> payload(4);
    for (std::uint64_t t = 0; t < 4; ++t) {
      rngs.push_back(root.fork(t));
      next_ns[t] =
          static_cast<std::uint64_t>(rngs[t].exponential(0.125) * 1e9);
      payload[t] = common::splitmix64(seed ^ t);
    }

    Outcome out;
    constexpr std::uint64_t kTick = kSecond / 10;
    for (std::uint64_t now = 0; now <= 120 * kSecond; now += kTick) {
      backend.advance_to(now);
      for (TenantId t = 0; t < 4; ++t) {
        while (next_ns[t] <= now) {
          const SubmitResult r =
              svc.submit(t, payload[t], 1 + (payload[t] % 3), next_ns[t]);
          out.admissions.push_back(static_cast<std::uint8_t>(r.admission));
          payload[t] = common::splitmix64(payload[t]);
          next_ns[t] += static_cast<std::uint64_t>(
              rngs[t].exponential(0.125) * 1e9);
        }
      }
      svc.tick(now);
    }
    const ServiceReport r = svc.report();
    out.completed = r.completed;
    out.rejected = r.rejected;
    out.shed = r.shed;
    out.p99_ns = r.first_result_p99_ns;
    out.fairness = r.fairness_jain;
    out.rate0 = svc.admission_rate(0);
    return out;
  };

  const Outcome a = run(0xC0FFEE);
  const Outcome b = run(0xC0FFEE);
  const Outcome other = run(0xBEEF);
  EXPECT_EQ(a.admissions, b.admissions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.rate0, b.rate0);
  EXPECT_GT(a.completed, 0u);
  // And the seed actually matters (different arrival process).
  EXPECT_NE(a.admissions, other.admissions);
}

// Backpressure closes the loop end-to-end: a backlogged tenant (offered
// load well above its admission rate, which is in turn well above what
// the fleet sustains) has its rate pulled down toward the service rate —
// the admitted-then-shed work and the queue-delay penalty are the
// congestion signals. Note the rate must be the binding constraint for
// the probes to measure anything: above the offered load, utility is
// flat in rate and the controller just random-walks (same as a PCC
// sender with nothing to send).
TEST(CampaignService, BackpressureAdaptsRateTowardCapacity) {
  SimulatedBackendConfig bc;
  bc.slots = 4;
  bc.duration_scale = 1e-3;
  SimulatedBackend backend(bc);
  ServiceConfig c;
  c.backpressure_enabled = true;
  c.backpressure.interval_s = 4.0;
  c.backpressure.latency_ref_s = 20.0;
  c.global_max_open = 128;
  c.max_dispatched = 8;
  c.shed_age_ns = 30 * kSecond;
  c.tenants = {tenant("greedy", Tier::kStandard, 1, 64, /*rate=*/8.0)};
  CampaignService svc(c, backend);
  backend.attach(svc);

  // Fleet capacity: 4 slots / ~24.75 s per campaign ~= 0.16 campaigns/s,
  // offered 32/s.
  const double initial = svc.admission_rate(0);
  common::Rng rng(0xADA97);
  std::uint64_t next = 0;
  std::uint64_t payload = 1;
  constexpr std::uint64_t kTick = kSecond / 10;
  for (std::uint64_t now = 0; now <= 600 * kSecond; now += kTick) {
    backend.advance_to(now);
    while (next <= now) {
      svc.submit(0, payload, 1, next);
      payload = common::splitmix64(payload);
      next += static_cast<std::uint64_t>(rng.exponential(1.0 / 32.0) * 1e9);
    }
    svc.tick(now);
  }
  const double final_rate = svc.admission_rate(0);
  EXPECT_LT(final_rate, initial / 4.0);
  EXPECT_GE(final_rate, c.backpressure.min_rate * (1.0 - 0.05));
  const ServiceReport r = svc.report();
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.shed, 0u);  // the loss signal the controller reacted to
}

}  // namespace
}  // namespace impress::service
