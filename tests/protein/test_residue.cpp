#include "protein/residue.hpp"

#include <gtest/gtest.h>

#include <set>

namespace impress::protein {
namespace {

TEST(Residue, TwentyDistinctAminoAcids) {
  const auto& all = all_amino_acids();
  EXPECT_EQ(all.size(), kNumAminoAcids);
  std::set<char> codes;
  for (auto aa : all) codes.insert(to_char(aa));
  EXPECT_EQ(codes.size(), 20u);
}

TEST(Residue, OneLetterRoundTrip) {
  for (auto aa : all_amino_acids()) {
    const auto back = from_char(to_char(aa));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, aa);
  }
}

TEST(Residue, ThreeLetterRoundTrip) {
  for (auto aa : all_amino_acids()) {
    const auto back = from_code3(to_code3(aa));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, aa);
  }
}

TEST(Residue, ParsingIsCaseInsensitive) {
  EXPECT_EQ(from_char('a'), AminoAcid::kAla);
  EXPECT_EQ(from_char('A'), AminoAcid::kAla);
  EXPECT_EQ(from_code3("ala"), AminoAcid::kAla);
  EXPECT_EQ(from_code3("Trp"), AminoAcid::kTrp);
}

TEST(Residue, UnknownCodesRejected) {
  EXPECT_FALSE(from_char('B').has_value());
  EXPECT_FALSE(from_char('X').has_value());
  EXPECT_FALSE(from_char('1').has_value());
  EXPECT_FALSE(from_code3("XYZ").has_value());
  EXPECT_FALSE(from_code3("AL").has_value());
  EXPECT_FALSE(from_code3("ALAN").has_value());
}

TEST(Residue, KnownCodeMappings) {
  EXPECT_EQ(to_char(AminoAcid::kGly), 'G');
  EXPECT_EQ(to_char(AminoAcid::kTrp), 'W');
  EXPECT_EQ(to_code3(AminoAcid::kLys), "LYS");
  EXPECT_EQ(to_code3(AminoAcid::kGlu), "GLU");
}

TEST(Residue, HydropathyKnownValues) {
  // Kyte-Doolittle: Ile most hydrophobic (4.5), Arg least (-4.5).
  EXPECT_DOUBLE_EQ(hydropathy(AminoAcid::kIle), 4.5);
  EXPECT_DOUBLE_EQ(hydropathy(AminoAcid::kArg), -4.5);
  for (auto aa : all_amino_acids()) {
    EXPECT_GE(hydropathy(aa), -4.5);
    EXPECT_LE(hydropathy(aa), 4.5);
  }
}

TEST(Residue, ChargeAssignments) {
  EXPECT_EQ(charge(AminoAcid::kArg), 1);
  EXPECT_EQ(charge(AminoAcid::kLys), 1);
  EXPECT_EQ(charge(AminoAcid::kAsp), -1);
  EXPECT_EQ(charge(AminoAcid::kGlu), -1);
  EXPECT_EQ(charge(AminoAcid::kAla), 0);
  EXPECT_EQ(charge(AminoAcid::kHis), 0);  // neutral at pH 7 by convention
}

TEST(Residue, VolumeOrdering) {
  // Gly smallest, Trp largest.
  for (auto aa : all_amino_acids()) {
    EXPECT_GE(volume(aa), volume(AminoAcid::kGly));
    EXPECT_LE(volume(aa), volume(AminoAcid::kTrp));
  }
}

TEST(Residue, ChargedResiduesArePolar) {
  for (auto aa : all_amino_acids()) {
    if (charge(aa) != 0) {
      EXPECT_TRUE(is_polar(aa));
    }
  }
  EXPECT_FALSE(is_polar(AminoAcid::kLeu));
  EXPECT_TRUE(is_polar(AminoAcid::kSer));
}

}  // namespace
}  // namespace impress::protein
