#include "protein/msa.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fold/fold.hpp"
#include "protein/datasets.hpp"

namespace impress::protein {
namespace {

Sequence query() {
  return make_target("MSA-T", 80, alpha_synuclein().tail(10)).start_receptor;
}

TEST(Msa, SingleSequenceMode) {
  const Msa msa(query());
  EXPECT_EQ(msa.depth(), 0u);
  EXPECT_EQ(msa.length(), 80u);
  EXPECT_EQ(msa.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(msa.effective_depth(), 0.0);
  // Lone query: every column fully conserved, quality at the floor.
  EXPECT_DOUBLE_EQ(msa.mean_conservation(), 1.0);
  EXPECT_NEAR(msa.predictor_quality(), 0.55, 1e-12);
}

TEST(Msa, ConstructionValidates) {
  common::Rng rng(1);
  EXPECT_THROW(Msa(Sequence{}, 4, {}, 0.2, rng), std::invalid_argument);
  EXPECT_THROW(Msa(query(), 4, {}, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(Msa(query(), 4, {999}, 0.2, rng), std::invalid_argument);
}

TEST(Msa, QueryIsFirstRowAndLengthsMatch) {
  common::Rng rng(2);
  const auto q = query();
  const Msa msa(q, 16, {}, 0.3, rng);
  EXPECT_EQ(msa.query(), q);
  EXPECT_EQ(msa.depth(), 16u);
  for (const auto& row : msa.rows()) EXPECT_EQ(row.size(), q.size());
}

TEST(Msa, ConservedPositionsStayConserved) {
  common::Rng rng(3);
  const auto q = query();
  const std::vector<std::size_t> conserved{0, 10, 20, 30};
  const Msa msa(q, 64, conserved, 0.5, rng);
  const auto cons = msa.column_conservation();
  double conserved_mean = 0.0, free_mean = 0.0;
  for (auto pos : conserved) conserved_mean += cons[pos];
  conserved_mean /= static_cast<double>(conserved.size());
  std::size_t free_count = 0;
  for (std::size_t pos = 0; pos < q.size(); ++pos) {
    if (std::find(conserved.begin(), conserved.end(), pos) != conserved.end())
      continue;
    free_mean += cons[pos];
    ++free_count;
  }
  free_mean /= static_cast<double>(free_count);
  EXPECT_GT(conserved_mean, free_mean + 0.2);
}

TEST(Msa, EffectiveDepthCollapsesRedundantRows) {
  common::Rng rng(4);
  // Nearly identical homologs (tiny divergence): Neff stays far below
  // the raw depth because >90%-identical rows collapse.
  const Msa shallow(query(), 32, {}, 0.01, rng);
  EXPECT_LT(shallow.effective_depth(), 8.0);
  // Divergent homologs count individually.
  const Msa deep(query(), 32, {}, 0.4, rng);
  EXPECT_GT(deep.effective_depth(), 24.0);
}

TEST(Msa, PredictorQualitySaturatesWithDepth) {
  common::Rng rng(5);
  const Msa none(query());
  const Msa small(query(), 4, {}, 0.4, rng);
  const Msa big(query(), 64, {}, 0.4, rng);
  EXPECT_LT(none.predictor_quality(), small.predictor_quality());
  EXPECT_LT(small.predictor_quality(), big.predictor_quality());
  EXPECT_LE(big.predictor_quality(), 1.0);
  EXPECT_GT(big.predictor_quality(), 0.9);
}

TEST(Msa, DeepMsaSharpensTheClassifier) {
  // The paper's SIV claim, end to end: the weak/strong pTM gap grows
  // with MSA depth.
  const auto target = make_target("MSA-E2E", 80, alpha_synuclein().tail(10));
  const auto& l = target.landscape;
  common::Rng msa_rng(6);
  const Msa lone(l.native_sequence());
  const Msa deep(l.native_sequence(), 64, l.interface_positions(), 0.4,
                 msa_rng);

  const fold::AlphaFold model;
  auto gap = [&](const Msa& msa) {
    common::Rng rng(7);
    double weak = 0.0, strong = 0.0;
    for (int i = 0; i < 30; ++i) {
      weak += model
                  .predict_with_msa(
                      target.start_complex().with_receptor(l.native_sequence()),
                      msa, l, rng)
                  .best()
                  .metrics.ptm;
      strong += model
                    .predict_with_msa(target.start_complex().with_receptor(
                                          l.greedy_optimal_sequence()),
                                      msa, l, rng)
                    .best()
                    .metrics.ptm;
    }
    return (strong - weak) / 30.0;
  };
  EXPECT_GT(gap(deep), gap(lone) + 0.05);
}

TEST(Msa, DeterministicInRng) {
  common::Rng r1(8), r2(8);
  const Msa a(query(), 8, {1, 2}, 0.3, r1);
  const Msa b(query(), 8, {1, 2}, 0.3, r2);
  EXPECT_EQ(a.rows().size(), b.rows().size());
  for (std::size_t i = 0; i < a.rows().size(); ++i)
    EXPECT_EQ(a.rows()[i], b.rows()[i]);
}

}  // namespace
}  // namespace impress::protein
