#include "protein/fasta.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace impress::protein {
namespace {

TEST(Fasta, WriteSingleRecord) {
  const std::vector<FastaRecord> recs{
      {"seq1", "a description", Sequence::from_string("MKVLA")}};
  const auto text = to_fasta(recs);
  EXPECT_EQ(text, ">seq1 a description\nMKVLA\n");
}

TEST(Fasta, WriteOmitsEmptyDescription) {
  const std::vector<FastaRecord> recs{{"s", "", Sequence::from_string("MK")}};
  EXPECT_EQ(to_fasta(recs), ">s\nMK\n");
}

TEST(Fasta, WrapsAt60Columns) {
  std::string long_seq(150, 'A');
  const std::vector<FastaRecord> recs{
      {"s", "", Sequence::from_string(long_seq)}};
  const auto text = to_fasta(recs);
  // 150 residues -> lines of 60, 60, 30.
  EXPECT_NE(text.find('\n' + std::string(60, 'A') + '\n'), std::string::npos);
  EXPECT_NE(text.find('\n' + std::string(30, 'A') + '\n'), std::string::npos);
}

TEST(Fasta, RoundTripMultiRecord) {
  const std::vector<FastaRecord> recs{
      {"a", "first", Sequence::from_string("MKVLA")},
      {"b", "", Sequence::from_string("EPEA")},
      {"c", "log_likelihood=-1.25", Sequence::from_string(std::string(130, 'G'))}};
  const auto parsed = from_fasta(to_fasta(recs));
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].id, "a");
  EXPECT_EQ(parsed[0].description, "first");
  EXPECT_EQ(parsed[0].sequence.to_string(), "MKVLA");
  EXPECT_EQ(parsed[1].description, "");
  EXPECT_EQ(parsed[2].sequence.size(), 130u);
  EXPECT_EQ(parsed[2].description, "log_likelihood=-1.25");
}

TEST(Fasta, ParsesMultilineSequences) {
  const auto recs = from_fasta(">x\nMKV\nLA\n\nEPEA\n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].sequence.to_string(), "MKVLAEPEA");
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  EXPECT_THROW((void)from_fasta("MKVLA\n>x\n"), std::invalid_argument);
}

TEST(Fasta, InvalidResidueThrows) {
  EXPECT_THROW((void)from_fasta(">x\nMKZ\n"), std::invalid_argument);
}

TEST(Fasta, EmptyInputGivesNoRecords) {
  EXPECT_TRUE(from_fasta("").empty());
  EXPECT_TRUE(from_fasta("\n\n").empty());
}

TEST(Fasta, HeaderOnlyRecordHasEmptySequence) {
  const auto recs = from_fasta(">lonely\n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].sequence.empty());
}

TEST(Fasta, WhitespaceAroundLinesTolerated) {
  const auto recs = from_fasta("  >x desc  \n  MKV  \n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].id, "x");
  EXPECT_EQ(recs[0].sequence.to_string(), "MKV");
}

}  // namespace
}  // namespace impress::protein
