#include "protein/contacts.hpp"

#include <gtest/gtest.h>

#include "protein/datasets.hpp"

namespace impress::protein {
namespace {

Complex small_complex() {
  return Complex::make("cx", Sequence::from_string("MKVLARDEMKVLARDE"),
                       Sequence::from_string("EPEA"));
}

TEST(Contacts, InterchainPairsWithinCutoff) {
  const auto cx = small_complex();
  const auto pairs = interchain_contacts(cx, 8.0);
  EXPECT_FALSE(pairs.empty());  // chains are 8 A apart by construction
  for (const auto& [r, p] : pairs) {
    EXPECT_LT(r, cx.receptor().size());
    EXPECT_LT(p, cx.peptide().size());
    EXPECT_LE(distance(cx.receptor().ca[r], cx.peptide().ca[p]), 8.0);
  }
}

TEST(Contacts, CutoffMonotone) {
  const auto cx = small_complex();
  const auto tight = interchain_contacts(cx, 5.0).size();
  const auto medium = interchain_contacts(cx, 8.0).size();
  const auto loose = interchain_contacts(cx, 15.0).size();
  EXPECT_LE(tight, medium);
  EXPECT_LE(medium, loose);
}

TEST(Contacts, ZeroCutoffGivesNoContacts) {
  EXPECT_TRUE(interchain_contacts(small_complex(), 0.0).empty());
}

TEST(Contacts, AnalyzeInterfaceCountsAreConsistent) {
  const auto cx = small_complex();
  const auto stats = analyze_interface(cx, 9.0);
  EXPECT_EQ(stats.contacts, interchain_contacts(cx, 9.0).size());
  EXPECT_GT(stats.contact_density, 0.0);
  EXPECT_LE(stats.salt_bridges, stats.contacts);
  EXPECT_LE(stats.hydrophobic_pairs, stats.contacts);
  EXPECT_LE(stats.polar_pairs, stats.contacts);
  EXPECT_GT(stats.mean_contact_distance, 0.0);
  EXPECT_LE(stats.mean_contact_distance, 9.0);
}

TEST(Contacts, SaltBridgesDetectOppositeCharges) {
  // All-Arg receptor vs all-Glu peptide: every contact is a salt bridge.
  const auto cx = Complex::make("salt", Sequence::from_string("RRRRRRRRRR"),
                                Sequence::from_string("EEEE"));
  const auto stats = analyze_interface(cx, 9.0);
  ASSERT_GT(stats.contacts, 0u);
  EXPECT_EQ(stats.salt_bridges, stats.contacts);
  EXPECT_EQ(stats.hydrophobic_pairs, 0u);
}

TEST(Contacts, HydrophobicPairsDetected) {
  const auto cx = Complex::make("oil", Sequence::from_string("IIIIIIIIII"),
                                Sequence::from_string("LLLL"));
  const auto stats = analyze_interface(cx, 9.0);
  ASSERT_GT(stats.contacts, 0u);
  EXPECT_EQ(stats.hydrophobic_pairs, stats.contacts);
  EXPECT_EQ(stats.salt_bridges, 0u);
}

TEST(Contacts, PackingScoreBounds) {
  const auto cx = small_complex();
  for (double cutoff : {0.0, 5.0, 8.0, 20.0}) {
    const auto s = analyze_interface(cx, cutoff);
    EXPECT_GE(s.packing_score(), 0.0);
    EXPECT_LE(s.packing_score(), 1.0);
  }
  EXPECT_EQ(InterfaceStats{}.packing_score(), 0.0);
}

TEST(Contacts, ContactResiduesSortedUnique) {
  const auto cx = small_complex();
  const auto residues = contact_residues(cx, 10.0);
  EXPECT_FALSE(residues.empty());
  for (std::size_t i = 1; i < residues.size(); ++i)
    EXPECT_LT(residues[i - 1], residues[i]);
}

TEST(Contacts, WorksOnDatasetComplexes) {
  for (const auto& target : four_pdz_domains()) {
    const auto stats = analyze_interface(target.start_complex());
    EXPECT_GT(stats.contacts, 0u) << target.name;
    EXPECT_GT(stats.packing_score(), 0.0) << target.name;
  }
}

}  // namespace
}  // namespace impress::protein
