#include "protein/sequence.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace impress::protein {
namespace {

TEST(Sequence, FromStringRoundTrip) {
  const auto s = Sequence::from_string("ACDEFGHIKLMNPQRSTVWY");
  EXPECT_EQ(s.size(), 20u);
  EXPECT_EQ(s.to_string(), "ACDEFGHIKLMNPQRSTVWY");
}

TEST(Sequence, FromStringRejectsInvalid) {
  EXPECT_THROW(Sequence::from_string("ACX"), std::invalid_argument);
  EXPECT_THROW(Sequence::from_string("AC D"), std::invalid_argument);
  EXPECT_THROW(Sequence::from_string("123"), std::invalid_argument);
}

TEST(Sequence, EmptyBehaviour) {
  const Sequence s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.to_string(), "");
}

TEST(Sequence, IndexingAndSet) {
  auto s = Sequence::from_string("AAA");
  EXPECT_EQ(s[0], AminoAcid::kAla);
  s.set(1, AminoAcid::kTrp);
  EXPECT_EQ(s.to_string(), "AWA");
  EXPECT_THROW(s.set(5, AminoAcid::kTrp), std::out_of_range);
  EXPECT_THROW((void)s.at(5), std::out_of_range);
}

TEST(Sequence, TailExtractsSuffix) {
  const auto s = Sequence::from_string("MDVFMKGLSK");
  EXPECT_EQ(s.tail(4).to_string(), "GLSK");
  EXPECT_EQ(s.tail(0).to_string(), "");
  EXPECT_EQ(s.tail(10).to_string(), "MDVFMKGLSK");
  EXPECT_THROW((void)s.tail(11), std::out_of_range);
}

TEST(Sequence, WithMutationIsCopy) {
  const auto s = Sequence::from_string("AAAA");
  const auto m = s.with_mutation(2, AminoAcid::kGly);
  EXPECT_EQ(s.to_string(), "AAAA");
  EXPECT_EQ(m.to_string(), "AAGA");
}

TEST(Sequence, HammingDistance) {
  const auto a = Sequence::from_string("AAAA");
  const auto b = Sequence::from_string("AAGG");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(Sequence, HammingDistanceLengthMismatchThrows) {
  const auto a = Sequence::from_string("AAA");
  const auto b = Sequence::from_string("AAAA");
  EXPECT_THROW((void)a.hamming_distance(b), std::invalid_argument);
}

TEST(Sequence, Identity) {
  const auto a = Sequence::from_string("AAAA");
  const auto b = Sequence::from_string("AAGG");
  EXPECT_DOUBLE_EQ(a.identity(b), 0.5);
  EXPECT_DOUBLE_EQ(a.identity(a), 1.0);
  EXPECT_DOUBLE_EQ(Sequence().identity(Sequence()), 1.0);
}

TEST(Sequence, EqualityAndIteration) {
  const auto a = Sequence::from_string("MKV");
  const auto b = Sequence::from_string("MKV");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Sequence::from_string("MKI"));
  std::string collected;
  for (auto aa : a) collected.push_back(to_char(aa));
  EXPECT_EQ(collected, "MKV");
}

}  // namespace
}  // namespace impress::protein
