#include "protein/landscape.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "protein/datasets.hpp"

namespace impress::protein {
namespace {

FitnessLandscape make(std::string name = "T1", std::size_t len = 90) {
  return FitnessLandscape(std::move(name), len, alpha_synuclein().tail(10),
                          common::stable_hash("T1"));
}

TEST(Landscape, ConstructionValidates) {
  EXPECT_THROW(FitnessLandscape("x", 0, Sequence::from_string("EPEA"), 1),
               std::invalid_argument);
  EXPECT_THROW(FitnessLandscape("x", 10, Sequence(), 1), std::invalid_argument);
}

TEST(Landscape, DeterministicInSeed) {
  const auto a = make();
  const auto b = make();
  EXPECT_EQ(a.native_sequence(), b.native_sequence());
  EXPECT_EQ(a.interface_positions(), b.interface_positions());
  EXPECT_DOUBLE_EQ(a.fitness(a.native_sequence()),
                   b.fitness(b.native_sequence()));
}

TEST(Landscape, DifferentSeedsDiffer) {
  const FitnessLandscape a("x", 90, Sequence::from_string("EPEA"), 1);
  const FitnessLandscape b("x", 90, Sequence::from_string("EPEA"), 2);
  EXPECT_NE(a.native_sequence(), b.native_sequence());
}

TEST(Landscape, InterfaceIsSortedDistinctAndSized) {
  const auto l = make();
  const auto& iface = l.interface_positions();
  EXPECT_GE(iface.size(), 6u);
  EXPECT_LE(iface.size(), l.receptor_length());
  EXPECT_TRUE(std::is_sorted(iface.begin(), iface.end()));
  EXPECT_EQ(std::adjacent_find(iface.begin(), iface.end()), iface.end());
  for (auto p : iface) EXPECT_LT(p, l.receptor_length());
}

TEST(Landscape, FitnessInUnitInterval) {
  const auto l = make();
  common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::vector<AminoAcid> rs(l.receptor_length());
    for (auto& aa : rs) aa = static_cast<AminoAcid>(rng.below(kNumAminoAcids));
    const double f = l.fitness(Sequence(std::move(rs)));
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(Landscape, LengthMismatchThrows) {
  const auto l = make();
  EXPECT_THROW((void)l.fitness(Sequence::from_string("MKV")),
               std::invalid_argument);
}

TEST(Landscape, GreedyOptimalBeatsNative) {
  const auto l = make();
  EXPECT_GT(l.fitness(l.greedy_optimal_sequence()),
            l.fitness(l.native_sequence()) + 0.2);
}

TEST(Landscape, GreedyOptimalNearPreferenceCeiling) {
  const auto l = make();
  const auto opt = l.greedy_optimal_sequence();
  for (auto pos : l.interface_positions())
    EXPECT_NEAR(l.preference(pos, opt[pos]), 1.0, 1e-9);
}

TEST(Landscape, PreferenceBounds) {
  const auto l = make();
  for (std::size_t pos = 0; pos < l.receptor_length(); ++pos)
    for (auto aa : all_amino_acids()) {
      const double p = l.preference(pos, aa);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
}

TEST(Landscape, ScaffoldPreferenceIsOneForNative) {
  const auto l = make();
  const auto& native = l.native_sequence();
  const auto& iface = l.interface_positions();
  for (std::size_t pos = 0; pos < l.receptor_length(); ++pos) {
    if (std::binary_search(iface.begin(), iface.end(), pos)) continue;
    EXPECT_DOUBLE_EQ(l.preference(pos, native[pos]), 1.0);
  }
}

TEST(Landscape, PocketMutationTowardPreferenceHelps) {
  const auto l = make();
  const auto native = l.native_sequence();
  const auto opt = l.greedy_optimal_sequence();
  const auto pos = l.interface_positions()[0];
  const auto improved = native.with_mutation(pos, opt[pos]);
  EXPECT_GE(l.fitness(improved), l.fitness(native));
}

TEST(Landscape, ScaffoldMutationAwayFromNativeHurts) {
  const auto l = make();
  const auto native = l.native_sequence();
  // Find an off-interface position and a chemically distant residue.
  const auto& iface = l.interface_positions();
  std::size_t pos = 0;
  while (std::binary_search(iface.begin(), iface.end(), pos)) ++pos;
  const AminoAcid current = native[pos];
  const AminoAcid distant =
      current == AminoAcid::kTrp ? AminoAcid::kGly : AminoAcid::kTrp;
  const auto mutated = native.with_mutation(pos, distant);
  EXPECT_LT(l.fitness(mutated), l.fitness(native));
}

TEST(Landscape, SeedSequenceHitsTargetFitness) {
  const auto l = make();
  common::Rng rng(9);
  for (double target : {0.25, 0.4, 0.6}) {
    const auto seq = l.seed_sequence(target, rng);
    EXPECT_NEAR(l.fitness(seq), target, 0.05);
  }
}

// Property sweep over target names: structural invariants of generated
// landscapes hold for arbitrary targets.
class LandscapeSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(LandscapeSweep, InvariantsHold) {
  const std::string name = GetParam();
  FitnessLandscape l(name, 85 + name.size(), alpha_synuclein().tail(4),
                     common::stable_hash(name));
  EXPECT_EQ(l.target_name(), name);
  EXPECT_GE(l.interface_positions().size(), 6u);
  const double native_f = l.fitness(l.native_sequence());
  const double greedy_f = l.fitness(l.greedy_optimal_sequence());
  EXPECT_GT(native_f, 0.0);
  EXPECT_LT(native_f, 0.6);  // natives are deliberately mediocre
  EXPECT_GT(greedy_f, 0.7);  // strong optima exist
  EXPECT_GT(greedy_f, native_f);
}

INSTANTIATE_TEST_SUITE_P(Targets, LandscapeSweep,
                         ::testing::Values("NHERF3", "HTRA1", "SCRIB",
                                           "SHANK1", "PDZ001", "PDZ042",
                                           "SYNTHETIC-X"));

}  // namespace
}  // namespace impress::protein
