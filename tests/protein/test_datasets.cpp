#include "protein/datasets.hpp"

#include <gtest/gtest.h>

#include <set>

namespace impress::protein {
namespace {

TEST(AlphaSynuclein, CanonicalSequence) {
  const auto seq = alpha_synuclein();
  EXPECT_EQ(seq.size(), 140u);  // UniProt P37840
  EXPECT_EQ(to_char(seq[0]), 'M');
  EXPECT_EQ(seq.tail(10).to_string(), "EGYQDYEPEA");
  EXPECT_EQ(seq.tail(4).to_string(), "EPEA");
}

TEST(MakeTarget, DeterministicAndTuned) {
  const auto a = make_target("X", 90, alpha_synuclein().tail(10), 0.3);
  const auto b = make_target("X", 90, alpha_synuclein().tail(10), 0.3);
  EXPECT_EQ(a.start_receptor, b.start_receptor);
  EXPECT_NEAR(a.landscape.fitness(a.start_receptor), 0.3, 0.05);
}

TEST(MakeTarget, StartComplexShape) {
  const auto t = make_target("X", 90, alpha_synuclein().tail(10));
  const auto cx = t.start_complex();
  EXPECT_EQ(cx.structure.name(), "X");
  EXPECT_EQ(cx.receptor().size(), 90u);
  EXPECT_EQ(cx.peptide().sequence.to_string(), "EGYQDYEPEA");
}

TEST(FourPdzDomains, PaperTargets) {
  const auto targets = four_pdz_domains();
  ASSERT_EQ(targets.size(), 4u);
  std::set<std::string> names;
  for (const auto& t : targets) names.insert(t.name);
  EXPECT_TRUE(names.contains("NHERF3"));
  EXPECT_TRUE(names.contains("HTRA1"));
  EXPECT_TRUE(names.contains("SCRIB"));
  EXPECT_TRUE(names.contains("SHANK1"));
  for (const auto& t : targets) {
    // Fig-2 experiment: complexes with the last 10 residues of alpha-syn.
    EXPECT_EQ(t.peptide.to_string(), "EGYQDYEPEA");
    EXPECT_EQ(t.start_receptor.size(), t.landscape.receptor_length());
    EXPECT_GT(t.start_receptor.size(), 80u);
    EXPECT_LT(t.start_receptor.size(), 120u);
  }
}

TEST(FourPdzDomains, StartingQualityIsModerate) {
  for (const auto& t : four_pdz_domains()) {
    const double f = t.landscape.fitness(t.start_receptor);
    EXPECT_GT(f, 0.15);
    EXPECT_LT(f, 0.40);
    // Headroom for four design cycles.
    EXPECT_GT(t.landscape.fitness(t.landscape.greedy_optimal_sequence()),
              f + 0.3);
  }
}

TEST(PdzBenchmark, DefaultSeventyDistinctTargets) {
  const auto targets = pdz_benchmark();
  ASSERT_EQ(targets.size(), 70u);
  std::set<std::string> names;
  std::set<std::string> starts;
  for (const auto& t : targets) {
    names.insert(t.name);
    starts.insert(t.start_receptor.to_string());
    // Fig-3 experiment: last four residues of alpha-synuclein.
    EXPECT_EQ(t.peptide.to_string(), "EPEA");
    EXPECT_GE(t.start_receptor.size(), 80u);
    EXPECT_LT(t.start_receptor.size(), 116u);
  }
  EXPECT_EQ(names.size(), 70u);
  EXPECT_EQ(starts.size(), 70u);  // genuinely heterogeneous
}

TEST(PdzBenchmark, SizeParameterRespected) {
  EXPECT_EQ(pdz_benchmark(5).size(), 5u);
  EXPECT_TRUE(pdz_benchmark(0).empty());
}

TEST(PdzBenchmark, ReproducibleAcrossCalls) {
  const auto a = pdz_benchmark(3);
  const auto b = pdz_benchmark(3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].start_receptor, b[i].start_receptor);
  }
}

}  // namespace
}  // namespace impress::protein
