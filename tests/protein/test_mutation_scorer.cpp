// MutationScorer and kernel-table golden equivalence: the incremental
// fitness path must be bit-identical to the naive full recompute — not
// approximately equal — across randomized landscapes, sequences and
// mutation walks. This is the contract that lets seed_sequence and the
// generators use the fast path without perturbing any campaign result.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "protein/datasets.hpp"
#include "protein/kernel_tables.hpp"
#include "protein/landscape.hpp"

namespace impress::protein {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

Sequence random_seq(std::size_t n, common::Rng& rng) {
  std::vector<AminoAcid> v(n);
  for (auto& aa : v)
    aa = static_cast<AminoAcid>(
        rng.below(static_cast<std::uint32_t>(kNumAminoAcids)));
  return Sequence(std::move(v));
}

FitnessLandscape random_landscape(std::uint64_t seed) {
  common::Rng rng(seed);
  const std::size_t length = 40 + rng.below(80);
  const std::size_t pep_len = 6 + rng.below(6);
  common::Rng pep_rng = rng.fork("peptide");
  Sequence peptide = random_seq(pep_len, pep_rng);
  return FitnessLandscape("RAND" + std::to_string(seed), length,
                          std::move(peptide), seed * 977 + 13);
}

Sequence random_sequence(const FitnessLandscape& land, std::uint64_t seed) {
  common::Rng rng(seed ^ 0xabcdef);
  return random_seq(land.receptor_length(), rng);
}

TEST(KernelTables, TablesMatchDirectFormulasBitwise) {
  for (std::size_t a = 0; a < kNumAminoAcids; ++a)
    for (std::size_t b = 0; b < kNumAminoAcids; ++b) {
      const auto ra = static_cast<AminoAcid>(a);
      const auto rb = static_cast<AminoAcid>(b);
      EXPECT_EQ(bits(residue_similarity(ra, rb)),
                bits(detail::residue_similarity_direct(ra, rb)));
      EXPECT_EQ(bits(complementarity(ra, rb)),
                bits(detail::complementarity_direct(ra, rb)));
    }
}

TEST(KernelTables, SimilarityIsSymmetricWithUnitDiagonal) {
  for (std::size_t a = 0; a < kNumAminoAcids; ++a) {
    const auto ra = static_cast<AminoAcid>(a);
    EXPECT_DOUBLE_EQ(residue_similarity(ra, ra), 1.0);
    for (std::size_t b = 0; b < kNumAminoAcids; ++b) {
      const auto rb = static_cast<AminoAcid>(b);
      EXPECT_EQ(bits(residue_similarity(ra, rb)),
                bits(residue_similarity(rb, ra)));
    }
  }
}

TEST(MutationScorer, ThrowsOnLengthMismatch) {
  const auto land = random_landscape(1);
  common::Rng rng(3);
  Sequence wrong = random_seq(land.receptor_length() + 1, rng);
  EXPECT_THROW(FitnessLandscape::MutationScorer(land, std::move(wrong)),
               std::invalid_argument);
}

TEST(MutationScorer, FitnessMatchesLandscapeBitwise) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto land = random_landscape(seed);
    const auto seq = random_sequence(land, seed);
    const FitnessLandscape::MutationScorer scorer(land, seq);
    EXPECT_EQ(bits(scorer.fitness()), bits(land.fitness(seq)))
        << "seed=" << seed;
  }
}

TEST(MutationScorer, ScoreMutationMatchesNaiveBitwise) {
  // The golden property: score_mutation(pos, aa) equals the full
  // recompute of the mutated copy, to the last bit, for every (pos, aa)
  // including interface, scaffold and no-op mutations.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto land = random_landscape(seed);
    const auto seq = random_sequence(land, seed);
    const FitnessLandscape::MutationScorer scorer(land, seq);
    common::Rng rng(seed * 31);
    for (int trial = 0; trial < 400; ++trial) {
      const std::size_t pos =
          rng.below(static_cast<std::uint32_t>(land.receptor_length()));
      const auto aa = static_cast<AminoAcid>(
          rng.below(static_cast<std::uint32_t>(kNumAminoAcids)));
      EXPECT_EQ(bits(scorer.score_mutation(pos, aa)),
                bits(land.fitness(seq.with_mutation(pos, aa))))
          << "seed=" << seed << " pos=" << pos;
    }
  }
}

TEST(MutationScorer, ApplyTracksNaiveOverRandomWalk) {
  // A long mutate-commit walk must not drift: after every apply() the
  // cached fitness still equals the from-scratch evaluation bitwise.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto land = random_landscape(seed + 50);
    FitnessLandscape::MutationScorer scorer(land,
                                            random_sequence(land, seed + 50));
    common::Rng rng(seed * 101);
    for (int step = 0; step < 300; ++step) {
      const std::size_t pos =
          rng.below(static_cast<std::uint32_t>(land.receptor_length()));
      const auto aa = static_cast<AminoAcid>(
          rng.below(static_cast<std::uint32_t>(kNumAminoAcids)));
      const double predicted = scorer.score_mutation(pos, aa);
      scorer.apply(pos, aa);
      ASSERT_EQ(bits(scorer.fitness()), bits(predicted)) << "step=" << step;
      ASSERT_EQ(bits(scorer.fitness()), bits(land.fitness(scorer.sequence())))
          << "step=" << step;
    }
  }
}

TEST(MutationScorer, PreferenceConsistentWithScoring) {
  // preference() (O(1) pocket-index path) stays within [0, 1] everywhere
  // and equals 1 for the native residue at scaffold positions.
  const auto land = random_landscape(9);
  const auto& native = land.native_sequence();
  std::vector<bool> is_interface(land.receptor_length(), false);
  for (const std::size_t p : land.interface_positions()) is_interface[p] = true;
  for (std::size_t pos = 0; pos < land.receptor_length(); ++pos)
    for (std::size_t a = 0; a < kNumAminoAcids; ++a) {
      const double pref = land.preference(pos, static_cast<AminoAcid>(a));
      EXPECT_GE(pref, 0.0);
      EXPECT_LE(pref, 1.0);
      if (!is_interface[pos] && static_cast<AminoAcid>(a) == native[pos])
        EXPECT_DOUBLE_EQ(pref, 1.0);
    }
}

TEST(MutationScorer, SeedSequenceUnchangedByFastPath) {
  // seed_sequence rides on the scorer now; its rng consumption and
  // output must match across calls with identically seeded rngs (the
  // derivative guarantee campaigns rely on).
  const auto land = random_landscape(12);
  common::Rng a(77);
  common::Rng b(77);
  const auto sa = land.seed_sequence(0.5, a);
  const auto sb = land.seed_sequence(0.5, b);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NEAR(land.fitness(sa), 0.5, 0.2);
}

TEST(MutationScorer, TakeSequenceMovesCurrentState) {
  const auto land = random_landscape(21);
  FitnessLandscape::MutationScorer scorer(land, random_sequence(land, 21));
  scorer.apply(3, AminoAcid::kAla);
  const auto expect = scorer.sequence();
  auto moved = std::move(scorer).take_sequence();
  EXPECT_EQ(moved, expect);
  EXPECT_EQ(moved[3], AminoAcid::kAla);
}

}  // namespace
}  // namespace impress::protein
