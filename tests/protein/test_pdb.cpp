#include "protein/pdb.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "protein/geometry.hpp"

namespace impress::protein {
namespace {

Structure two_chain() {
  return Structure("cx",
                   {Chain::idealized('A', Sequence::from_string("MKVLAGDE")),
                    Chain::idealized('B', Sequence::from_string("EPEA"),
                                     Vec3{8, 0, 0})});
}

TEST(Pdb, WriteContainsAtomTerEnd) {
  const auto text = to_pdb(two_chain());
  EXPECT_NE(text.find("ATOM"), std::string::npos);
  EXPECT_NE(text.find("TER"), std::string::npos);
  EXPECT_NE(text.find("END"), std::string::npos);
  EXPECT_NE(text.find(" CA "), std::string::npos);
  EXPECT_NE(text.find("MET"), std::string::npos);
}

TEST(Pdb, RoundTripPreservesSequencesAndChains) {
  const auto original = two_chain();
  const auto parsed = from_pdb(to_pdb(original), "cx");
  ASSERT_EQ(parsed.chains().size(), 2u);
  EXPECT_EQ(parsed.chain('A').sequence.to_string(), "MKVLAGDE");
  EXPECT_EQ(parsed.chain('B').sequence.to_string(), "EPEA");
}

TEST(Pdb, RoundTripPreservesCoordinates) {
  const auto original = two_chain();
  const auto parsed = from_pdb(to_pdb(original));
  const auto a = original.all_ca();
  const auto b = parsed.all_ca();
  ASSERT_EQ(a.size(), b.size());
  // PDB format has 3 decimal places.
  EXPECT_LT(rmsd_raw(a, b), 1e-3);
}

TEST(Pdb, RoundTripPreservesPlddtInBFactor) {
  auto s = two_chain();
  std::vector<double> plddt(s.size());
  for (std::size_t i = 0; i < plddt.size(); ++i)
    plddt[i] = 50.0 + static_cast<double>(i);
  s.set_plddt(plddt);
  const auto parsed = from_pdb(to_pdb(s));
  ASSERT_EQ(parsed.plddt().size(), plddt.size());
  for (std::size_t i = 0; i < plddt.size(); ++i)
    EXPECT_NEAR(parsed.plddt()[i], plddt[i], 0.01);
}

TEST(Pdb, ParserSkipsNonCaAtoms) {
  const std::string text =
      "ATOM      1  N   ALA A   1       0.000   0.000   0.000  1.00  0.00           N\n"
      "ATOM      2  CA  ALA A   1       1.000   2.000   3.000  1.00  0.00           C\n"
      "ATOM      3  CB  ALA A   1       2.000   2.000   3.000  1.00  0.00           C\n"
      "END\n";
  const auto s = from_pdb(text);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_NEAR(s.chains()[0].ca[0].x, 1.0, 1e-9);
}

TEST(Pdb, ParserIgnoresNonAtomRecords) {
  const std::string text =
      "HEADER    TEST\nREMARK 1 whatever\n"
      "ATOM      1  CA  GLY A   1       0.000   0.000   0.000  1.00  0.00           C\n"
      "HETATM    2  CA  HOH A   2       0.000   0.000   0.000  1.00  0.00           O\n"
      "END\n";
  const auto s = from_pdb(text);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.chains()[0].sequence.to_string(), "G");
}

TEST(Pdb, TruncatedAtomThrows) {
  EXPECT_THROW((void)from_pdb("ATOM      1  CA  GLY A"),
               std::invalid_argument);
}

TEST(Pdb, UnknownResidueThrows) {
  const std::string text =
      "ATOM      1  CA  XXX A   1       0.000   0.000   0.000  1.00  0.00\n";
  EXPECT_THROW((void)from_pdb(text), std::invalid_argument);
}

TEST(Pdb, EmptyInputGivesEmptyStructure) {
  const auto s = from_pdb("");
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.chains().empty());
}

TEST(Pdb, ChainOrderPreserved) {
  // Chain B appears before A in the file; order of appearance wins.
  const std::string text =
      "ATOM      1  CA  GLY B   1       0.000   0.000   0.000  1.00  0.00\n"
      "ATOM      2  CA  ALA A   1       1.000   0.000   0.000  1.00  0.00\n";
  const auto s = from_pdb(text);
  ASSERT_EQ(s.chains().size(), 2u);
  EXPECT_EQ(s.chains()[0].id, 'B');
  EXPECT_EQ(s.chains()[1].id, 'A');
}

}  // namespace
}  // namespace impress::protein
