#include "protein/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace impress::protein {
namespace {

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Vec3> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back(Vec3{rng.uniform(-10, 10), rng.uniform(-10, 10),
                       rng.uniform(-10, 10)});
  return pts;
}

std::vector<Vec3> rotate_z(const std::vector<Vec3>& pts, double angle,
                           Vec3 shift = {}) {
  std::vector<Vec3> out;
  for (const auto& p : pts)
    out.push_back(Vec3{p.x * std::cos(angle) - p.y * std::sin(angle),
                       p.x * std::sin(angle) + p.y * std::cos(angle), p.z} +
                  shift);
  return out;
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
  EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
  EXPECT_EQ((a * 2.0), (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec3{0, 0, 0}, Vec3{0, 0, 2}), 2.0);
}

TEST(Centroid, EmptyAndKnown) {
  EXPECT_EQ(centroid({}), (Vec3{0, 0, 0}));
  const std::vector<Vec3> pts{{0, 0, 0}, {2, 4, 6}};
  EXPECT_EQ(centroid(pts), (Vec3{1, 2, 3}));
}

TEST(IdealHelix, HasCanonicalGeometry) {
  const auto h = ideal_helix(20);
  ASSERT_EQ(h.size(), 20u);
  // Rise: 1.5 A per residue in z.
  for (std::size_t i = 1; i < h.size(); ++i)
    EXPECT_NEAR(h[i].z - h[i - 1].z, 1.5, 1e-12);
  // All points on a 2.3 A cylinder around the helix axis.
  for (const auto& p : h)
    EXPECT_NEAR(std::sqrt(p.x * p.x + p.y * p.y), 2.3, 1e-12);
  // Consecutive C-alpha distance is physically plausible (~3.8-4 A).
  for (std::size_t i = 1; i < h.size(); ++i) {
    const double d = distance(h[i], h[i - 1]);
    EXPECT_GT(d, 3.5);
    EXPECT_LT(d, 4.3);
  }
}

TEST(IdealHelix, OriginOffsetApplies) {
  const auto h = ideal_helix(3, Vec3{10, 20, 30});
  EXPECT_NEAR(h[0].z, 30.0, 1e-12);
  EXPECT_NEAR(h[0].x, 10.0 + 2.3, 1e-12);
}

TEST(RmsdRaw, IdenticalIsZero) {
  const auto pts = random_points(30, 1);
  EXPECT_DOUBLE_EQ(rmsd_raw(pts, pts), 0.0);
}

TEST(RmsdRaw, KnownDisplacement) {
  const auto a = random_points(10, 2);
  auto b = a;
  for (auto& p : b) p += Vec3{0, 0, 3};
  EXPECT_NEAR(rmsd_raw(a, b), 3.0, 1e-12);
}

TEST(RmsdRaw, SizeMismatchThrows) {
  EXPECT_THROW((void)rmsd_raw(random_points(3, 1), random_points(4, 1)),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(rmsd_raw({}, {}), 0.0);
}

TEST(RmsdSuperposed, RigidTransformGivesZero) {
  const auto a = random_points(40, 3);
  const auto b = rotate_z(a, 1.1, Vec3{5, -3, 2});
  EXPECT_GT(rmsd_raw(a, b), 1.0);        // genuinely displaced
  EXPECT_NEAR(rmsd_superposed(a, b), 0.0, 1e-9);
}

TEST(RmsdSuperposed, SymmetricInArguments) {
  const auto a = random_points(25, 4);
  auto b = random_points(25, 5);
  EXPECT_NEAR(rmsd_superposed(a, b), rmsd_superposed(b, a), 1e-9);
}

TEST(RmsdSuperposed, NeverExceedsRaw) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const auto a = random_points(15, seed);
    const auto b = random_points(15, seed + 100);
    EXPECT_LE(rmsd_superposed(a, b), rmsd_raw(a, b) + 1e-9);
  }
}

TEST(RmsdSuperposed, DetectsRealDifference) {
  const auto a = ideal_helix(30);
  auto b = a;
  b[15] += Vec3{5, 5, 5};  // one displaced residue
  EXPECT_GT(rmsd_superposed(a, b), 0.5);
}

TEST(Superpose, MapsMobileOntoTarget) {
  const auto a = random_points(40, 6);
  const auto b = rotate_z(a, -0.7, Vec3{1, 2, 3});
  const auto fitted = superpose(a, b);
  EXPECT_NEAR(rmsd_raw(fitted, b), 0.0, 1e-9);
}

TEST(Superpose, HandlesDegenerateInputs) {
  EXPECT_TRUE(superpose({}, {}).empty());
  const std::vector<Vec3> one{{1, 2, 3}};
  const std::vector<Vec3> other{{4, 5, 6}};
  const auto fitted = superpose(one, other);
  ASSERT_EQ(fitted.size(), 1u);
  EXPECT_NEAR(distance(fitted[0], other[0]), 0.0, 1e-12);
}

// Property: superposed RMSD is invariant under rigid motion of either set.
class RmsdInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmsdInvariance, RigidMotionInvariant) {
  const auto a = random_points(20, GetParam());
  const auto b = random_points(20, GetParam() + 1000);
  const double base = rmsd_superposed(a, b);
  const auto a_moved = rotate_z(a, 2.2, Vec3{-4, 7, 1});
  const auto b_moved = rotate_z(b, -0.4, Vec3{3, 3, -9});
  EXPECT_NEAR(rmsd_superposed(a_moved, b), base, 1e-8);
  EXPECT_NEAR(rmsd_superposed(a, b_moved), base, 1e-8);
  EXPECT_NEAR(rmsd_superposed(a_moved, b_moved), base, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmsdInvariance,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

}  // namespace
}  // namespace impress::protein
