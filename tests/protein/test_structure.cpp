#include "protein/structure.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace impress::protein {
namespace {

TEST(Chain, IdealizedMatchesSequence) {
  const auto c = Chain::idealized('A', Sequence::from_string("MKVLA"));
  EXPECT_EQ(c.id, 'A');
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.ca.size(), 5u);
  c.validate();
}

TEST(Chain, ValidateCatchesMismatch) {
  Chain c = Chain::idealized('A', Sequence::from_string("MKV"));
  c.ca.pop_back();
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Structure, ConstructionValidatesChains) {
  Chain bad = Chain::idealized('A', Sequence::from_string("MKV"));
  bad.ca.pop_back();
  EXPECT_THROW(Structure("s", {bad}), std::invalid_argument);
}

TEST(Structure, ChainLookup) {
  const Structure s("s", {Chain::idealized('A', Sequence::from_string("MK")),
                          Chain::idealized('B', Sequence::from_string("VLA"))});
  EXPECT_TRUE(s.has_chain('A'));
  EXPECT_TRUE(s.has_chain('B'));
  EXPECT_FALSE(s.has_chain('C'));
  EXPECT_EQ(s.chain('B').size(), 3u);
  EXPECT_THROW((void)s.chain('C'), std::out_of_range);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Structure, AllCaConcatenatesChains) {
  const Structure s("s", {Chain::idealized('A', Sequence::from_string("MK")),
                          Chain::idealized('B', Sequence::from_string("V"))});
  EXPECT_EQ(s.all_ca().size(), 3u);
}

TEST(Structure, PlddtStorage) {
  Structure s("s", {Chain::idealized('A', Sequence::from_string("MK"))});
  EXPECT_TRUE(s.plddt().empty());
  s.set_plddt({85.0, 90.0});
  EXPECT_EQ(s.plddt().size(), 2u);
}

TEST(Complex, MakeBuildsTwoChains) {
  const auto cx = Complex::make("NHERF3", Sequence::from_string("MKVLAMKVLA"),
                                Sequence::from_string("EPEA"));
  EXPECT_EQ(cx.structure.name(), "NHERF3");
  EXPECT_EQ(cx.receptor().id, 'A');
  EXPECT_EQ(cx.peptide().id, 'B');
  EXPECT_EQ(cx.receptor().size(), 10u);
  EXPECT_EQ(cx.peptide().size(), 4u);
}

TEST(Complex, ChainsAreSpatiallySeparated) {
  const auto cx = Complex::make("x", Sequence::from_string("MKVLA"),
                                Sequence::from_string("EPEA"));
  // Peptide offset 8 A in x from the receptor helix axis.
  const double dx = cx.peptide().ca[0].x - cx.receptor().ca[0].x;
  EXPECT_NEAR(dx, 8.0, 1e-9);
}

TEST(Complex, WithReceptorReplacesSequenceKeepsPeptide) {
  const auto cx = Complex::make("x", Sequence::from_string("MKVLA"),
                                Sequence::from_string("EPEA"));
  const auto cx2 = cx.with_receptor(Sequence::from_string("GGGGG"));
  EXPECT_EQ(cx2.receptor().sequence.to_string(), "GGGGG");
  EXPECT_EQ(cx2.peptide().sequence.to_string(), "EPEA");
  EXPECT_EQ(cx2.structure.name(), "x");
  // Original untouched.
  EXPECT_EQ(cx.receptor().sequence.to_string(), "MKVLA");
}

}  // namespace
}  // namespace impress::protein
