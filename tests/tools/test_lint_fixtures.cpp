// Fixture suite for impress_lint v2: every rule must fire on its bad
// fixture and stay silent on the good twin. The linter runs as a child
// process — exactly as ctest/CI invoke it — so the exit code, the
// baseline-key format and the --explain output are all under test, not
// just the rule internals.
//
// IMPRESS_LINT_BIN and IMPRESS_LINT_FIXTURES are injected by CMake.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(IMPRESS_LINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixtures(const char* sub) {
  return std::string(IMPRESS_LINT_FIXTURES) + "/" + sub;
}

TEST(LintFixtures, EveryRuleFiresOnItsBadFixture) {
  const RunResult r = run_lint("--root " + fixtures("bad"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const char* const expected_keys[] = {
      // v2 concurrency/determinism rules
      "bad/blocking_under_lock.cpp:blocking-under-lock:send",
      "bad/blocking_under_lock.cpp:blocking-under-lock:receive",
      "bad/blocking_under_lock.cpp:blocking-under-lock:wait_idle",
      "bad/blocking_under_lock.cpp:blocking-under-lock:sleep_for",
      "bad/blocking_under_lock.cpp:blocking-under-lock:join",
      "bad/manual_double_lock.cpp:manual-double-lock:lb",
      "bad/detached_thread.cpp:detached-thread:detach",
      "bad/unordered_iteration.cpp:unordered-iteration-in-serialization:"
      "counters_",
      "bad/unordered_iteration.cpp:unordered-iteration-in-serialization:"
      "live_ids",
      "bad/wall_clock.cpp:wall-clock-in-deterministic-path:srand",
      "bad/wall_clock.cpp:wall-clock-in-deterministic-path:rand",
      "bad/wall_clock.cpp:wall-clock-in-deterministic-path:system_clock",
      "bad/wall_clock.cpp:wall-clock-in-deterministic-path:random_device",
      // zero-allocation service TU contract (path suffix service/service.cpp
      // puts the fixture on both the hot-path and zero-alloc lists)
      "bad/service/service.cpp:hot-path-alloc:new",
      "bad/service/service.cpp:hot-path-alloc:delete",
      "bad/service/service.cpp:hot-path-alloc:make_unique",
      "bad/service/service.cpp:hot-path-alloc:make_shared",
      "bad/service/service.cpp:hot-path-alloc:string",
      "bad/service/service.cpp:hot-path-alloc:to_string",
      "bad/service/service.cpp:hot-path-alloc:vector",
      "bad/service/service.cpp:hot-path-alloc:map",
      "bad/service/service.cpp:hot-string-key:to_string",
      // wire-format discipline (path suffix net/wire.cpp scopes the rule)
      "bad/net/wire.cpp:raw-struct-serialization:memcpy",
      "bad/net/wire.cpp:raw-struct-serialization:HelloMsg",
      // v1 parity pack
      "bad/legacy_rules.hpp:missing-pragma-once:header",
      "bad/legacy_rules.hpp:using-namespace:std",
      "bad/legacy_rules.hpp:naked-cv-wait:wait",
      "bad/legacy_rules.hpp:nodiscard-try:try_claim",
      "bad/legacy_rules.hpp:mutex-member-order:mutex_",
  };
  for (const char* key : expected_keys)
    EXPECT_NE(r.output.find(key), std::string::npos)
        << "missing key: " << key << "\n"
        << r.output;
}

TEST(LintFixtures, GoodTwinsStaySilent) {
  const RunResult r = run_lint("--root " + fixtures("good"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 new violation(s)"), std::string::npos)
      << r.output;
}

TEST(LintFixtures, ExplainPrintsOffendingSourceLines) {
  const RunResult plain = run_lint("--root " + fixtures("bad"));
  const RunResult explain = run_lint("--root " + fixtures("bad") + " --explain");
  // --explain adds "    > <source line>" under findings; the default
  // format (which scripts and the baseline workflow parse) is unchanged.
  EXPECT_EQ(plain.output.find("\n    > "), std::string::npos);
  EXPECT_NE(explain.output.find("\n    > "), std::string::npos);
  EXPECT_NE(explain.output.find("worker.detach();"), std::string::npos)
      << explain.output;
  // Keys are identical with and without --explain.
  EXPECT_NE(explain.output.find("key: bad/detached_thread.cpp:detached-"
                                "thread:detach"),
            std::string::npos);
}

TEST(LintFixtures, BaselineToleratesRecordedViolations) {
  const auto dir =
      std::filesystem::temp_directory_path() / "impress_lint_fixture_baseline";
  std::filesystem::create_directories(dir);
  const std::string baseline = (dir / "baseline.txt").string();

  const RunResult update = run_lint("--root " + fixtures("bad") +
                                    " --baseline " + baseline +
                                    " --update-baseline");
  EXPECT_EQ(update.exit_code, 0) << update.output;

  const RunResult tolerated =
      run_lint("--root " + fixtures("bad") + " --baseline " + baseline);
  EXPECT_EQ(tolerated.exit_code, 0) << tolerated.output;
  EXPECT_NE(tolerated.output.find("0 new violation(s)"), std::string::npos)
      << tolerated.output;

  std::filesystem::remove_all(dir);
}

}  // namespace
