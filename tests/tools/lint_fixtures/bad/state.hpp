// Support header for the unordered_iteration fixture: the member lives
// here so the rule has to resolve it through the include graph.
#pragma once

#include <string>
#include <unordered_map>

struct State {
  std::unordered_map<std::string, int> counters_;
};
