// Fixture: manual-double-lock fires when a second single-mutex guard
// opens in a scope that already holds one — textual acquisition order.
#include <mutex>

void transfer(std::mutex& a, std::mutex& b, int& from, int& to) {
  std::lock_guard<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
  to += from;
  from = 0;
}
