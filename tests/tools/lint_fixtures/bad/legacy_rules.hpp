// Fixture: parity check for the rules ported from the v1 regex linter —
// every one must still fire after the tokenizer rewrite. (The missing
// include guard at the top of this header IS one of the violations.)
#include <condition_variable>
#include <mutex>
#include <vector>

using namespace std;

class LegacyParity {
 public:
  bool try_claim(int id);

  void wait_done(std::unique_lock<std::mutex>& lk) { cv_.wait(lk); }

 private:
  std::vector<int> items_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

class TrackedParity {
 private:
  std::vector<int> queue_;
  // v1 never saw brace-initialised members; v2 must flag this one.
  common::TrackedMutex mutex_{"TrackedParity::mutex_"};
};
