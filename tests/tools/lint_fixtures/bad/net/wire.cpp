// Fixture: raw-struct-serialization fires on struct-dumping in net TUs.
// Both offending shapes appear: a sizeof-sized memcpy on the encode side
// and a reinterpret_cast to a message type on the decode side.

#include <cstdint>
#include <cstring>

namespace fixture {

struct HelloMsg {
  std::uint32_t worker_id = 0;
  std::uint32_t slots = 0;
};

void encode_bad(const HelloMsg& m, unsigned char* buf) {
  std::memcpy(buf, &m, sizeof(HelloMsg));  // struct layout onto the wire
}

HelloMsg decode_bad(const unsigned char* buf) {
  return *reinterpret_cast<const HelloMsg*>(buf);  // bytes as struct layout
}

}  // namespace fixture
