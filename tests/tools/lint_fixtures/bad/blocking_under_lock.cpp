// Fixture: blocking-under-lock fires on every blocking call made while a
// lock guard is active. Not compiled — scanned by impress_lint only.
#include <chrono>
#include <mutex>
#include <thread>

struct Channel;
struct ThreadPool;

void blocking_under_guard(std::mutex& m, Channel& ch, ThreadPool& pool) {
  std::lock_guard<std::mutex> lk(m);
  ch.send(1);
  int v = ch.receive();
  pool.wait_idle();
  std::this_thread::sleep_for(std::chrono::seconds(v));
}

void join_under_guard(std::mutex& m, std::thread& t) {
  std::unique_lock<std::mutex> lk(m);
  t.join();
}
