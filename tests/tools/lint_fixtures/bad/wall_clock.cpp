// Fixture: wall-clock-in-deterministic-path fires on every
// nondeterministic time/randomness source.
#include <chrono>
#include <cstdlib>
#include <random>

double sample_jitter() {
  std::srand(42);
  return std::rand() / 32768.0;
}

long stamp_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

unsigned seed_from_entropy() {
  std::random_device rd;
  return rd();
}
