// Fixture: hot-path-alloc (path ends in service/service.cpp, which the
// zero-allocation suffix list matches) plus hot-string-key, which the
// hot-path file list also covers for the service TUs.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Record {
  int id = 0;
};

int submit_hot_path(std::map<std::string, int>& index, int tenant) {
  // By-value std::string and std::to_string both construct on the heap
  // per request.
  std::string key = std::to_string(tenant);

  // Fresh per-request container: grows on the heap under load.
  std::vector<int> scratch(4, tenant);

  // Smart-pointer factories allocate too.
  auto shared = std::make_shared<Record>();
  auto owned = std::make_unique<Record>();

  // Naked new/delete on the submit path.
  Record* raw = new Record();
  delete raw;

  // Temporary string key in a hot-path map lookup (hot-string-key).
  const auto it = index.find(std::to_string(tenant));
  const int hit = it == index.end() ? 0 : it->second;

  return hit + scratch.front() + shared->id + owned->id +
         static_cast<int>(key.size());
}

}  // namespace fixture
