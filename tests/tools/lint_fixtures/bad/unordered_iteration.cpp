// Fixture: unordered-iteration-in-serialization fires on range-for over
// unordered containers inside checkpoint/serialize-named functions. The
// member case only works if the include graph resolved state.hpp.
#include <unordered_set>

#include "state.hpp"

struct Writer {
  void field(const char* k, int v);
  void value(int v);
};

void checkpoint_counters(const State& s, Writer& w) {
  for (const auto& [k, v] : s.counters_) w.field(k.c_str(), v);
}

void serialize_ids(const std::unordered_set<int>& live_ids, Writer& w) {
  for (int id : live_ids) w.value(id);
}
