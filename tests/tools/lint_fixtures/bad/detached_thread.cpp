// Fixture: detached-thread fires on any thread.detach() call.
#include <thread>

void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();
}
