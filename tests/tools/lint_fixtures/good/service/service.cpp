// Good twin for hot-path-alloc: the same work expressed allocation-free.
// References, string_view, pointers, and pool recycling are all legal in
// a zero-allocation TU; a construction-time allocation survives behind an
// explicit lint:allow.

#include <cstdint>
#include <memory>
#include <string_view>

namespace fixture {

struct Record {
  Record* next = nullptr;
  int id = 0;
};

class Pool {
 public:
  Pool() {
    // Construction-time carve: steady state only recycles.
    storage_ = std::make_unique<Record[]>(64);  // lint:allow hot-path-alloc
    for (int i = 63; i >= 0; --i) {
      storage_[i].next = free_;
      free_ = &storage_[i];
    }
  }

  Record* acquire() {
    Record* r = free_;
    if (r != nullptr) free_ = r->next;
    return r;
  }

  void release(Record* r) {
    r->next = free_;
    free_ = r;
  }

 private:
  std::unique_ptr<Record[]> storage_;
  Record* free_ = nullptr;
};

// string_view and const std::string& parameters do not construct.
int submit_hot_path(Pool& pool, std::string_view name, std::uint64_t tenant) {
  Record* rec = pool.acquire();
  if (rec == nullptr) return -1;
  rec->id = static_cast<int>(tenant % 97) + static_cast<int>(name.size());
  const int id = rec->id;
  pool.release(rec);
  return id;
}

}  // namespace fixture
