// Fixture: the good twin of legacy_rules — header hygiene, predicate
// waits, nodiscard try_* and mutex-before-data all in order.
#pragma once

#include <condition_variable>
#include <mutex>
#include <vector>

class LegacyParity {
 public:
  [[nodiscard]] bool try_claim(int id);

  void wait_done(std::unique_lock<std::mutex>& lk) {
    cv_.wait(lk, [this] { return done_; });
  }

 private:
  std::mutex mutex_;
  std::vector<int> items_;
  std::condition_variable cv_;
  bool done_ = false;
};

class TrackedParity {
 private:
  common::TrackedMutex mutex_{"TrackedParity::mutex_"};  // guards queue_
  std::vector<int> queue_;
};
