// Fixture: the good twin of manual_double_lock. std::scoped_lock (and
// the project's MultiGuard) acquire in address order and are exempt; a
// guard in a deliberately nested scope is the explicit-ordering idiom and
// is policed by the runtime lockdep instead.
#include <mutex>

void transfer(std::mutex& a, std::mutex& b, int& from, int& to) {
  std::scoped_lock both(a, b);
  to += from;
  from = 0;
}

void nested_scope_is_explicit(std::mutex& outer, std::mutex& inner, int& x) {
  std::lock_guard<std::mutex> lo(outer);
  x += 1;
  {
    std::lock_guard<std::mutex> li(inner);
    x += 2;
  }
}
