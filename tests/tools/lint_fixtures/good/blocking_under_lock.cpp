// Fixture: the good twin of blocking_under_lock — every blocking call
// here happens after the guard is gone, or inside a deferred lambda, or
// is a cv wait (which releases its mutex while parked). Must stay silent.
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

struct Channel;
void prepare();

void blocking_after_scope(std::mutex& m, Channel& ch) {
  {
    std::lock_guard<std::mutex> lk(m);
    prepare();
  }
  ch.send(1);
}

void blocking_after_unlock(std::mutex& m, Channel& ch) {
  std::unique_lock<std::mutex> lk(m);
  prepare();
  lk.unlock();
  ch.send(2);
}

void lambda_body_is_deferred(std::mutex& m, std::vector<std::thread>& workers,
                             Channel& ch) {
  std::lock_guard<std::mutex> lk(m);
  workers.emplace_back([&ch] { ch.send(3); });
}

void cv_wait_is_exempt(std::mutex& m, std::condition_variable& cv,
                       bool& ready) {
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&ready] { return ready; });
}
