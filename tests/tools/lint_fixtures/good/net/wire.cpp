// Fixture twin: field-by-field encode/decode stays silent, as do the
// legal patterns the rule must not confuse with struct-dumping — a
// memcpy with an explicit byte count and a byte-pointer cast that never
// names a message type. One annotated struct copy proves the
// `lint:allow` escape hatch works.

#include <cstdint>
#include <cstring>
#include <vector>

namespace fixture {

struct HelloMsg {
  std::uint32_t worker_id = 0;
  std::uint32_t slots = 0;
};

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v));
  out.push_back(static_cast<unsigned char>(v >> 8));
  out.push_back(static_cast<unsigned char>(v >> 16));
  out.push_back(static_cast<unsigned char>(v >> 24));
}

void encode_good(const HelloMsg& m, std::vector<unsigned char>& out) {
  put_u32(out, m.worker_id);
  put_u32(out, m.slots);
}

// Explicit byte counts (payload windows) are not struct dumps.
void copy_window(unsigned char* dst, const unsigned char* src,
                 std::uint32_t n) {
  std::memcpy(dst, src, n);
}

// Byte-pointer casts without a message type are the WireReader::str idiom.
const char* as_chars(const unsigned char* data) {
  return reinterpret_cast<const char*>(data);
}

void snapshot_for_crash_dump(const HelloMsg& m, unsigned char* buf) {
  std::memcpy(buf, &m, sizeof(m));  // lint:allow raw-struct-serialization — debug-only local dump, never framed
}

}  // namespace fixture
