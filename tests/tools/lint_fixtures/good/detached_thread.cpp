// Fixture: the good twin of detached_thread — the handle is kept and
// joined, so teardown ordering stays provable.
#include <thread>

void run_and_join() {
  std::thread worker([] {});
  worker.join();
}
