// Fixture: the good twin of unordered_iteration — ordered containers in
// serialization paths, and unordered iteration outside them, are both
// legitimate. Must stay silent.
#include <map>
#include <string>
#include <unordered_map>

struct Writer {
  void field(const char* k, int v);
};

void touch(int k, int v);

void checkpoint_sorted(const std::map<std::string, int>& counters, Writer& w) {
  for (const auto& [k, v] : counters) w.field(k.c_str(), v);
}

void warm_cache(const std::unordered_map<int, int>& cache) {
  for (const auto& [k, v] : cache) touch(k, v);
}
