// Fixture: the good twin of wall_clock — steady_clock is the sanctioned
// profiling clock, project RNG methods are fine, and a deliberate
// wall-clock read carries the lint:allow escape with its reason.
#include <chrono>

struct Rng {
  double uniform();
};

void work();

double profile_block() {
  const auto t0 = std::chrono::steady_clock::now();
  work();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double sample(Rng& rng) { return rng.uniform(); }

long log_timestamp() {
  return std::chrono::system_clock::now()  // lint:allow wall-clock-in-deterministic-path — log timestamps never reach persisted state
      .time_since_epoch()
      .count();
}
