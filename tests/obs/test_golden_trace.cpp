// Golden-trace regression: in simulated mode the span tree a campaign
// emits is a pure function of the seed. Two runs of the same seeded
// campaign must produce identical trees — same names, categories,
// nesting and attribute sets, in the same ordinal order. Structural
// invariants (which category nests under which) are pinned too, so a
// refactor that silently drops a nesting level fails here rather than in
// someone's Perfetto tab.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/session_dump.hpp"
#include "obs/export.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

std::vector<protein::DesignTarget> targets2() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("GT-A", 86, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("GT-B", 90, protein::alpha_synuclein().tail(10)));
  return out;
}

CampaignResult traced_run(std::uint64_t seed) {
  auto cfg = im_rp_campaign(seed);
  cfg.session.enable_tracing = true;
  cfg.session.enable_metrics = true;
  const auto targets = targets2();
  return Campaign(cfg).run(targets);
}

/// Index of each span id within the snapshot (open order).
std::map<obs::SpanId, std::size_t> index_of(
    const std::vector<obs::SpanRecord>& spans) {
  std::map<obs::SpanId, std::size_t> out;
  for (std::size_t i = 0; i < spans.size(); ++i) out[spans[i].id] = i;
  return out;
}

std::size_t depth_of(const std::vector<obs::SpanRecord>& spans,
                     const obs::SpanRecord& span) {
  const auto by_id = index_of(spans);
  std::size_t depth = 1;
  obs::SpanId parent = span.parent;
  while (parent != 0 && depth <= spans.size()) {
    ++depth;
    parent = spans[by_id.at(parent)].parent;
  }
  return depth;
}

TEST(GoldenTrace, SeededCampaignReplaysTheIdenticalSpanTree) {
  const auto a = traced_run(42);
  const auto b = traced_run(42);
  ASSERT_FALSE(a.trace.empty());
  ASSERT_EQ(a.trace.size(), b.trace.size());

  const auto index_a = index_of(a.trace);
  const auto index_b = index_of(b.trace);
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const auto& sa = a.trace[i];
    const auto& sb = b.trace[i];
    EXPECT_EQ(sa.name, sb.name) << "span " << i;
    EXPECT_EQ(sa.category, sb.category) << "span " << i;
    EXPECT_EQ(sa.attrs, sb.attrs) << "span " << i;
    // Parent linkage compared by ordinal, not raw id.
    const std::size_t pa =
        sa.parent == 0 ? SIZE_MAX : index_a.at(sa.parent);
    const std::size_t pb =
        sb.parent == 0 ? SIZE_MAX : index_b.at(sb.parent);
    EXPECT_EQ(pa, pb) << "span " << i << " (" << sa.name << ")";
    // Simulated time is part of the determinism contract.
    EXPECT_DOUBLE_EQ(sa.start, sb.start) << "span " << i;
    EXPECT_DOUBLE_EQ(sa.end, sb.end) << "span " << i;
  }

  // The metrics snapshot replays exactly too.
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(GoldenTrace, StructuralInvariantsOfTheSpanTree) {
  const auto r = traced_run(42);
  const auto& spans = r.trace;
  ASSERT_FALSE(spans.empty());
  const auto by_id = index_of(spans);

  // Exactly one campaign root, and it is the first span opened.
  EXPECT_EQ(spans[0].category, obs::categories::kCampaign);
  EXPECT_EQ(spans[0].name, "campaign.IM-RP");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(std::count_if(spans.begin(), spans.end(),
                          [](const auto& s) {
                            return s.category == obs::categories::kCampaign;
                          }),
            1);

  std::size_t max_depth = 0;
  std::size_t tasks = 0;
  std::size_t attempts = 0;
  for (const auto& s : spans) {
    max_depth = std::max(max_depth, depth_of(spans, s));
    ASSERT_TRUE(s.parent == 0 || by_id.count(s.parent))
        << s.name << ": dangling parent";
    const std::string parent_cat =
        s.parent == 0 ? "" : spans[by_id.at(s.parent)].category;
    if (s.category == obs::categories::kPipeline) {
      EXPECT_EQ(parent_cat, obs::categories::kCampaign) << s.name;
    } else if (s.category == obs::categories::kStage) {
      EXPECT_EQ(parent_cat, obs::categories::kPipeline) << s.name;
    } else if (s.category == obs::categories::kTask) {
      ++tasks;
      EXPECT_EQ(parent_cat, obs::categories::kStage) << s.name;
    } else if (s.category == obs::categories::kAttempt) {
      ++attempts;
      EXPECT_EQ(parent_cat, obs::categories::kTask) << s.name;
    }
    // Closed spans must not end before they start.
    if (s.closed()) EXPECT_GE(s.end, s.start);
  }
  EXPECT_GE(max_depth, 4u) << "campaign -> pipeline -> stage -> task gone?";
  EXPECT_GT(tasks, 0u);
  EXPECT_GE(attempts, tasks) << "every task runs at least one attempt";

  // Every task span the runtime opened was closed with an outcome attr.
  for (const auto& s : spans)
    if (s.category == obs::categories::kTask) {
      EXPECT_TRUE(s.closed()) << s.name;
      EXPECT_TRUE(std::any_of(
          s.attrs.begin(), s.attrs.end(),
          [](const auto& kv) { return kv.first == "outcome"; }))
          << s.name;
    }

  // Counters cross-check the tree: one task span per submitted task.
  EXPECT_EQ(r.metrics.counter("impress_tasks_submitted"), tasks);
}

TEST(GoldenTrace, RetriedFoldShowsMultipleAttemptsUnderOneTask) {
  // fold_retries > 0 for this seed; its task must carry > 1 attempt span.
  const auto r = traced_run(42);
  if (r.task_retries + r.fold_retries == 0)
    GTEST_SKIP() << "seed exercises no retries; nothing to pin here";
  std::map<obs::SpanId, std::size_t> attempts_per_task;
  for (const auto& s : r.trace)
    if (s.category == obs::categories::kAttempt)
      ++attempts_per_task[s.parent];
  if (r.task_retries > 0) {
    std::size_t multi = 0;
    for (const auto& [task, n] : attempts_per_task)
      if (n > 1) ++multi;
    EXPECT_GT(multi, 0u)
        << "runtime retries must appear as sibling attempt spans";
  }
}

TEST(GoldenTrace, SessionDumpRoundTripsTheHarvest) {
  const auto r = traced_run(42);
  const auto doc = common::Json::parse(to_json(r).dump());
  const auto back = campaign_result_from_json(doc);
  ASSERT_EQ(back.trace.size(), r.trace.size());
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    EXPECT_EQ(back.trace[i].id, r.trace[i].id);
    EXPECT_EQ(back.trace[i].name, r.trace[i].name);
    EXPECT_EQ(back.trace[i].attrs, r.trace[i].attrs);
  }
  EXPECT_EQ(back.metrics, r.metrics);
}

TEST(GoldenTrace, ChromeTraceExportIsWellFormed) {
  const auto r = traced_run(42);
  const auto doc =
      common::Json::parse(obs::chrome_trace_json(r.trace, 2));
  const auto& events = doc.at("traceEvents").as_array();
  EXPECT_GT(events.size(), r.trace.size());  // spans + track metadata
  std::size_t complete = 0;
  std::size_t metadata = 0;
  for (const auto& ev : events) {
    const auto ph = ev.at("ph").as_string();
    if (ph == "X") {
      ++complete;
      EXPECT_GE(ev.at("dur").as_number(), 0.0);
    } else {
      EXPECT_EQ(ph, "M");
      ++metadata;
    }
  }
  EXPECT_EQ(complete, r.trace.size());
  EXPECT_EQ(metadata, 1u + static_cast<std::size_t>(r.root_pipelines) +
                          r.subpipelines);
}

}  // namespace
}  // namespace impress::core
