// Tracer unit tests: span lifecycle, nesting, attributes, the ambient
// context, thread-safety of the per-thread buffers, and the disabled /
// no-op paths that back the zero-cost-when-off contract.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace impress::obs {
namespace {

TEST(Tracer, DisabledByDefaultAndRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  const SpanId id = tracer.begin(0.0, "x", categories::kWork);
  EXPECT_EQ(id, 0u);
  tracer.end(id, 1.0);
  tracer.attr(id, "k", "v");
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Tracer, RecordsOpenCloseWithAttrs) {
  Tracer tracer(true);
  const SpanId root = tracer.begin(1.0, "root", categories::kCampaign);
  ASSERT_NE(root, 0u);
  const SpanId child = tracer.begin(2.0, "child", categories::kTask, root);
  tracer.attr(child, "uid", "t.000001");
  tracer.end(child, 3.0);
  tracer.end(root, 4.0);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].category, categories::kCampaign);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_DOUBLE_EQ(spans[0].start, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 4.0);
  EXPECT_TRUE(spans[0].closed());
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, root);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].first, "uid");
  EXPECT_EQ(spans[1].attrs[0].second, "t.000001");
  EXPECT_LT(spans[0].open_seq, spans[1].open_seq);
}

TEST(Tracer, UnclosedSpanIsVisibleAsUnclosed) {
  Tracer tracer(true);
  (void)tracer.begin(5.0, "open", categories::kPhase);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].closed());
  EXPECT_EQ(spans[0].close_seq, 0u);
}

TEST(Tracer, DoubleCloseKeepsFirstEnd) {
  Tracer tracer(true);
  const SpanId id = tracer.begin(0.0, "x", categories::kWork);
  tracer.end(id, 1.0);
  tracer.end(id, 9.0);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].end, 1.0);
}

TEST(Tracer, InstantIsZeroDuration) {
  Tracer tracer(true);
  const SpanId id = tracer.instant(7.0, "mark", categories::kDecision);
  ASSERT_NE(id, 0u);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].start, 7.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 7.0);
}

TEST(Tracer, ScopedSpanClosesOnDestruction) {
  Tracer tracer(true);
  double t = 10.0;
  tracer.set_clock([&t] { return t; });
  {
    ScopedSpan span(&tracer, "scoped", categories::kWork);
    span.attr("k", "v");
    t = 12.0;
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].start, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 12.0);
}

TEST(Tracer, ScopedSpanMoveTransfersOwnership) {
  Tracer tracer(true);
  tracer.set_clock([] { return 0.0; });
  ScopedSpan outer;
  {
    ScopedSpan inner(&tracer, "moved", categories::kWork);
    outer = std::move(inner);
    EXPECT_EQ(inner.id(), 0u);  // NOLINT(bugprone-use-after-move)
  }
  // inner's destruction must not have closed the span.
  EXPECT_FALSE(tracer.spans()[0].closed());
  outer.close();
  EXPECT_TRUE(tracer.spans()[0].closed());
}

TEST(Tracer, ClearDropsEverything) {
  Tracer tracer(true);
  (void)tracer.begin(0.0, "x", categories::kWork);
  EXPECT_EQ(tracer.size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Tracer, ThreadsMergeIntoOneOrderedSnapshot) {
  Tracer tracer(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPer = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&tracer, i] {
      for (int j = 0; j < kSpansPer; ++j) {
        const SpanId id = tracer.begin(
            0.0, "w" + std::to_string(i), categories::kWork);
        tracer.attr(id, "j", std::to_string(j));
        tracer.end(id, 1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kSpansPer));
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_LT(spans[i - 1].open_seq, spans[i].open_seq);
  for (const auto& s : spans) {
    EXPECT_TRUE(s.closed());
    EXPECT_EQ(s.attrs.size(), 1u);
  }
}

TEST(Ambient, InertWithoutContext) {
  EXPECT_EQ(ambient_tracer(), nullptr);
  EXPECT_EQ(ambient_parent(), 0u);
  ScopedSpan span = ambient_span("orphan");
  EXPECT_EQ(span.id(), 0u);  // no context, no span
}

TEST(Ambient, ChildSpansNestUnderInstalledContext) {
  Tracer tracer(true);
  tracer.set_clock([] { return 0.0; });
  const SpanId attempt = tracer.begin(0.0, "attempt.1", categories::kAttempt);
  {
    AmbientContext ctx(&tracer, attempt);
    EXPECT_EQ(ambient_tracer(), &tracer);
    EXPECT_EQ(ambient_parent(), attempt);
    ScopedSpan outer = ambient_span("fold.cache");
    ASSERT_NE(outer.id(), 0u);
    {
      ScopedSpan inner = ambient_span("fold.predict");
      ASSERT_NE(inner.id(), 0u);
      // While `inner` lives, *it* is the ambient parent.
      EXPECT_EQ(ambient_parent(), inner.id());
    }
    EXPECT_EQ(ambient_parent(), outer.id());
  }
  EXPECT_EQ(ambient_tracer(), nullptr);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "fold.cache");
  EXPECT_EQ(spans[1].parent, attempt);
  EXPECT_EQ(spans[2].name, "fold.predict");
  EXPECT_EQ(spans[2].parent, spans[1].id);
}

TEST(Ambient, DisabledTracerInstallsNothing) {
  Tracer tracer;  // disabled
  AmbientContext ctx(&tracer, 1);
  EXPECT_EQ(ambient_tracer(), nullptr);
  ScopedSpan span = ambient_span("x");
  EXPECT_EQ(span.id(), 0u);
}

TEST(Export, SpansRoundTripThroughJson) {
  Tracer tracer(true);
  const SpanId root = tracer.begin(1.5, "root", categories::kCampaign);
  const SpanId child = tracer.begin(2.0, "child", categories::kTask, root);
  tracer.attr(child, "outcome", "done");
  tracer.end(child, 2.5);
  tracer.end(root, 3.0);
  const auto spans = tracer.spans();

  const auto doc = common::Json::parse(spans_to_json(spans).dump());
  const auto back = spans_from_json(doc);
  ASSERT_EQ(back.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(back[i].id, spans[i].id);
    EXPECT_EQ(back[i].parent, spans[i].parent);
    EXPECT_EQ(back[i].name, spans[i].name);
    EXPECT_EQ(back[i].category, spans[i].category);
    EXPECT_DOUBLE_EQ(back[i].start, spans[i].start);
    EXPECT_DOUBLE_EQ(back[i].end, spans[i].end);
    EXPECT_EQ(back[i].attrs, spans[i].attrs);
  }
}

TEST(Export, ChromeTraceHasCompleteEventsAndTrackNames) {
  Tracer tracer(true);
  const SpanId root = tracer.begin(0.0, "campaign.T", categories::kCampaign);
  const SpanId pipe = tracer.begin(0.5, "P1", categories::kPipeline, root);
  const SpanId stage = tracer.begin(1.0, "stage.fold.c1", categories::kStage,
                                    pipe);
  tracer.end(stage, 2.0);
  tracer.end(pipe, 2.5);
  tracer.end(root, 3.0);

  const auto doc = chrome_trace(tracer.spans());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 5u);  // 3 spans + 2 named tracks
  // The stage inherits the pipeline's track; the pipeline got a fresh one.
  double pipe_tid = -1.0;
  double stage_tid = -2.0;
  for (const auto& ev : events) {
    if (ev.at("name").as_string() == "P1" && ev.at("ph").as_string() == "X")
      pipe_tid = ev.at("tid").as_number();
    if (ev.at("name").as_string() == "stage.fold.c1")
      stage_tid = ev.at("tid").as_number();
  }
  EXPECT_EQ(pipe_tid, stage_tid);
  // ts/dur are microseconds.
  for (const auto& ev : events)
    if (ev.at("name").as_string() == "stage.fold.c1") {
      EXPECT_DOUBLE_EQ(ev.at("ts").as_number(), 1e6);
      EXPECT_DOUBLE_EQ(ev.at("dur").as_number(), 1e6);
    }
}

TEST(Export, PrometheusTextShapes) {
  MetricsSnapshot snap;
  snap.counters.push_back({"impress_tasks_done", 68});
  snap.gauges.push_back({"impress_tasks_outstanding", 0.0});
  snap.histograms.push_back(
      {"impress_task_run_seconds", {1.0, 10.0}, {3, 2, 1}, 6, 25.5});
  const std::string text = prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE impress_tasks_done_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("impress_tasks_done_total 68\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE impress_tasks_outstanding gauge\n"),
            std::string::npos);
  // Cumulative buckets: 3, then 3+2, then +Inf = count.
  EXPECT_NE(text.find("impress_task_run_seconds_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("impress_task_run_seconds_bucket{le=\"10\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("impress_task_run_seconds_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("impress_task_run_seconds_sum 25.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("impress_task_run_seconds_count 6\n"),
            std::string::npos);
}

}  // namespace
}  // namespace impress::obs
