// Metrics property tests: striped counters and histograms must aggregate
// to exactly what a single-threaded reference computes, the registry must
// be idempotent by name, and disabled instruments must observe nothing.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace impress::obs {
namespace {

TEST(Counter, ExactUnderConcurrentHammer) {
  MetricsRegistry registry(true);
  Counter* counter = registry.counter("hammered");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([counter] {
      for (std::uint64_t j = 0; j < kPerThread; ++j) counter->inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(Counter, DisabledStaysZero) {
  MetricsRegistry registry(false);
  EXPECT_FALSE(registry.enabled());
  Counter* counter = registry.counter("dead");
  counter->add(100);
  EXPECT_EQ(counter->value(), 0u);
}

TEST(Gauge, AddSubSetSemantics) {
  MetricsRegistry registry(true);
  Gauge* gauge = registry.gauge("g");
  gauge->add(5.0);
  gauge->sub(2.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 3.0);
  gauge->set(-1.5);
  EXPECT_DOUBLE_EQ(gauge->value(), -1.5);
}

TEST(Gauge, BalancedAddSubReturnsToZero) {
  MetricsRegistry registry(true);
  Gauge* gauge = registry.gauge("outstanding");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([gauge] {
      for (int j = 0; j < 10'000; ++j) {
        gauge->add(1.0);
        gauge->sub(1.0);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry registry(true);
  Histogram* h = registry.histogram("edges", {1.0, 10.0});
  h->observe(0.5);   // le=1
  h->observe(1.0);   // le=1 (inclusive)
  h->observe(1.01);  // le=10
  h->observe(10.0);  // le=10
  h->observe(11.0);  // +Inf
  const auto buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.01 + 10.0 + 11.0);
}

TEST(Histogram, BoundsAreSortedAndDeduplicated) {
  MetricsRegistry registry(true);
  Histogram* h = registry.histogram("messy", {10.0, 1.0, 10.0, 5.0});
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 5.0, 10.0}));
}

TEST(Histogram, ConcurrentObservationsMatchSingleThreadedReference) {
  // Property: merging per-thread striped observations must equal a
  // single-threaded run over the same multiset of values. Integer-valued
  // observations keep the double sum associative, so equality is exact.
  const auto bounds = Histogram::default_seconds_bounds();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;

  // Deterministic per-thread value streams.
  std::vector<std::vector<double>> streams(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    std::mt19937_64 rng(1000 + i);
    streams[i].reserve(kPerThread);
    for (int j = 0; j < kPerThread; ++j)
      streams[i].push_back(static_cast<double>(rng() % 100'000));
  }

  MetricsRegistry registry(true);
  Histogram* striped = registry.histogram("striped", bounds);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([striped, &streams, i] {
      for (double v : streams[i]) striped->observe(v);
    });
  for (auto& t : threads) t.join();

  Histogram* reference = registry.histogram("reference", bounds);
  for (const auto& stream : streams)
    for (double v : stream) reference->observe(v);

  EXPECT_EQ(striped->bucket_counts(), reference->bucket_counts());
  EXPECT_EQ(striped->count(), reference->count());
  EXPECT_DOUBLE_EQ(striped->sum(), reference->sum());
}

TEST(Registry, RegistrationIsIdempotentByName) {
  MetricsRegistry registry(true);
  EXPECT_EQ(registry.counter("a"), registry.counter("a"));
  EXPECT_EQ(registry.gauge("b"), registry.gauge("b"));
  Histogram* h = registry.histogram("c", {1.0});
  EXPECT_EQ(registry.histogram("c", {5.0, 9.0}), h);
  EXPECT_EQ(h->bounds(), std::vector<double>{1.0})
      << "first registration's bounds win";
}

TEST(Registry, SnapshotIsSortedAndComparable) {
  MetricsRegistry registry(true);
  registry.counter("zeta")->add(1);
  registry.counter("alpha")->add(2);
  registry.gauge("mid")->set(3.0);
  const MetricsSnapshot a = registry.snapshot();
  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].name, "alpha");
  EXPECT_EQ(a.counters[1].name, "zeta");
  EXPECT_EQ(a.counter("alpha"), 2u);
  EXPECT_EQ(a.counter("missing"), 0u);
  EXPECT_EQ(a, registry.snapshot());
  registry.counter("alpha")->inc();
  EXPECT_NE(a, registry.snapshot());
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

TEST(RuntimeMetrics, RegistersEveryHandleEvenWhenDisabled) {
  MetricsRegistry registry(false);
  const RuntimeMetrics m = RuntimeMetrics::registered(registry);
  // Hot paths dereference these unconditionally — none may be null.
  for (Counter* c :
       {m.tasks_submitted, m.tasks_done, m.tasks_failed, m.tasks_cancelled,
        m.tasks_retried, m.tasks_timed_out, m.tasks_requeued,
        m.scheduler_enqueues, m.scheduler_placements, m.scheduler_ticks,
        m.pipelines_started, m.pipelines_finished, m.subpipelines_spawned,
        m.pipeline_messages, m.completion_messages, m.stage_generate,
        m.stage_refine, m.stage_fold, m.fold_cache_hits, m.fold_cache_misses})
    ASSERT_NE(c, nullptr);
  ASSERT_NE(m.tasks_outstanding, nullptr);
  ASSERT_NE(m.pipelines_active, nullptr);
  ASSERT_NE(m.exec_setup_seconds, nullptr);
  ASSERT_NE(m.task_run_seconds, nullptr);
  m.tasks_submitted->inc();
  EXPECT_EQ(m.tasks_submitted->value(), 0u) << "disabled registry no-ops";
}

}  // namespace
}  // namespace impress::obs
