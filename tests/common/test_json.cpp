#include "common/json.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace impress::common {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3.5).dump(), "-3.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(std::size_t{7}).dump(), "7");
}

TEST(Json, IntegralDoublesPrintWithoutDecimals) {
  EXPECT_EQ(Json(100.0).dump(), "100");
  EXPECT_EQ(Json(0.0).dump(), "0");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd\te").dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ArraysAndObjects) {
  Json j(Json::Array{Json(1), Json("two"), Json(nullptr)});
  EXPECT_EQ(j.dump(), "[1,\"two\",null]");
  Json obj(Json::Object{{"b", Json(2)}, {"a", Json(1)}});
  // std::map orders keys.
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":2}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json(Json::Array{}).dump(), "[]");
  EXPECT_EQ(Json(Json::Object{}).dump(), "{}");
}

TEST(Json, PrettyPrint) {
  Json obj(Json::Object{{"a", Json(Json::Array{Json(1), Json(2)})}});
  EXPECT_EQ(obj.dump(2), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-2e3").as_number(), -2000.0);
  EXPECT_EQ(Json::parse("\"x\"").as_string(), "x");
}

TEST(Json, ParseNested) {
  const auto j = Json::parse(R"({"a": [1, {"b": "c"}], "d": null})");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_DOUBLE_EQ(j.at("a").at(0).as_number(), 1.0);
  EXPECT_EQ(j.at("a").at(1).at("b").as_string(), "c");
  EXPECT_TRUE(j.at("d").is_null());
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("zzz"));
}

TEST(Json, ParseWhitespaceTolerant) {
  const auto j = Json::parse("  {\n\t\"a\" :\r [ ] }  ");
  EXPECT_TRUE(j.at("a").is_array());
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb\t\"\\")").as_string(), "a\nb\t\"\\");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW((void)Json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("1 2"), std::invalid_argument);  // trailing
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("01x"), std::invalid_argument);
}

TEST(Json, TypeMismatchThrows) {
  const Json j(42);
  EXPECT_THROW((void)j.as_string(), std::bad_variant_access);
  EXPECT_THROW((void)j.at("k"), std::bad_variant_access);
}

TEST(Json, RoundTripComplexDocument) {
  Json doc(Json::Object{
      {"name", Json("IM-RP")},
      {"values", Json(Json::Array{Json(1.5), Json(-0.25), Json(1e-9)})},
      {"nested", Json(Json::Object{{"flag", Json(true)},
                                   {"text", Json("line1\nline2")}})},
      {"empty_arr", Json(Json::Array{})},
      {"empty_obj", Json(Json::Object{})},
  });
  for (int indent : {0, 2, 4}) {
    const auto parsed = Json::parse(doc.dump(indent));
    EXPECT_EQ(parsed, doc) << "indent=" << indent;
  }
}

// Property fuzz: randomly generated documents round-trip through dump()
// and parse() at every indentation.
class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

namespace fuzz {

Json random_value(std::uint64_t& state, int depth) {
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(state >> 33);
  };
  const auto kind = next() % (depth > 3 ? 4u : 6u);
  switch (kind) {
    case 0: return Json(nullptr);
    case 1: return Json(next() % 2 == 0);
    case 2:
      return Json((static_cast<double>(next()) - 2147483648.0) / 1024.0);
    case 3: {
      std::string s;
      const auto len = next() % 12;
      for (std::uint32_t i = 0; i < len; ++i)
        s.push_back(static_cast<char>(' ' + next() % 94));
      return Json(std::move(s));
    }
    case 4: {
      Json::Array a;
      const auto len = next() % 5;
      for (std::uint32_t i = 0; i < len; ++i)
        a.push_back(random_value(state, depth + 1));
      return Json(std::move(a));
    }
    default: {
      Json::Object o;
      const auto len = next() % 5;
      for (std::uint32_t i = 0; i < len; ++i)
        o.emplace("k" + std::to_string(next() % 100),
                  random_value(state, depth + 1));
      return Json(std::move(o));
    }
  }
}

}  // namespace fuzz

TEST_P(JsonFuzz, RoundTripAnyDocument) {
  std::uint64_t state = GetParam() * 0x9e3779b97f4a7c15ULL + 1;
  for (int i = 0; i < 30; ++i) {
    const Json doc = fuzz::random_value(state, 0);
    for (int indent : {0, 2}) {
      const Json back = Json::parse(doc.dump(indent));
      EXPECT_EQ(back, doc);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Range<std::uint64_t>(1, 7));

// parse(dump(x)) must return x's exact bit pattern for every finite
// double — checkpoints (core/checkpoint.hpp) round rng offsets, clock
// values and metrics through JSON and rely on this for bit-exact resume.
void expect_number_round_trip(double x) {
  const Json back = Json::parse(Json(x).dump());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.as_number()),
            std::bit_cast<std::uint64_t>(x))
      << "value " << x << " dumped as " << Json(x).dump();
}

TEST(Json, NumberRoundTripNegativeZero) {
  expect_number_round_trip(-0.0);
  EXPECT_TRUE(std::signbit(Json::parse(Json(-0.0).dump()).as_number()));
}

TEST(Json, NumberRoundTripSubnormals) {
  expect_number_round_trip(std::numeric_limits<double>::denorm_min());
  expect_number_round_trip(-std::numeric_limits<double>::denorm_min());
  expect_number_round_trip(std::numeric_limits<double>::min() / 2.0);
  expect_number_round_trip(
      std::bit_cast<double>(std::uint64_t{0x000fffffffffffffULL}));
}

TEST(Json, NumberRoundTripExtremes) {
  expect_number_round_trip(std::numeric_limits<double>::max());
  expect_number_round_trip(std::numeric_limits<double>::min());
  expect_number_round_trip(std::numeric_limits<double>::epsilon());
  expect_number_round_trip(5e-324);
  expect_number_round_trip(0.1);
  expect_number_round_trip(1.0 / 3.0);
}

TEST(Json, NumberRoundTripIntegralStraddle1e15) {
  // The dumper switches between integer-style and %.17g style output
  // around the "integral double" boundary; both sides must survive.
  for (double x : {999999999999999.0, 1e15, 1e15 + 2.0, 9.007199254740992e15,
                   9.007199254740994e15, 1e16, 1.00000000000000016e15})
    expect_number_round_trip(x);
}

TEST(Json, NumberRoundTripRandomBitPatterns) {
  // Deterministic xorshift sweep over raw bit patterns, skipping
  // non-finite encodings (those intentionally dump as null).
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  int tested = 0;
  while (tested < 500) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const double x = std::bit_cast<double>(state);
    if (!std::isfinite(x)) continue;
    expect_number_round_trip(x);
    ++tested;
  }
}

TEST(Json, EqualityIsDeep) {
  const auto a = Json::parse(R"({"x":[1,2,{"y":true}]})");
  const auto b = Json::parse(R"({ "x" : [ 1, 2, { "y" : true } ] })");
  EXPECT_EQ(a, b);
  const auto c = Json::parse(R"({"x":[1,2,{"y":false}]})");
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace impress::common
