#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace impress::common {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, AdjacentDelimitersYieldEmpty) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Split, EmptyStringOneField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingDelimiter) {
  const auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitWs, CollapsesRuns) {
  const auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWs, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("ATOM  123", "ATOM"));
  EXPECT_FALSE(starts_with("AT", "ATOM"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(ToUpper, AsciiOnly) {
  EXPECT_EQ(to_upper("aBc123"), "ABC123");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");  // no truncation
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Repeat, Basics) {
  EXPECT_EQ(repeat('-', 3), "---");
  EXPECT_EQ(repeat('x', 0), "");
}

}  // namespace
}  // namespace impress::common
