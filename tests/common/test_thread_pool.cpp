#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace impress::common {
namespace {

using namespace std::chrono_literals;

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ForwardsArguments) {
  ThreadPool pool(1);
  auto f = pool.submit([](int a, int b) { return a + b; }, 3, 4);
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&] {
      const int r = ++running;
      int p = peak.load();
      while (r > p && !peak.compare_exchange_weak(p, r)) {
      }
      std::this_thread::sleep_for(20ms);
      --running;
    });
  pool.wait_idle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&] {
        std::this_thread::sleep_for(1ms);
        ++counter;
      });
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, CoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 64, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

class ThreadPoolWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadPoolWidthSweep, SumReduction) {
  ThreadPool pool(GetParam());
  std::atomic<long> sum{0};
  parallel_for(pool, 500, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 500L * 499 / 2);
}

INSTANTIATE_TEST_SUITE_P(Widths, ThreadPoolWidthSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace impress::common
