// SumTree / tree_reduce: the bit-identical-summation contract that the
// incremental fitness kernel (protein/landscape.cpp) is built on. All
// equality here is on exact bit patterns, not EXPECT_DOUBLE_EQ — one ULP
// of drift would break MutationScorer's golden equivalence.

#include "common/sum_tree.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace impress::common {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::vector<double> random_leaves(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  // Non-negative, wildly varying magnitudes: the regime where naive
  // running sums drift but canonical tree order must not.
  for (auto& v : out) v = rng.uniform() * std::pow(10.0, rng.range(-8, 8));
  return out;
}

TEST(SumTree, EmptyAndSingle) {
  SumTree empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.total(), 0.0);
  EXPECT_EQ(tree_reduce([](std::size_t) { return 1.0; }, 0), 0.0);

  SumTree one(std::vector<double>{3.25});
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(bits(one.total()), bits(3.25));
  EXPECT_EQ(bits(one.total_with(0, 7.5)), bits(7.5));
}

TEST(SumTree, TotalMatchesTreeReduceBitwise) {
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 17u, 64u, 96u, 257u}) {
    const auto leaves = random_leaves(n, 100 + n);
    const SumTree tree(leaves);
    const double reduced =
        tree_reduce([&](std::size_t i) { return leaves[i]; }, n);
    EXPECT_EQ(bits(tree.total()), bits(reduced)) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(bits(tree.leaf(i)), bits(leaves[i]));
  }
}

TEST(SumTree, TotalWithMatchesRebuildBitwise) {
  for (const std::size_t n : {1u, 3u, 16u, 41u, 96u}) {
    auto leaves = random_leaves(n, 7 * n);
    const SumTree tree(leaves);
    Rng rng(n);
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t i = rng.below(static_cast<std::uint32_t>(n));
      const double v = rng.uniform() * 100.0;
      auto changed = leaves;
      changed[i] = v;
      const SumTree rebuilt(changed);
      EXPECT_EQ(bits(tree.total_with(i, v)), bits(rebuilt.total()))
          << "n=" << n << " i=" << i;
    }
    // total_with must not have mutated anything.
    const SumTree fresh(leaves);
    EXPECT_EQ(bits(tree.total()), bits(fresh.total()));
  }
}

TEST(SumTree, UpdateMatchesRebuildBitwise) {
  for (const std::size_t n : {1u, 5u, 32u, 96u, 130u}) {
    auto leaves = random_leaves(n, 13 * n);
    SumTree tree(leaves);
    Rng rng(n + 1);
    for (int trial = 0; trial < 100; ++trial) {
      const std::size_t i = rng.below(static_cast<std::uint32_t>(n));
      const double v = rng.uniform() * std::pow(10.0, rng.range(-6, 6));
      leaves[i] = v;
      tree.update(i, v);
      const SumTree rebuilt(leaves);
      EXPECT_EQ(bits(tree.total()), bits(rebuilt.total()))
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(SumTree, UpdateThenTotalWithAgree) {
  // total_with(i, v) predicts exactly what update(i, v) commits.
  auto leaves = random_leaves(33, 99);
  SumTree tree(leaves);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t i = rng.below(33);
    const double v = rng.uniform();
    const double predicted = tree.total_with(i, v);
    tree.update(i, v);
    EXPECT_EQ(bits(tree.total()), bits(predicted));
  }
}

TEST(SumTree, CeilPow2) {
  EXPECT_EQ(ceil_pow2(0), 1u);
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(96), 128u);
  EXPECT_EQ(ceil_pow2(128), 128u);
}

}  // namespace
}  // namespace impress::common
