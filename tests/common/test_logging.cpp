#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace impress::common {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Logging, SuppressedLevelsDoNotEvaluateStream) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  bool evaluated = false;
  auto probe = [&] {
    evaluated = true;
    return "x";
  };
  IMPRESS_LOG(kDebug, "test") << probe();
  EXPECT_FALSE(evaluated);
}

TEST(Logging, EnabledLevelEvaluatesStream) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  bool evaluated = false;
  auto probe = [&] {
    evaluated = true;
    return "x";
  };
  IMPRESS_LOG(kError, "test") << probe();
  EXPECT_TRUE(evaluated);
}

TEST(Logging, ConcurrentLoggingDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // exercise the code path quietly
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i)
        log(LogLevel::kDebug, "component", "message");
    });
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace impress::common
