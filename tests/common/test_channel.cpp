#include "common/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace impress::common {
namespace {

using namespace std::chrono_literals;

TEST(Channel, SendThenReceive) {
  Channel<int> ch;
  EXPECT_TRUE(ch.send(42));
  const auto v = ch.receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  for (int i = 0; i < 10; ++i) ch.send(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ch.receive().value(), i);
}

TEST(Channel, TryReceiveEmptyIsNullopt) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(Channel, TrySendRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, UnboundedNeverRefusesTrySend) {
  Channel<int> ch(0);
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(ch.try_send(i));
  EXPECT_EQ(ch.size(), 10000u);
}

TEST(Channel, CloseWakesReceivers) {
  Channel<int> ch;
  std::thread receiver([&] {
    const auto v = ch.receive();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(10ms);
  ch.close();
  receiver.join();
}

TEST(Channel, CloseDrainsBeforeFailing) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.close();
  EXPECT_EQ(ch.receive().value(), 1);
  EXPECT_EQ(ch.receive().value(), 2);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(Channel, SendAfterCloseFails) {
  Channel<int> ch;
  ch.close();
  EXPECT_FALSE(ch.send(1));
  EXPECT_FALSE(ch.try_send(1));
}

TEST(Channel, CloseIsIdempotent) {
  Channel<int> ch;
  ch.close();
  ch.close();
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, ReceiveForTimesOut) {
  Channel<int> ch;
  const auto t0 = std::chrono::steady_clock::now();
  const auto v = ch.receive_for(30ms);
  EXPECT_FALSE(v.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
}

TEST(Channel, ReceiveForGetsValueEarly) {
  Channel<int> ch;
  std::thread sender([&] {
    std::this_thread::sleep_for(10ms);
    ch.send(5);
  });
  const auto v = ch.receive_for(2s);
  sender.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Channel, BlockingSendUnblocksWhenSpaceFrees) {
  Channel<int> ch(1);
  ch.send(1);
  std::atomic<bool> sent{false};
  std::thread sender([&] {
    ch.send(2);  // blocks until a receive frees space
    sent = true;
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(sent.load());
  EXPECT_EQ(ch.receive().value(), 1);
  sender.join();
  EXPECT_TRUE(sent.load());
  EXPECT_EQ(ch.receive().value(), 2);
}

TEST(Channel, ReceiveForClosedButNonemptyStillDelivers) {
  // Closed-but-nonempty must behave drain-then-fail, exactly like
  // receive(): the deadline path may not lose buffered values.
  Channel<int> ch;
  ch.send(7);
  ch.send(8);
  ch.close();
  EXPECT_EQ(ch.receive_for(30ms).value(), 7);
  EXPECT_EQ(ch.receive_for(0ms).value(), 8);  // even with a zero deadline
  EXPECT_FALSE(ch.receive_for(1ms).has_value());  // now closed AND drained
}

TEST(Channel, ReceiveForZeroTimeout) {
  Channel<int> ch;
  // Zero deadline on an open, empty channel: immediate nullopt, no block.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.receive_for(0ms).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 100ms);
  ch.send(1);
  EXPECT_EQ(ch.receive_for(0ms).value(), 1);
}

TEST(Channel, CloseRacesBlockedSendOnBoundedChannel) {
  Channel<int> ch(1);
  ch.send(1);  // full: the next send blocks
  std::atomic<bool> send_result{true};
  std::thread sender([&] { send_result = ch.send(2); });
  std::this_thread::sleep_for(10ms);  // sender is parked on not_full_
  ch.close();
  sender.join();
  EXPECT_FALSE(send_result.load());  // woken by close, value dropped
  EXPECT_EQ(ch.receive().value(), 1);  // buffered value survives close
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(Channel, TryReceiveTriStateDistinguishesEmptyFromClosed) {
  Channel<int> ch;
  int out = 0;
  EXPECT_EQ(ch.try_receive(out), RecvStatus::kEmpty);  // open, nothing yet
  ch.send(3);
  ch.close();
  EXPECT_EQ(ch.try_receive(out), RecvStatus::kValue);  // drains despite close
  EXPECT_EQ(out, 3);
  EXPECT_EQ(ch.try_receive(out), RecvStatus::kClosed);  // closed AND drained
  // The optional form conflates the last two — documented behaviour.
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(Channel, MoveOnlyPayload) {
  Channel<std::unique_ptr<int>> ch;
  ch.send(std::make_unique<int>(9));
  auto v = ch.receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 9);
}

TEST(Channel, MpmcAllItemsDeliveredExactlyOnce) {
  Channel<int> ch(64);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.send(p * kPerProducer + i);
    });

  std::atomic<long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      while (auto v = ch.receive()) {
        total += *v;
        ++count;
      }
    });

  for (auto& t : producers) t.join();
  ch.close();
  for (auto& t : consumers) t.join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), static_cast<long>(n) * (n - 1) / 2);
}

// Property sweep over capacities: conservation under concurrency.
class ChannelCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelCapacitySweep, NoLossNoDuplication) {
  Channel<int> ch(GetParam());
  constexpr int kItems = 3000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ch.send(i);
    ch.close();
  });
  std::vector<char> seen(kItems, 0);
  int received = 0;
  while (auto v = ch.receive()) {
    ASSERT_GE(*v, 0);
    ASSERT_LT(*v, kItems);
    EXPECT_EQ(seen[*v], 0);
    seen[*v] = 1;
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kItems);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ChannelCapacitySweep,
                         ::testing::Values(0u, 1u, 2u, 16u, 1024u));

}  // namespace
}  // namespace impress::common
