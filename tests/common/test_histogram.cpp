#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace impress::common {
namespace {

TEST(Histogram, ConstructionValidates) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowCounted) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0) + h.count(1), 0u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, AddAllFromSpan) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> xs{0.5, 1.5, 1.6, 3.9};
  h.add_all(xs);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, RenderShowsBarsAndCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const auto out = h.render(10, "s");
  EXPECT_NE(out.find("##########"), std::string::npos);  // fullest bin
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("s |"), std::string::npos);
}

TEST(Histogram, RenderEmptyDoesNotDivideByZero) {
  const Histogram h(0.0, 1.0, 3);
  const auto out = h.render();
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace impress::common
