#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace impress::common {
namespace {

TEST(Histogram, ConstructionValidates) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowCounted) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0) + h.count(1), 0u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, AddAllFromSpan) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> xs{0.5, 1.5, 1.6, 3.9};
  h.add_all(xs);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, RenderShowsBarsAndCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const auto out = h.render(10, "s");
  EXPECT_NE(out.find("##########"), std::string::npos);  // fullest bin
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("s |"), std::string::npos);
}

TEST(Histogram, RenderEmptyDoesNotDivideByZero) {
  const Histogram h(0.0, 1.0, 3);
  const auto out = h.render();
  EXPECT_FALSE(out.empty());
}

// ---------------------------------------------------------------------------
// HdrHistogram: log-linear latency recorder.

// Exact quantile on a sorted sample, matching the documented contract:
// sorted[ceil(q*n) - 1].
std::uint64_t exact_quantile(const std::vector<std::uint64_t>& sorted,
                             double q) {
  if (sorted.empty()) return 0;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TEST(HdrHistogram, EmptyIsZeroEverywhere) {
  HdrHistogram h(7);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(0.999), 0u);
}

TEST(HdrHistogram, SmallValuesAreExact) {
  // Values below 2^p land in width-1 linear buckets: quantiles are exact.
  HdrHistogram h(7);
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 99u);
  EXPECT_EQ(h.quantile(0.5), 49u);
  EXPECT_EQ(h.quantile(1.0), 99u);
}

TEST(HdrHistogram, RecordNWeightsCounts) {
  HdrHistogram h(7);
  h.record_n(10, 99);
  h.record_n(1000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.quantile(0.5), 10u);
  EXPECT_GE(h.quantile(0.999), 1000u - 1000u / 128u);
}

TEST(HdrHistogram, QuantilesAreMonotone) {
  common::Rng rng(0x48445221);
  HdrHistogram h(7);
  for (int i = 0; i < 20000; ++i) {
    h.record(static_cast<std::uint64_t>(rng.exponential(5e6)));
  }
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

// The core property: for seeded samples spanning many decades, every
// quantile is an upper bound for the exact sorted-sample quantile and
// within the documented 2^-p relative error of it.
TEST(HdrHistogram, QuantileWithinRelativeErrorOfSortedReference) {
  constexpr unsigned kPrecision = 7;
  const double rel = 1.0 / static_cast<double>(1u << kPrecision);
  common::Rng root(0x484452484953);
  const double means[] = {100.0, 1e4, 1e7, 1e10};  // ns-ish scales
  int dist = 0;
  for (const double mean : means) {
    common::Rng rng = root.fork(static_cast<std::uint64_t>(dist++));
    HdrHistogram h(kPrecision);
    std::vector<std::uint64_t> ref;
    ref.reserve(30000);
    for (int i = 0; i < 30000; ++i) {
      const double x = (i % 3 == 0) ? rng.lognormal_mean(mean, 0.8)
                                    : rng.exponential(mean);
      const auto v = static_cast<std::uint64_t>(x);
      h.record(v);
      ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    ASSERT_EQ(h.count(), ref.size());
    EXPECT_EQ(h.max(), ref.back());
    EXPECT_EQ(h.min(), ref.front());
    for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999,
                           0.9999, 1.0}) {
      const std::uint64_t exact = exact_quantile(ref, q);
      const std::uint64_t got = h.quantile(q);
      EXPECT_GE(got, exact) << "mean=" << mean << " q=" << q;
      const double bound =
          static_cast<double>(exact) * (1.0 + rel) + 1.0;
      EXPECT_LE(static_cast<double>(got), bound)
          << "mean=" << mean << " q=" << q;
    }
  }
}

TEST(HdrHistogram, MeanMatchesReference) {
  common::Rng rng(0x4d45414e);
  HdrHistogram h(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.exponential(7.5e5));
    h.record(v);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(h.mean(), sum / 10000.0, 1e-6 * sum / 10000.0);
}

TEST(HdrHistogram, MergeEqualsCombinedRecording) {
  common::Rng rng(0x4d4552);
  HdrHistogram a(7);
  HdrHistogram b(7);
  HdrHistogram combined(7);
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.exponential(3e4));
    ((i % 2 == 0) ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(HdrHistogram, MergeRejectsMismatchedPrecision) {
  HdrHistogram a(7);
  HdrHistogram b(8);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(HdrHistogram, ResetClears) {
  HdrHistogram h(7);
  h.record(123456);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  h.record(7);
  EXPECT_EQ(h.quantile(1.0), 7u);
}

}  // namespace
}  // namespace impress::common
