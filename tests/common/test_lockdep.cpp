// Lockdep subsystem tests.
//
// The violation-provoking tests only exist in IMPRESS_LOCKDEP builds (run
// them via the `lockdep` preset); in default builds this binary proves the
// off-gate contract instead: TrackedMutex is layout-identical to
// std::mutex and the report surface collapses to constants.

#include "common/lockdep.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>

#include "common/channel.hpp"

namespace lockdep = impress::common::lockdep;
using impress::common::Channel;
using impress::common::MultiGuard;
using impress::common::TrackedMutex;
using impress::common::TrackedRecursiveMutex;

#if !IMPRESS_LOCKDEP_COMPILED_IN

// Zero-cost when off: no extra members, no registry, nothing to report.
static_assert(sizeof(TrackedMutex) == sizeof(std::mutex),
              "gate-off TrackedMutex must add no state over std::mutex");
static_assert(sizeof(TrackedRecursiveMutex) == sizeof(std::recursive_mutex),
              "gate-off TrackedRecursiveMutex must add no state");
static_assert(!lockdep::kCompiledIn);

TEST(LockdepGateOff, ReportSurfaceIsInert) {
  TrackedMutex m("test::m");
  {
    std::scoped_lock lock(m);
  }
  lockdep::check_blocking("anything");
  EXPECT_TRUE(lockdep::report().empty());
  EXPECT_EQ(lockdep::violation_count(), 0u);
  lockdep::clear();  // must be callable and a no-op
}

#else  // IMPRESS_LOCKDEP_COMPILED_IN

static_assert(lockdep::kCompiledIn);

namespace {

/// Every test starts from a clean graph with process-abort disabled (the
/// lockdep ctest preset exports IMPRESS_LOCKDEP_ABORT=1 so *production*
/// suites fail loudly; these tests provoke violations on purpose).
class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::set_abort_on_violation(false);
    lockdep::clear();
  }
  void TearDown() override { lockdep::clear(); }
};

bool any_contains(const std::vector<std::string>& lines,
                  const std::string& needle) {
  for (const auto& l : lines)
    if (l.find(needle) != std::string::npos) return true;
  return false;
}

}  // namespace

TEST_F(LockdepTest, SeededAbbaCycleReportedWithoutDeadlock) {
  TrackedMutex a("abba::A");
  TrackedMutex b("abba::B");
  // Two threads exercise the inconsistent order *sequentially* — the
  // interleaving that would actually deadlock never happens, yet the
  // cycle must still be reported from the order graph alone.
  std::thread t1([&] {
    std::lock_guard la(a);
    std::lock_guard lb(b);  // records A -> B
  });
  t1.join();
  std::thread t2([&] {
    std::lock_guard lb(b);
    std::lock_guard la(a);  // records B -> A: closes the cycle
  });
  t2.join();
  const auto lines = lockdep::report();
  ASSERT_GE(lines.size(), 1u);
  EXPECT_TRUE(any_contains(lines, "lock-order cycle"));
  EXPECT_TRUE(any_contains(lines, "abba::A"));
  EXPECT_TRUE(any_contains(lines, "abba::B"));
}

TEST_F(LockdepTest, TransitiveCycleThroughThirdClass) {
  TrackedMutex a("chain::A");
  TrackedMutex b("chain::B");
  TrackedMutex c("chain::C");
  {
    std::lock_guard la(a);
    std::lock_guard lb(b);  // A -> B
  }
  {
    std::lock_guard lb(b);
    std::lock_guard lc(c);  // B -> C
  }
  {
    std::lock_guard lc(c);
    std::lock_guard la(a);  // C -> A: cycle via B
  }
  EXPECT_TRUE(any_contains(lockdep::report(), "lock-order cycle"));
}

TEST_F(LockdepTest, ConsistentOrderIsSilent) {
  TrackedMutex a("ordered::A");
  TrackedMutex b("ordered::B");
  for (int i = 0; i < 3; ++i) {
    std::lock_guard la(a);
    std::lock_guard lb(b);
  }
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

TEST_F(LockdepTest, BlockingAssertionFiresUnderHeldLock) {
  TrackedMutex m("blocking::M");
  std::lock_guard lock(m);
  lockdep::check_blocking("TestOp");
  const auto lines = lockdep::report();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("blocking call TestOp"), std::string::npos);
  EXPECT_NE(lines[0].find("blocking::M"), std::string::npos);
}

TEST_F(LockdepTest, BlockingAssertionSilentWhenNothingHeld) {
  lockdep::check_blocking("TestOp");
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

TEST_F(LockdepTest, ChannelReceiveUnderForeignLockIsFlagged) {
  TrackedMutex m("blocking::Holder");
  Channel<int> ch;
  ch.close();  // receive returns immediately — only the assertion fires
  std::lock_guard lock(m);
  EXPECT_EQ(ch.receive(), std::nullopt);
  EXPECT_TRUE(any_contains(lockdep::report(), "blocking::Holder"));
}

TEST_F(LockdepTest, ChannelReceiveAloneIsSilent) {
  Channel<int> ch;
  ASSERT_TRUE(ch.try_send(7));
  EXPECT_EQ(ch.receive(), 7);
  ch.close();
  EXPECT_EQ(ch.receive(), std::nullopt);
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

TEST_F(LockdepTest, RecursiveRelockRecordsNothing) {
  TrackedRecursiveMutex r("recursive::R");
  std::lock_guard outer(r);
  std::lock_guard inner(r);
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

TEST_F(LockdepTest, SameClassNestingOnDistinctInstancesIsFlagged) {
  TrackedMutex a("sameclass::M");
  TrackedMutex b("sameclass::M");
  std::lock_guard la(a);
  std::lock_guard lb(b);
  EXPECT_TRUE(any_contains(lockdep::report(), "same-class nesting"));
}

TEST_F(LockdepTest, MultiGuardAllowsSameClassPairs) {
  TrackedMutex a("multiguard::M");
  TrackedMutex b("multiguard::M");
  {
    MultiGuard g(a, b);
  }
  {
    MultiGuard g(b, a);  // either argument order: locks by address
  }
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

TEST_F(LockdepTest, ScopedLockRotationHasNoFalseCycle) {
  TrackedMutex a("scoped::A");
  TrackedMutex b("scoped::B");
  {
    std::scoped_lock l(a, b);
  }
  {
    std::scoped_lock l(b, a);  // deadlock-avoidance handles the order
  }
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

TEST_F(LockdepTest, CvWaitDropsTheWaitedMutexFromHeldSet) {
  // Waiting on a CondVar releases its own mutex: no blocking violation,
  // and locks taken by the notifying thread gain no edge from it.
  TrackedMutex m("cv::M");
  impress::common::CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return ready; });
  });
  {
    std::unique_lock lock(m);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

TEST_F(LockdepTest, ViolationsAreDeduplicated) {
  TrackedMutex m("dedup::M");
  for (int i = 0; i < 5; ++i) {
    std::lock_guard lock(m);
    lockdep::check_blocking("RepeatOp");
  }
  EXPECT_EQ(lockdep::violation_count(), 1u);
}

TEST_F(LockdepTest, ClearResetsViolationsAndGraph) {
  TrackedMutex a("clear::A");
  TrackedMutex b("clear::B");
  {
    std::lock_guard la(a);
    std::lock_guard lb(b);
  }
  {
    std::lock_guard lb(b);
    std::lock_guard la(a);
  }
  ASSERT_GE(lockdep::violation_count(), 1u);
  lockdep::clear();
  EXPECT_EQ(lockdep::violation_count(), 0u);
  // The consistent order alone does not re-trigger after the reset.
  {
    std::lock_guard la(a);
    std::lock_guard lb(b);
  }
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

#endif  // IMPRESS_LOCKDEP_COMPILED_IN
