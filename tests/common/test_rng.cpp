#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/stats.hpp"

namespace impress::common {
namespace {

TEST(Splitmix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(12345), splitmix64(12345));
}

TEST(Splitmix64, DistinctInputsGiveDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(splitmix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(StableHash, IsStableAndCaseSensitive) {
  EXPECT_EQ(stable_hash("NHERF3"), stable_hash("NHERF3"));
  EXPECT_NE(stable_hash("NHERF3"), stable_hash("nherf3"));
  EXPECT_NE(stable_hash(""), stable_hash(" "));
}

TEST(StableHash, KnownValueDoesNotDrift) {
  // Locks the cross-platform contract: dataset seeds derived from names
  // must never change between releases.
  EXPECT_EQ(stable_hash("IMPRESS"), stable_hash("IMPRESS"));
  const auto h = stable_hash("IMPRESS");
  EXPECT_NE(h, 0u);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 1), b(7, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsConstAndReproducible) {
  const Rng parent(42);
  Rng c1 = parent.fork("alpha");
  Rng c2 = parent.fork("alpha");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, ForkDistinctTagsIndependent) {
  const Rng parent(42);
  Rng c1 = parent.fork("alpha");
  Rng c2 = parent.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1() == c2()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(4);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(7);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalScaledMomentsMatch) {
  Rng rng(8);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal(10.0, 3.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.1);
  EXPECT_NEAR(stddev(xs), 3.0, 0.1);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyMatchesP) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(11);
  const std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalDegenerateInput) {
  Rng rng(12);
  const std::vector<double> zero{0.0, 0.0, 0.0};
  EXPECT_EQ(rng.categorical(zero), 2u);  // documented fallback
  const std::vector<double> neg{-1.0, -2.0};
  EXPECT_EQ(rng.categorical(neg), 1u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.exponential(4.0);
  EXPECT_NEAR(mean(xs), 4.0, 0.1);
  EXPECT_GE(min_of(xs), 0.0);
}

TEST(Rng, LognormalMeanIsTargetMean) {
  Rng rng(14);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.lognormal_mean(90.0, 0.3);
  EXPECT_NEAR(mean(xs), 90.0, 2.0);
  EXPECT_GT(min_of(xs), 0.0);
}

TEST(Rng, LognormalNonPositiveMeanIsZero) {
  Rng rng(15);
  EXPECT_EQ(rng.lognormal_mean(0.0, 0.3), 0.0);
  EXPECT_EQ(rng.lognormal_mean(-5.0, 0.3), 0.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(16);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);
}

// Property sweep: distribution invariants hold across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformBoundsAndBelowBounds) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST_P(RngSeedSweep, ForkChainsStayReproducible) {
  const Rng root(GetParam());
  Rng a = root.fork("x").fork(99u);
  Rng b = root.fork("x").fork(99u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0u, 1u, 2u, 42u, 1337u, 99999u,
                                           0xffffffffffffffffULL));

TEST(RngState, SaveRestoreResumesExactStream) {
  Rng a(42);
  for (int i = 0; i < 17; ++i) (void)a();
  const Rng::State mid = a.save_state();
  std::vector<std::uint32_t> rest;
  for (int i = 0; i < 50; ++i) rest.push_back(a());

  Rng b = Rng::from_state(mid);
  for (std::uint32_t expected : rest) EXPECT_EQ(b(), expected);
}

TEST(RngState, CachedNormalSurvivesRoundTrip) {
  // normal() draws in pairs and caches the second value; a checkpoint cut
  // between the two must preserve the cache or the stream shifts by one.
  Rng a(7);
  (void)a.normal();
  const Rng::State mid = a.save_state();
  Rng b = Rng::from_state(mid);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.normal(), b.normal());
  EXPECT_EQ(a.save_state(), b.save_state());
}

TEST(RngState, RestoreStateOverwritesInPlace) {
  Rng a(1), c(2);
  (void)a();
  const auto snap = a.save_state();
  for (int i = 0; i < 5; ++i) (void)a();
  c.restore_state(snap);
  Rng d = Rng::from_state(snap);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c(), d());
}

}  // namespace
}  // namespace impress::common
