#include "common/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace impress::common {
namespace {

struct Node {
  Node* next = nullptr;
  std::uint64_t value = 0;
  std::uint32_t producer = 0;
};

TEST(SlabPool, AcquireReleaseRecycles) {
  SlabPool<Node> pool(4);
  Node* a = pool.acquire();
  ASSERT_NE(a, nullptr);
  a->value = 42;
  pool.release(a);
  // The freelist is LIFO: the recycled object comes back first, fields
  // intact (acquire() does not re-construct).
  Node* b = pool.acquire();
  EXPECT_EQ(b, a);
  EXPECT_EQ(b->value, 42u);
  pool.release(b);
}

TEST(SlabPool, StatsTrackCapacityInUseHighWater) {
  SlabPool<Node> pool(4);
  std::vector<Node*> held;
  for (int i = 0; i < 6; ++i) held.push_back(pool.acquire());
  auto s = pool.stats();
  EXPECT_EQ(s.capacity, 8u);  // two slabs of 4
  EXPECT_EQ(s.in_use, 6u);
  EXPECT_EQ(s.high_water, 6u);
  EXPECT_EQ(s.slabs, 2u);
  for (Node* n : held) pool.release(n);
  s = pool.stats();
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_EQ(s.high_water, 6u);  // high water is sticky
}

TEST(SlabPool, ReservePreCarves) {
  SlabPool<Node> pool(8);
  pool.reserve(20);
  auto s = pool.stats();
  EXPECT_GE(s.capacity, 20u);
  EXPECT_EQ(s.in_use, 0u);
}

TEST(SlabPool, FixedPoolReturnsNullptrOnExhaustion) {
  SlabPool<Node> pool(4, /*allow_growth=*/false);
  pool.reserve(4);
  std::vector<Node*> held;
  for (int i = 0; i < 4; ++i) {
    Node* n = pool.acquire();
    ASSERT_NE(n, nullptr);
    held.push_back(n);
  }
  EXPECT_EQ(pool.acquire(), nullptr);
  EXPECT_EQ(pool.stats().capacity, 4u);  // did not grow
  pool.release(held.back());
  held.pop_back();
  EXPECT_NE(pool.acquire(), nullptr);  // released slot is reusable
  for (Node* n : held) pool.release(n);
}

TEST(SlabPool, FixedPoolWithoutReserveIsEmpty) {
  SlabPool<Node> pool(4, /*allow_growth=*/false);
  EXPECT_EQ(pool.acquire(), nullptr);
}

TEST(SlabPool, ObjectsAreDistinct) {
  SlabPool<Node> pool(16);
  std::set<Node*> seen;
  for (int i = 0; i < 64; ++i) seen.insert(pool.acquire());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(MpscInbox, DrainReturnsFifoOrder) {
  SlabPool<Node> pool(8);
  MpscInbox<Node> inbox;
  EXPECT_TRUE(inbox.empty());
  for (std::uint64_t i = 0; i < 5; ++i) {
    Node* n = pool.acquire();
    n->value = i;
    inbox.push(n);
  }
  EXPECT_FALSE(inbox.empty());
  Node* head = inbox.drain();
  EXPECT_TRUE(inbox.empty());
  std::uint64_t expect = 0;
  for (Node* n = head; n != nullptr; n = n->next) {
    EXPECT_EQ(n->value, expect++);
  }
  EXPECT_EQ(expect, 5u);
}

TEST(MpscInbox, DrainEmptyIsNull) {
  MpscInbox<Node> inbox;
  EXPECT_EQ(inbox.drain(), nullptr);
}

TEST(MpscInbox, InterleavedPushDrainLosesNothing) {
  SlabPool<Node> pool(64);
  MpscInbox<Node> inbox;
  std::uint64_t seen = 0;
  std::uint64_t pushed = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < round; ++i) {
      Node* n = pool.acquire();
      n->value = pushed++;
      inbox.push(n);
    }
    for (Node* n = inbox.drain(); n != nullptr;) {
      Node* next = n->next;
      EXPECT_EQ(n->value, seen++);  // global FIFO across rounds
      pool.release(n);
      n = next;
    }
  }
  EXPECT_EQ(seen, pushed);
}

// Multi-producer: each producer's pushes must appear in that producer's
// order, and nothing may be lost or duplicated.
TEST(MpscInbox, ConcurrentProducersPreservePerProducerOrder) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  SlabPool<Node> pool(1024);
  pool.reserve(kProducers * kPerProducer);
  MpscInbox<Node> inbox;

  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&pool, &inbox, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        Node* n = pool.acquire();
        n->producer = p;
        n->value = i;
        inbox.push(n);
      }
    });
  }

  std::uint64_t next_expected[kProducers] = {};
  std::uint64_t total = 0;
  while (total < kProducers * kPerProducer) {
    for (Node* n = inbox.drain(); n != nullptr; n = n->next) {
      ASSERT_LT(n->producer, kProducers);
      EXPECT_EQ(n->value, next_expected[n->producer]);
      ++next_expected[n->producer];
      ++total;
    }
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(inbox.empty());
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

}  // namespace
}  // namespace impress::common
