#include "common/uid.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace impress::common {
namespace {

TEST(UidGenerator, SequentialPerNamespace) {
  UidGenerator gen;
  EXPECT_EQ(gen.next("task"), "task.000000");
  EXPECT_EQ(gen.next("task"), "task.000001");
  EXPECT_EQ(gen.next("pilot"), "pilot.000000");
  EXPECT_EQ(gen.next("task"), "task.000002");
}

TEST(UidGenerator, CountTracksIssued) {
  UidGenerator gen;
  EXPECT_EQ(gen.count("task"), 0u);
  (void)gen.next("task");
  (void)gen.next("task");
  EXPECT_EQ(gen.count("task"), 2u);
  EXPECT_EQ(gen.count("other"), 0u);
}

TEST(UidGenerator, IndependentInstances) {
  UidGenerator a, b;
  EXPECT_EQ(a.next("t"), "t.000000");
  EXPECT_EQ(b.next("t"), "t.000000");
}

TEST(UidGenerator, ThreadSafeUniqueness) {
  UidGenerator gen;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::string>> results(4);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) results[t].push_back(gen.next("task"));
    });
  for (auto& t : threads) t.join();
  std::set<std::string> all;
  for (const auto& r : results) all.insert(r.begin(), r.end());
  EXPECT_EQ(all.size(), 2000u);
  EXPECT_EQ(gen.count("task"), 2000u);
}

TEST(UidNamespace, ExtractsPrefix) {
  EXPECT_EQ(uid_namespace("task.000042"), "task");
  EXPECT_EQ(uid_namespace("a.b.000001"), "a.b");
  EXPECT_EQ(uid_namespace("nodot"), "nodot");
}

}  // namespace
}  // namespace impress::common
