#include "common/table.hpp"

#include <gtest/gtest.h>

namespace impress::common {
namespace {

TEST(Table, RendersHeaderAndSeparator) {
  Table t({"name", "value"});
  const auto out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, PadsColumnsToWidestCell) {
  Table t({"a"});
  t.add_row({"longcell"});
  const auto out = t.render();
  EXPECT_NE(out.find("| longcell |"), std::string::npos);
  EXPECT_NE(out.find("| a        |"), std::string::npos);
}

TEST(Table, RightAlignment) {
  Table t({"n"});
  t.set_align(0, Table::Align::kRight);
  t.add_row({"5"});
  t.add_row({"12345"});
  const auto out = t.render();
  EXPECT_NE(out.find("|     5 |"), std::string::npos);
  // Right-aligned columns get the markdown ':' marker.
  EXPECT_NE(out.find("-:|"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  const auto out = t.render();
  // Three pipes worth of columns on the data row.
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(Table, LongRowsExtendColumns) {
  Table t({"a"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Table, RowAndColumnCounts) {
  Table t({"x", "y"});
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, LineCountMatchesRows) {
  Table t({"h"});
  t.add_row({"r1"});
  t.add_row({"r2"});
  const auto out = t.render();
  const auto lines = static_cast<std::size_t>(
      std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(lines, 4u);  // header + separator + 2 rows
}

}  // namespace
}  // namespace impress::common
