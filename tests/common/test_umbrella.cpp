// The umbrella header must compile standalone and expose the whole API.

#include "impress.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryModuleReachable) {
  // One symbol from each namespace proves the include set is complete.
  EXPECT_EQ(impress::common::stable_hash("x"), impress::common::stable_hash("x"));
  impress::sim::Engine engine;
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(impress::hpc::amarel_node().cores, 28u);
  EXPECT_EQ(impress::rp::to_string(impress::rp::TaskState::kDone), "DONE");
  EXPECT_EQ(impress::protein::alpha_synuclein().size(), 140u);
  EXPECT_EQ(impress::mpnn::SamplerConfig{}.num_sequences, 10u);
  EXPECT_EQ(impress::fold::PredictorConfig{}.num_models, 5u);
  EXPECT_EQ(impress::core::calibration::kCycles, 4);
}

}  // namespace
