#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace impress::common {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, SimpleAverage) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stddev, FewerThanTwoIsZero) {
  EXPECT_EQ(stddev({}), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(Stddev, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev (n-1): sqrt(32/7).
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4);
}

TEST(Stddev, ConstantSampleIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Median, OddCount) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Median, EvenCountAveragesMiddle) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Median, DoesNotMutateInput) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  (void)median(xs);
  EXPECT_EQ(xs[0], 3.0);
  EXPECT_EQ(xs[1], 1.0);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200.0), 3.0);
}

TEST(MinMax, EmptyIsZero) {
  EXPECT_EQ(min_of({}), 0.0);
  EXPECT_EQ(max_of({}), 0.0);
}

TEST(MinMax, FindsExtremes) {
  const std::vector<double> xs{3.0, -2.0, 7.0, 0.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -2.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Summarize, ConsistentFields) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(NetDeltaPct, Basics) {
  EXPECT_DOUBLE_EQ(net_delta_pct(10.0, 15.0), 50.0);
  EXPECT_DOUBLE_EQ(net_delta_pct(10.0, 5.0), -50.0);
  EXPECT_DOUBLE_EQ(net_delta_pct(-10.0, -5.0), 50.0);
  EXPECT_DOUBLE_EQ(net_delta_pct(0.0, 5.0), 0.0);  // documented guard
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsGiveZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);  // constant side
  const std::vector<double> shorter{1.0};
  EXPECT_EQ(pearson(shorter, shorter), 0.0);  // n < 2
  EXPECT_EQ(pearson(xs, shorter), 0.0);       // length mismatch
}

TEST(BootstrapMedianCi, ContainsTheMedian) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(static_cast<double>(i));
  const auto ci = bootstrap_median_ci(xs, 0.95, 500, 1);
  const double m = median(xs);
  EXPECT_LE(ci.lo, m);
  EXPECT_GE(ci.hi, m);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(BootstrapMedianCi, TinySampleCollapses) {
  const std::vector<double> xs{7.0};
  const auto ci = bootstrap_median_ci(xs);
  EXPECT_EQ(ci.lo, 7.0);
  EXPECT_EQ(ci.hi, 7.0);
}

TEST(BootstrapMedianCi, DeterministicInSeed) {
  std::vector<double> xs{1, 5, 3, 8, 2, 9, 4, 7, 6, 0};
  const auto a = bootstrap_median_ci(xs, 0.9, 300, 77);
  const auto b = bootstrap_median_ci(xs, 0.9, 300, 77);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(FormatFixed, RendersDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

// Property: percentile is monotone in p for any sample.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  std::vector<double> xs;
  // Deterministic pseudo-sample from the parameter.
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 1u;
  for (int i = 0; i < 37; ++i) {
    state = state * 1664525u + 1013904223u;
    xs.push_back(static_cast<double>(state % 1000) / 10.0);
  }
  double prev = percentile(xs, 0.0);
  for (int p = 5; p <= 100; p += 5) {
    const double cur = percentile(xs, static_cast<double>(p));
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Samples, PercentileMonotone,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace impress::common
