#include "common/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace impress::common {
namespace {

TEST(BarChart, RendersTitleSeriesAndValues) {
  BarChart chart("pTM", "0-1");
  chart.add_group({"iter 1",
                   {{"CONT-V", 0.5, 0.05}, {"IM-RP", 0.8, 0.02}}});
  const auto out = chart.render(20);
  EXPECT_NE(out.find("## pTM [0-1]"), std::string::npos);
  EXPECT_NE(out.find("CONT-V"), std::string::npos);
  EXPECT_NE(out.find("IM-RP"), std::string::npos);
  EXPECT_NE(out.find("0.80"), std::string::npos);
  EXPECT_NE(out.find("+/- 0.05"), std::string::npos);
}

TEST(BarChart, LargestValueSpansFullWidth) {
  BarChart chart("t", "");
  chart.add_group({"g", {{"a", 10.0, 0.0}, {"b", 5.0, 0.0}}});
  const auto out = chart.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####     "), std::string::npos);
}

TEST(BarChart, ZeroErrorHidesAnnotation) {
  BarChart chart("t", "");
  chart.add_group({"g", {{"a", 1.0, 0.0}}});
  EXPECT_EQ(chart.render().find("+/-"), std::string::npos);
}

TEST(BarChart, AllZeroValuesDoNotCrash) {
  BarChart chart("t", "");
  chart.add_group({"g", {{"a", 0.0, 0.0}}});
  const auto out = chart.render(10);
  EXPECT_NE(out.find("0.00"), std::string::npos);
}

TEST(TimelineChart, RendersRowsAxisAndAverages) {
  TimelineChart chart("util", 27.7);
  chart.add_row({"CPU", {0.0, 0.5, 1.0, 0.5}});
  chart.add_row({"GPU", {0.0, 0.0, 0.1, 0.0}});
  const auto out = chart.render();
  EXPECT_NE(out.find("## util"), std::string::npos);
  EXPECT_NE(out.find("CPU"), std::string::npos);
  EXPECT_NE(out.find("GPU"), std::string::npos);
  EXPECT_NE(out.find("avg 50.0%"), std::string::npos);
  EXPECT_NE(out.find("27.7h"), std::string::npos);
}

TEST(TimelineChart, IntensityRampUsesExpectedCharacters) {
  TimelineChart chart("t", 1.0);
  chart.add_row({"r", {0.0, 0.95, 1.0}});
  const auto out = chart.render();
  // 0 -> space, >=0.9 -> '@'.
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(TimelineChart, ClampsOutOfRangeValues) {
  TimelineChart chart("t", 1.0);
  chart.add_row({"r", {-0.5, 1.7}});
  const auto out = chart.render();
  EXPECT_FALSE(out.empty());  // no crash; avg clamp is rendering-side only
}

}  // namespace
}  // namespace impress::common
