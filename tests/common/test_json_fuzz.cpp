// Property/fuzz tests for common::Json: randomly generated documents must
// survive writer -> parser round trips bit-for-bit, and malformed or
// hostile input must raise std::invalid_argument — never crash, hang, or
// blow the stack (the parser caps container nesting at 512).

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>

#include "common/json.hpp"

namespace impress::common {
namespace {

/// Random document generator. Numbers are restricted to values our writer
/// reproduces exactly (%.17g round-trips every finite double, but NaN/inf
/// dump as null, so only finite values are generated).
Json random_json(std::mt19937_64& rng, int depth) {
  const int kind = static_cast<int>(rng() % (depth > 0 ? 6 : 4));
  switch (kind) {
    case 0: return Json(nullptr);
    case 1: return Json(rng() % 2 == 0);
    case 2: {
      switch (rng() % 4) {
        case 0: return Json(static_cast<double>(rng() % 1'000'000));
        case 1: return Json(-static_cast<double>(rng() % 1'000'000));
        case 2:
          return Json(std::ldexp(static_cast<double>(rng() % (1u << 20)),
                                 static_cast<int>(rng() % 64) - 32));
        default: return Json(0.0);
      }
    }
    case 3: {
      // Strings exercising every escape class + UTF-8 passthrough.
      static const std::string alphabet =
          "ab\"\\\n\r\t\b\f/ \x01\x1f{}[]:,\xc3\xa9";
      std::string s;
      const std::size_t len = rng() % 12;
      for (std::size_t i = 0; i < len; ++i)
        s += alphabet[rng() % alphabet.size()];
      return Json(std::move(s));
    }
    case 4: {
      Json::Array arr;
      const std::size_t len = rng() % 5;
      for (std::size_t i = 0; i < len; ++i)
        arr.push_back(random_json(rng, depth - 1));
      return Json(std::move(arr));
    }
    default: {
      Json::Object obj;
      const std::size_t len = rng() % 5;
      for (std::size_t i = 0; i < len; ++i)
        obj.emplace("k" + std::to_string(rng() % 8),
                    random_json(rng, depth - 1));
      return Json(std::move(obj));
    }
  }
}

TEST(JsonFuzz, RandomDocumentsRoundTripCompact) {
  std::mt19937_64 rng(20260805);
  for (int i = 0; i < 300; ++i) {
    const Json doc = random_json(rng, 5);
    const Json back = Json::parse(doc.dump());
    EXPECT_EQ(back, doc) << doc.dump();
  }
}

TEST(JsonFuzz, RandomDocumentsRoundTripIndented) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 150; ++i) {
    const Json doc = random_json(rng, 4);
    EXPECT_EQ(Json::parse(doc.dump(2)), doc);
    EXPECT_EQ(Json::parse(doc.dump(7)), doc);
  }
}

TEST(JsonFuzz, MalformedInputsThrowInsteadOfCrashing) {
  const char* cases[] = {
      "",          "   ",        "{",          "[",           "\"",
      "{]",        "[}",         "tru",        "falsey",      "nul",
      "01x",       "-",          "+1",         "1.2.3",       "\"\\q\"",
      "\"\\u12\"", "\"\\u12zx\"", "{\"a\"}",   "{\"a\":}",    "{\"a\":1,}",
      "[1,]",      "[1 2]",      "{1:2}",      "\"unterminated",
      "[1],",      "42 43",      "{\"a\":1}}", "\x80\x80",    "nan",
      "inf",       "--3",        "1e",         "[,1]",        "{,}",
  };
  for (const char* text : cases)
    EXPECT_THROW((void)Json::parse(text), std::invalid_argument) << text;
}

TEST(JsonFuzz, HostileNestingErrorsInsteadOfOverflowingTheStack) {
  // 200k opening brackets previously recursed 200k frames deep.
  const std::string bombs[] = {
      std::string(200'000, '['),
      std::string(200'000, '[') + "1" + std::string(200'000, ']'),
      [] {
        std::string s;
        for (int i = 0; i < 200'000; ++i) s += "{\"a\":";
        return s;
      }(),
  };
  for (const auto& bomb : bombs)
    EXPECT_THROW((void)Json::parse(bomb), std::invalid_argument);
}

TEST(JsonFuzz, NestingJustBelowTheCapStillParses) {
  constexpr int kDepth = 500;  // cap is 512
  std::string text = std::string(kDepth, '[') + "7" +
                     std::string(kDepth, ']');
  const Json doc = Json::parse(text);
  const Json* v = &doc;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(v->is_array());
    ASSERT_EQ(v->size(), 1u);
    v = &v->as_array()[0];
  }
  EXPECT_DOUBLE_EQ(v->as_number(), 7.0);
  // ...and its dump round-trips through the same cap.
  EXPECT_EQ(Json::parse(doc.dump()), doc);
}

TEST(JsonFuzz, RandomByteNoiseNeverCrashesTheParser) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    std::string noise;
    const std::size_t len = rng() % 64;
    for (std::size_t j = 0; j < len; ++j)
      noise += static_cast<char>(rng() % 256);
    try {
      (void)Json::parse(noise);  // parsing may legitimately succeed
    } catch (const std::invalid_argument&) {
      // expected for most inputs
    }
  }
}

TEST(JsonFuzz, TruncationsOfAValidDocumentAllThrow) {
  const std::string valid =
      R"({"name":"x","vals":[1,2.5,-3e4,true,null],"nested":{"s":"\u00e9"}})";
  ASSERT_NO_THROW((void)Json::parse(valid));
  for (std::size_t cut = 0; cut < valid.size(); ++cut)
    EXPECT_THROW((void)Json::parse(valid.substr(0, cut)),
                 std::invalid_argument)
        << "prefix length " << cut;
}

}  // namespace
}  // namespace impress::common
