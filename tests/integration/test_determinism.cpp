// Determinism: the entire evaluation — tasks, timing, science — is a pure
// function of the seed in simulated mode. This is what makes every figure
// in EXPERIMENTS.md regenerable bit-for-bit.

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "core/session_dump.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

std::vector<protein::DesignTarget> targets2() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("DET-A", 86, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("DET-B", 90, protein::alpha_synuclein().tail(10)));
  return out;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    const auto& ta = a.trajectories[i];
    const auto& tb = b.trajectories[i];
    EXPECT_EQ(ta.pipeline_id, tb.pipeline_id);
    EXPECT_EQ(ta.terminated_early, tb.terminated_early);
    ASSERT_EQ(ta.history.size(), tb.history.size());
    for (std::size_t j = 0; j < ta.history.size(); ++j) {
      EXPECT_EQ(ta.history[j].sequence, tb.history[j].sequence);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.plddt, tb.history[j].metrics.plddt);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.ptm, tb.history[j].metrics.ptm);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.ipae, tb.history[j].metrics.ipae);
      EXPECT_DOUBLE_EQ(ta.history[j].true_fitness, tb.history[j].true_fitness);
    }
  }
  EXPECT_DOUBLE_EQ(a.makespan_h, b.makespan_h);
  EXPECT_DOUBLE_EQ(a.utilization.cpu_active, b.utilization.cpu_active);
  EXPECT_DOUBLE_EQ(a.utilization.gpu_active, b.utilization.gpu_active);
  EXPECT_EQ(a.fold_tasks, b.fold_tasks);
  EXPECT_EQ(a.fold_retries, b.fold_retries);
  EXPECT_EQ(a.subpipelines, b.subpipelines);
}

TEST(Determinism, ImRpBitIdenticalAcrossRuns) {
  const auto targets = targets2();
  const auto a = Campaign(im_rp_campaign(42)).run(targets);
  const auto b = Campaign(im_rp_campaign(42)).run(targets);
  expect_identical(a, b);
}

TEST(Determinism, ContVBitIdenticalAcrossRuns) {
  const auto targets = targets2();
  const auto a = Campaign(cont_v_campaign(42)).run(targets);
  const auto b = Campaign(cont_v_campaign(42)).run(targets);
  expect_identical(a, b);
}

TEST(Determinism, IndependentOfOtherCampaignsInProcess) {
  // Running an unrelated campaign in between must not perturb anything —
  // there is no hidden global state.
  const auto targets = targets2();
  const auto a = Campaign(im_rp_campaign(42)).run(targets);
  const auto other_targets = protein::pdz_benchmark(3);
  (void)Campaign(im_rp_campaign(1234)).run(other_targets);
  const auto b = Campaign(im_rp_campaign(42)).run(targets);
  expect_identical(a, b);
}

TEST(Determinism, DatasetsAreStableAcrossProcessRuns) {
  // Locked golden values: if these change, every number in
  // EXPERIMENTS.md silently shifts. Deliberate recalibrations must update
  // this test and the docs together.
  const auto targets = protein::four_pdz_domains();
  EXPECT_EQ(targets[0].name, "NHERF3");
  const auto f0 = targets[0].landscape.fitness(targets[0].start_receptor);
  const auto f0_again =
      protein::four_pdz_domains()[0].landscape.fitness(targets[0].start_receptor);
  EXPECT_DOUBLE_EQ(f0, f0_again);
}

TEST(Determinism, FoldCacheOnOffBitIdentical) {
  // The fold memo cache must be unobservable in the science: a cached
  // campaign replays bit-for-bit as the uncached one (content-derived
  // fold rngs make hit and miss paths compute identical predictions).
  const auto targets = targets2();
  auto cached_cfg = im_rp_campaign(42);
  cached_cfg.enable_fold_cache = true;
  auto uncached_cfg = im_rp_campaign(42);
  uncached_cfg.enable_fold_cache = false;
  const auto cached = Campaign(cached_cfg).run(targets);
  const auto uncached = Campaign(uncached_cfg).run(targets);
  expect_identical(cached, uncached);
  // Every fold task consulted the cache exactly once; the uncached arm
  // never touched one.
  EXPECT_EQ(cached.fold_cache.lookups(), cached.fold_tasks);
  EXPECT_EQ(uncached.fold_cache.lookups(), 0u);
}

TEST(Determinism, SharedFoldCacheHitsOnReplayedWork) {
  // A cache shared across two identical campaigns sees every fold of the
  // second run as a duplicate of the first — it must hit, and hitting
  // must not perturb the replayed science.
  const auto targets = targets2();
  auto shared_cache = std::make_shared<fold::FoldCache>();
  auto cfg = im_rp_campaign(42);
  cfg.coordinator.fold_cache = shared_cache;
  const auto first = Campaign(cfg).run(targets);
  const std::size_t misses_after_first = shared_cache->stats().misses;
  const auto second = Campaign(cfg).run(targets);
  expect_identical(first, second);
  EXPECT_EQ(shared_cache->stats().misses, misses_after_first)
      << "the replay should add no new cache entries";
  EXPECT_GE(shared_cache->stats().hits, first.fold_tasks)
      << "every replayed fold should hit the shared cache";
}

TEST(Determinism, TracingOnOffBitIdentical) {
  // Observability must be a pure observer: switching the tracer on cannot
  // perturb a single result field (spans are recorded strictly after the
  // rng draws they bracket, and never feed back into the run).
  const auto targets = targets2();
  auto traced_cfg = im_rp_campaign(42);
  traced_cfg.session.enable_tracing = true;
  const auto traced = Campaign(traced_cfg).run(targets);
  const auto untraced = Campaign(im_rp_campaign(42)).run(targets);
  expect_identical(traced, untraced);
  EXPECT_FALSE(traced.trace.empty());
  EXPECT_TRUE(untraced.trace.empty());
}

TEST(Determinism, MetricsOnOffBitIdentical) {
  const auto targets = targets2();
  auto metered_cfg = im_rp_campaign(42);
  metered_cfg.session.enable_metrics = true;
  const auto metered = Campaign(metered_cfg).run(targets);
  const auto plain = Campaign(im_rp_campaign(42)).run(targets);
  expect_identical(metered, plain);
  EXPECT_FALSE(metered.metrics.empty());
  // The counters must agree with the independently-kept workload tallies.
  EXPECT_EQ(metered.metrics.counter("impress_stage_fold"),
            metered.fold_tasks);
  EXPECT_EQ(metered.metrics.counter("impress_subpipelines_spawned"),
            metered.subpipelines);
  EXPECT_TRUE(plain.metrics.empty());
}

TEST(Determinism, FullObservabilityOnOffBitIdentical) {
  // Both axes at once, threaded against the sequential control arm too.
  const auto targets = targets2();
  for (auto make : {im_rp_campaign, cont_v_campaign}) {
    auto on_cfg = make(42);
    on_cfg.session.enable_tracing = true;
    on_cfg.session.enable_metrics = true;
    const auto on = Campaign(on_cfg).run(targets);
    const auto off = Campaign(make(42)).run(targets);
    expect_identical(on, off);
  }
}

TEST(Determinism, InferServerOnOffBitIdentical) {
  // The inference-server surrogate must be a pure observer, like the
  // tracer: science is computed synchronously with the caller's rng, so
  // switching the server on (even adaptive) perturbs nothing — including
  // the fold cache's own statistics, which the server path replicates.
  const auto targets = targets2();
  auto on_cfg = im_rp_campaign(42);
  on_cfg.enable_infer = true;
  on_cfg.infer_config.adaptive = true;
  const auto on = Campaign(on_cfg).run(targets);
  const auto off = Campaign(im_rp_campaign(42)).run(targets);
  expect_identical(on, off);
  EXPECT_EQ(on.fold_cache.hits, off.fold_cache.hits);
  EXPECT_EQ(on.fold_cache.misses, off.fold_cache.misses);
  EXPECT_TRUE(on.infer.enabled);
  EXPECT_FALSE(off.infer.enabled);
  EXPECT_EQ(on.infer.fold.requests, on.fold_tasks);
  EXPECT_EQ(on.infer.design.requests, on.generator_tasks);
  EXPECT_EQ(on.infer.fold.cache_hits, on.fold_cache.hits);
  EXPECT_GT(on.infer.fold.batches, 0u);
}

TEST(Determinism, BatchSizeUnobservableInSessionDump) {
  // The acceptance check, in session-dump form: a batched (B=8) and an
  // unbatched (B=1) campaign produce byte-identical dumps once the
  // "infer" accounting section — whose whole job is to report the
  // batching — is removed. Everything else is bit-identical.
  const auto targets = targets2();
  const auto run_with = [&](std::uint32_t batch) {
    auto cfg = im_rp_campaign(42);
    cfg.enable_infer = true;
    cfg.infer_config.policy.max_batch = batch;
    return Campaign(cfg).run(targets);
  };
  const auto batched = run_with(8);
  const auto unbatched = run_with(1);
  expect_identical(batched, unbatched);
  auto batched_doc = to_json(batched);
  auto unbatched_doc = to_json(unbatched);
  EXPECT_NE(batched_doc.dump(2), unbatched_doc.dump(2))
      << "the accounting itself should see the batch size";
  batched_doc.as_object().erase("infer");
  unbatched_doc.as_object().erase("infer");
  EXPECT_EQ(batched_doc.dump(2), unbatched_doc.dump(2));
  // The accounting sees what it should: same work, fewer dispatches,
  // modeled speedup from coalescing.
  EXPECT_EQ(batched.infer.fold.requests, unbatched.infer.fold.requests);
  EXPECT_LE(batched.infer.fold.batches, unbatched.infer.fold.batches);
  EXPECT_GE(batched.infer.fold.speedup(), unbatched.infer.fold.speedup());
  // And the dump round-trips the section it reports.
  const auto reread = campaign_result_from_json(to_json(batched));
  EXPECT_TRUE(reread.infer.enabled);
  EXPECT_EQ(reread.infer.fold.batches, batched.infer.fold.batches);
  EXPECT_DOUBLE_EQ(reread.infer.fold.batched_gpu_s,
                   batched.infer.fold.batched_gpu_s);
}

TEST(Determinism, SpotPreemptionScheduleUnobservableInScience) {
  // Same two-pilot campaign with and without a spot-reclaim window on the
  // preemptible pilot: timing shifts (evictions, retries, a 4h capacity
  // hole) but the science is bit-identical — fold rngs are derived from
  // task *content*, so a re-attempted fold recomputes exactly what the
  // evicted attempt would have produced, and with independent pipelines
  // each trajectory depends only on its own stage results.
  const auto targets = targets2();
  auto make = [](bool reclaim) {
    auto cfg = im_rp_campaign(42);
    cfg.protocol.spawn_subpipelines = false;
    cfg.extra_pilots.push_back(calibration::spot_pilot());
    cfg.coordinator.task_retry = rp::RetryPolicy{.max_attempts = 3,
                                                 .backoff_initial_s = 30.0,
                                                 .backoff_multiplier = 2.0,
                                                 .backoff_jitter = 0.25,
                                                 .attempt_timeout_s = 0.0};
    if (reclaim)
      cfg.session.faults.spot_reclaims.push_back(
          rp::SpotReclaim{.pilot_index = 1, .at_s = 7200.0, .down_s = 14400.0});
    return cfg;
  };
  const auto calm = Campaign(make(false)).run(targets);
  const auto preempted = Campaign(make(true)).run(targets);
  ASSERT_EQ(calm.trajectories.size(), preempted.trajectories.size());
  for (std::size_t i = 0; i < calm.trajectories.size(); ++i) {
    const auto& ta = calm.trajectories[i];
    const auto& tb = preempted.trajectories[i];
    EXPECT_EQ(ta.pipeline_id, tb.pipeline_id);
    ASSERT_EQ(ta.history.size(), tb.history.size());
    for (std::size_t j = 0; j < ta.history.size(); ++j) {
      EXPECT_EQ(ta.history[j].sequence, tb.history[j].sequence);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.plddt,
                       tb.history[j].metrics.plddt);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.ptm, tb.history[j].metrics.ptm);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.ipae,
                       tb.history[j].metrics.ipae);
    }
  }
  // The preemption is visible in the *computational* record, as it
  // should be — only the science is invariant.
  EXPECT_EQ(calm.pilot_failures, 0u);
  EXPECT_EQ(preempted.pilot_failures, 1u);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EverySeedIsSelfConsistent) {
  const auto targets = targets2();
  const auto a = Campaign(im_rp_campaign(GetParam())).run(targets);
  const auto b = Campaign(im_rp_campaign(GetParam())).run(targets);
  expect_identical(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 99u));

}  // namespace
}  // namespace impress::core
