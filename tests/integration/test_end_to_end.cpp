// Full-stack integration: campaigns through the real coordinator, runtime
// and surrogates, in both execution modes.

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

std::vector<protein::DesignTarget> targets2() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("E2E-A", 84, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("E2E-B", 92, protein::alpha_synuclein().tail(10)));
  return out;
}

TEST(EndToEnd, ImRpCampaignInvariants) {
  const auto targets = targets2();
  const auto r = Campaign(im_rp_campaign(42)).run(targets);

  // Structural invariants of any campaign.
  EXPECT_EQ(r.root_pipelines, targets.size());
  EXPECT_EQ(r.failed_tasks, 0u);
  EXPECT_GT(r.total_trajectories(), 0u);
  // Every fold task is an accepted iteration, a counted retry, or the
  // single decline that terminated a pipeline.
  std::size_t terminated = 0;
  for (const auto& t : r.trajectories)
    if (t.terminated_early) ++terminated;
  EXPECT_GE(r.fold_tasks, r.total_trajectories() + r.fold_retries);
  EXPECT_LE(r.fold_tasks,
            r.total_trajectories() + r.fold_retries + terminated);

  // Accepted iterations are monotone in composite within each trajectory
  // when the cycle was adaptive — the genetic ratchet.
  for (const auto& t : r.trajectories) {
    for (std::size_t i = 1; i < t.history.size(); ++i) {
      EXPECT_GT(t.history[i].metrics.composite(),
                t.history[i - 1].metrics.composite())
          << "non-monotone accepted iteration in " << t.pipeline_id;
    }
  }

  // Cycles in each trajectory are strictly increasing and within range.
  for (const auto& t : r.trajectories) {
    int prev = 0;
    for (const auto& rec : t.history) {
      EXPECT_GT(rec.cycle, prev);
      EXPECT_LE(rec.cycle, calibration::kCycles);
      prev = rec.cycle;
    }
  }
}

TEST(EndToEnd, UtilizationNeverExceedsCapacity) {
  const auto targets = targets2();
  for (const auto& config : {im_rp_campaign(42), cont_v_campaign(42)}) {
    const auto r = Campaign(config).run(targets);
    EXPECT_GT(r.utilization.cpu_active, 0.0);
    EXPECT_LE(r.utilization.cpu_active, 1.0);
    EXPECT_LE(r.utilization.cpu_allocated, 1.0);
    EXPECT_LE(r.utilization.gpu_allocated, 1.0);
    EXPECT_LE(r.utilization.cpu_active, r.utilization.cpu_allocated + 1e-9);
    EXPECT_LE(r.utilization.gpu_active, r.utilization.gpu_allocated + 1e-9);
    for (double v : r.cpu_series) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(EndToEnd, PhaseHoursAccountForMakespan) {
  const auto targets = targets2();
  const auto r = Campaign(cont_v_campaign(42)).run(targets);
  // Sequential: bootstrap + setup + running ~ makespan (no overlap).
  const double total = r.phase_hours.at("bootstrap") +
                       r.phase_hours.at("exec_setup") +
                       r.phase_hours.at("running");
  EXPECT_NEAR(total, r.makespan_h, 0.2);
}

TEST(EndToEnd, ThreadedModeMatchesSimCounts) {
  // The same campaign on the threaded executor: different timing engine,
  // same protocol semantics. Counts must line up structurally (the random
  // streams differ because completion order differs, so we compare
  // invariants, not exact numbers).
  auto cfg = im_rp_campaign(42);
  cfg.protocol.spawn_subpipelines = false;  // keep the workload fixed
  cfg.session.mode = rp::ExecutionMode::kThreaded;
  cfg.session.time_scale = 2e-7;  // one hour -> ~0.7 ms
  cfg.session.worker_threads = 12;
  const auto targets = targets2();
  const auto r = Campaign(cfg).run(targets);
  EXPECT_EQ(r.root_pipelines, targets.size());
  EXPECT_EQ(r.failed_tasks, 0u);
  EXPECT_GT(r.total_trajectories(), 0u);
  EXPECT_LE(r.total_trajectories(),
            targets.size() * static_cast<std::size_t>(calibration::kCycles));
  for (const auto& t : r.trajectories)
    for (std::size_t i = 1; i < t.history.size(); ++i)
      EXPECT_GT(t.history[i].metrics.composite(),
                t.history[i - 1].metrics.composite());
}

TEST(EndToEnd, SequentialContVHasLowerUtilizationThanImRp) {
  const auto targets = targets2();
  const auto cont = Campaign(cont_v_campaign(42)).run(targets);
  const auto im = Campaign(im_rp_campaign(42)).run(targets);
  EXPECT_GT(im.utilization.cpu_active, cont.utilization.cpu_active);
  EXPECT_GT(im.utilization.gpu_active, cont.utilization.gpu_active);
}

TEST(EndToEnd, ReportPipelineWorksOnRealResults) {
  const auto targets = targets2();
  const auto cont = Campaign(cont_v_campaign(42)).run(targets);
  const auto im = Campaign(im_rp_campaign(42)).run(targets);
  const auto table = table1(cont, im, calibration::kCycles);
  EXPECT_EQ(table.rows(), 2u);
  const auto fig = render_metric_figure("itest", {&cont, &im},
                                        Metric::kPlddt, calibration::kCycles);
  EXPECT_NE(fig.find("CONT-V"), std::string::npos);
  const auto util = render_utilization_figure(im, "itest-util");
  EXPECT_NE(util.find("avg CPU"), std::string::npos);
}

}  // namespace
}  // namespace impress::core
