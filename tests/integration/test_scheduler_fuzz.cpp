// Scheduler/runtime fuzzing: random heterogeneous workloads on random
// node shapes, checked against global invariants that must hold for ANY
// input — the resource pool is never oversubscribed at any instant, every
// task terminates, and the makespan is bounded below by trivial bounds.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "runtime/session.hpp"

namespace impress::rp {
namespace {

struct FuzzParams {
  std::uint64_t seed;
  SchedulerPolicy policy;
};

class RuntimeFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(RuntimeFuzz, InvariantsHoldForRandomWorkloads) {
  const auto [seed, policy] = GetParam();
  common::Rng rng(seed);

  // Random node shape.
  hpc::NodeSpec node;
  node.cores = 4 + rng.below(29);  // 4..32
  node.gpus = rng.below(5);        // 0..4
  node.mem_gb = 64.0;

  SessionConfig cfg;
  cfg.seed = seed;
  Session session(cfg);
  PilotDescription pd;
  pd.nodes = {node};
  pd.policy = policy;
  pd.bootstrap_s = rng.uniform(0.0, 60.0);
  pd.exec_overhead = ExecOverheadModel{.setup_mean_s = rng.uniform(0.0, 20.0),
                                       .setup_jitter_sigma = 0.2};
  auto pilot = session.submit_pilot(pd);

  // Random workload that always fits the node.
  const int n_tasks = 20 + static_cast<int>(rng.below(60));
  double max_duration = 0.0;
  double total_core_seconds = 0.0;
  for (int i = 0; i < n_tasks; ++i) {
    const std::uint32_t cores = 1 + rng.below(node.cores);
    const std::uint32_t gpus = node.gpus == 0 ? 0 : rng.below(node.gpus + 1);
    const double duration = rng.uniform(1.0, 500.0);
    max_duration = std::max(max_duration, duration);
    total_core_seconds += duration * cores;
    auto td = make_simple_task("fuzz" + std::to_string(i), cores, gpus, duration);
    td.priority = rng.range(-2, 2);
    td.phases[0].jitter_sigma = 0.1;
    session.task_manager().submit(std::move(td));
  }
  session.run();

  // 1. Everything terminated successfully.
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
  EXPECT_EQ(session.task_manager().failed(), 0u);
  EXPECT_EQ(session.task_manager().done(), session.task_manager().submitted());
  EXPECT_EQ(pilot->pool().free_cores(), node.cores);
  EXPECT_EQ(pilot->pool().free_gpus(), node.gpus);

  // 2. No instant oversubscribes the pool: sweep interval endpoints.
  const auto intervals = pilot->recorder().intervals();
  struct Edge {
    double t;
    int cores;
    int gpus;
  };
  std::vector<Edge> edges;
  for (const auto& iv : intervals) {
    edges.push_back({iv.start, static_cast<int>(iv.cores),
                     static_cast<int>(iv.gpus)});
    edges.push_back({iv.end, -static_cast<int>(iv.cores),
                     -static_cast<int>(iv.gpus)});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.cores < b.cores;  // process releases before acquisitions
  });
  int cores_in_use = 0, gpus_in_use = 0;
  for (const auto& e : edges) {
    cores_in_use += e.cores;
    gpus_in_use += e.gpus;
    EXPECT_LE(cores_in_use, static_cast<int>(node.cores));
    EXPECT_LE(gpus_in_use, static_cast<int>(node.gpus));
    EXPECT_GE(cores_in_use, 0);
    EXPECT_GE(gpus_in_use, 0);
  }

  // 3. Makespan sanity: at least the longest task (minus jitter slack),
  //    at least the perfectly-packed lower bound, and finite.
  const double makespan = pilot->recorder().latest_end();
  EXPECT_GE(makespan, max_duration * 0.6);  // lognormal jitter can shrink
  EXPECT_GE(makespan * node.cores, total_core_seconds * 0.5);
  EXPECT_LT(makespan, 1e9);

  // 4. Profiler ordering invariants for every task.
  for (const auto& iv : intervals) {
    const auto setup =
        session.profiler().time_of(iv.task_uid, hpc::events::kExecSetupStart);
    const auto start =
        session.profiler().time_of(iv.task_uid, hpc::events::kExecStart);
    ASSERT_TRUE(setup && start);
    EXPECT_LE(*setup, *start);
    EXPECT_LE(*start, iv.start + 1e-9);
  }
}

std::vector<FuzzParams> fuzz_matrix() {
  std::vector<FuzzParams> out;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    for (auto policy : {SchedulerPolicy::kFifo, SchedulerPolicy::kBackfill})
      out.push_back({seed, policy});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Workloads, RuntimeFuzz,
                         ::testing::ValuesIn(fuzz_matrix()));

}  // namespace
}  // namespace impress::rp
