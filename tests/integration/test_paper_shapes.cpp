// The paper's headline claims, asserted as statistical shapes on the full
// Table-I workload (4 PDZ domains, default seed 5). These are the
// regression tests for EXPERIMENTS.md: if a refactor breaks one of them,
// the reproduction story broke.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    targets_ = new std::vector<protein::DesignTarget>(
        protein::four_pdz_domains());
    cont_ = new CampaignResult(Campaign(cont_v_campaign(5)).run(*targets_));
    im_ = new CampaignResult(Campaign(im_rp_campaign(5)).run(*targets_));
  }
  static void TearDownTestSuite() {
    delete targets_;
    delete cont_;
    delete im_;
    targets_ = nullptr;
    cont_ = nullptr;
    im_ = nullptr;
  }

  static std::vector<protein::DesignTarget>* targets_;
  static CampaignResult* cont_;
  static CampaignResult* im_;
};

std::vector<protein::DesignTarget>* PaperShapes::targets_ = nullptr;
CampaignResult* PaperShapes::cont_ = nullptr;
CampaignResult* PaperShapes::im_ = nullptr;

TEST_F(PaperShapes, ContVMatchesPaperWorkloadScale) {
  // Table I: 16 trajectories, ~27.7 h.
  EXPECT_EQ(cont_->total_trajectories(), 16u);
  EXPECT_NEAR(cont_->makespan_h, 27.7, 2.5);
  EXPECT_EQ(cont_->subpipelines, 0u);
  EXPECT_EQ(cont_->fold_retries, 0u);
}

TEST_F(PaperShapes, ContVUtilizationIsLow) {
  // Table I: CPU ~18.3%, GPU ~1% (we land in the same low regime).
  EXPECT_GT(cont_->utilization.cpu_active, 0.08);
  EXPECT_LT(cont_->utilization.cpu_active, 0.30);
  EXPECT_LT(cont_->utilization.gpu_active, 0.15);
}

TEST_F(PaperShapes, ImRpExploresMoreTrajectories) {
  // Table I: IM-RP 23 vs CONT-V 16 trajectories, with sub-pipelines.
  EXPECT_GT(im_->total_trajectories(), cont_->total_trajectories());
  EXPECT_GE(im_->subpipelines, 3u);
  EXPECT_GT(im_->fold_tasks, cont_->fold_tasks);
}

TEST_F(PaperShapes, ImRpTakesLongerBecauseItEvaluatesMore) {
  // Table I: 38.3 h vs 27.7 h.
  EXPECT_GT(im_->makespan_h, cont_->makespan_h);
}

TEST_F(PaperShapes, ImRpUtilizationIsMuchHigher) {
  // Fig 4 vs Fig 5: IM-RP keeps the node busy.
  EXPECT_GT(im_->utilization.cpu_active, 1.5 * cont_->utilization.cpu_active);
  EXPECT_GT(im_->utilization.gpu_active, 1.5 * cont_->utilization.gpu_active);
}

TEST_F(PaperShapes, ImRpBeatsContVOnNetDeltas) {
  // Table I right half: pTM and pLDDT deltas favor IM-RP. The paper's own
  // pAE column is effectively tied — CONT-V -6.7 vs IM-RP -6.61, i.e. the
  // control's pAE *delta* is marginally better there too — so we require
  // comparability (within 1 A), not dominance.
  const int cycles = calibration::kCycles;
  EXPECT_GT(net_delta(*im_, Metric::kPtm, cycles),
            net_delta(*cont_, Metric::kPtm, cycles));
  EXPECT_GT(net_delta(*im_, Metric::kPlddt, cycles),
            net_delta(*cont_, Metric::kPlddt, cycles));
  EXPECT_LT(net_delta(*im_, Metric::kIpae, cycles),
            net_delta(*cont_, Metric::kIpae, cycles) + 1.0);
}

TEST_F(PaperShapes, ImRpFinalMediansBeatContV) {
  // Fig 2 at the final iteration.
  const int cycles = calibration::kCycles;
  EXPECT_GT(median_at_cycle(*im_, Metric::kPlddt, cycles, cycles),
            median_at_cycle(*cont_, Metric::kPlddt, cycles, cycles));
  EXPECT_GT(median_at_cycle(*im_, Metric::kPtm, cycles, cycles),
            median_at_cycle(*cont_, Metric::kPtm, cycles, cycles));
  EXPECT_LT(median_at_cycle(*im_, Metric::kIpae, cycles, cycles),
            median_at_cycle(*cont_, Metric::kIpae, cycles, cycles));
}

TEST_F(PaperShapes, ImRpMetricsImproveByIteration) {
  // Fig 2: the IM-RP medians climb across the campaign. Single-iteration
  // medians over only 4 targets wobble (the paper's error bars overlap
  // too), so allow small local dips while requiring the overall climb.
  const int cycles = calibration::kCycles;
  double prev = median_at_cycle(*im_, Metric::kPtm, 1, cycles);
  const double first = prev;
  for (int c = 2; c <= cycles; ++c) {
    const double cur = median_at_cycle(*im_, Metric::kPtm, c, cycles);
    EXPECT_GE(cur, prev - 0.05) << "pTM collapsed at iteration " << c;
    prev = cur;
  }
  EXPECT_GT(prev, first + 0.08) << "no overall climb";
}

TEST_F(PaperShapes, NetDeltasInPaperBallpark) {
  // Paper IM-RP: pTM +0.32, pLDDT +7.7, pAE -6.61. Same order of
  // magnitude and sign, generous tolerances (different substrate).
  const int cycles = calibration::kCycles;
  EXPECT_GT(net_delta(*im_, Metric::kPtm, cycles), 0.10);
  EXPECT_LT(net_delta(*im_, Metric::kPtm, cycles), 0.50);
  EXPECT_GT(net_delta(*im_, Metric::kPlddt, cycles), 3.0);
  EXPECT_LT(net_delta(*im_, Metric::kPlddt, cycles), 16.0);
  EXPECT_LT(net_delta(*im_, Metric::kIpae, cycles), -3.0);
  EXPECT_GT(net_delta(*im_, Metric::kIpae, cycles), -14.0);
}

TEST(PaperShapesFig3, FinalCycleDeterioratesWithoutAdaptivity) {
  // Fig 3 on a reduced (but non-trivial) benchmark slice for test speed:
  // adaptivity off in the final cycle => the design pool regresses.
  const auto targets = protein::pdz_benchmark(16);
  auto cfg = im_rp_campaign(5);
  cfg.protocol.adaptivity_in_final_cycle = false;
  const auto r = Campaign(cfg).run(targets);
  const int cycles = calibration::kCycles;
  const double comp3 =
      median_at_cycle(r, Metric::kIpae, cycles - 1, cycles);
  const double comp4 = median_at_cycle(r, Metric::kIpae, cycles, cycles);
  // pAE worsens (grows) in the unguarded final cycle.
  EXPECT_GT(comp4, comp3 - 0.3);
  // And the guarded arm does NOT show a regression beyond noise.
  auto guarded_cfg = im_rp_campaign(5);
  const auto guarded = Campaign(guarded_cfg).run(targets);
  EXPECT_LE(median_at_cycle(guarded, Metric::kIpae, cycles, cycles),
            median_at_cycle(guarded, Metric::kIpae, cycles - 1, cycles) + 0.8);
}

TEST(PaperShapesSeeds, OrderingHoldsAcrossSeeds) {
  // The IM-RP > CONT-V ordering is not a seed artifact: check the
  // composite medians across three seeds.
  const auto targets = protein::four_pdz_domains();
  const int cycles = calibration::kCycles;
  int im_wins = 0;
  for (std::uint64_t seed : {42u, 7u, 123u}) {
    const auto cont = Campaign(cont_v_campaign(seed)).run(targets);
    const auto im = Campaign(im_rp_campaign(seed)).run(targets);
    if (median_at_cycle(im, Metric::kPtm, cycles, cycles) >
        median_at_cycle(cont, Metric::kPtm, cycles, cycles))
      ++im_wins;
  }
  EXPECT_GE(im_wins, 2) << "IM-RP should win on most seeds";
}

}  // namespace
}  // namespace impress::core
