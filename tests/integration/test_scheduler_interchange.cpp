// Scheduler interchangeability at campaign scale: the engine's event-queue
// structure (heap / map / calendar) is pure configuration, so a seeded
// campaign — with faults, retries and checkpointing all enabled — must
// produce bit-identical CampaignResults under every SchedulerKind, and a
// kill/resume cycle may even switch schedulers across the cut.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "protein/datasets.hpp"
#include "sim/event_scheduler.hpp"

namespace impress::core {
namespace {

namespace fs = std::filesystem;

std::vector<protein::DesignTarget> targets2() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("SI-A", 84, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("SI-B", 90, protein::alpha_synuclein().tail(10)));
  return out;
}

/// IM-RP with 10% task failures and a 3-attempt retry policy — the same
/// shape the fault-tolerance suite pins, so retries/backoff timers (the
/// cancel-heavy engine workload) are all exercised.
CampaignConfig faulty_campaign(std::uint64_t seed, sim::SchedulerKind kind) {
  auto cfg = im_rp_campaign(seed);
  cfg.protocol.spawn_subpipelines = false;
  cfg.session.scheduler = kind;
  cfg.session.faults.task_failure_rate = 0.10;
  cfg.coordinator.task_retry = rp::RetryPolicy{.max_attempts = 3,
                                               .backoff_initial_s = 30.0,
                                               .backoff_multiplier = 2.0,
                                               .backoff_jitter = 0.25,
                                               .attempt_timeout_s = 0.0};
  return cfg;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    const auto& ta = a.trajectories[i];
    const auto& tb = b.trajectories[i];
    EXPECT_EQ(ta.pipeline_id, tb.pipeline_id);
    EXPECT_EQ(ta.terminated_early, tb.terminated_early);
    ASSERT_EQ(ta.history.size(), tb.history.size());
    for (std::size_t j = 0; j < ta.history.size(); ++j) {
      EXPECT_EQ(ta.history[j].sequence, tb.history[j].sequence);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.plddt,
                       tb.history[j].metrics.plddt);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.ptm, tb.history[j].metrics.ptm);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.ipae, tb.history[j].metrics.ipae);
      EXPECT_DOUBLE_EQ(ta.history[j].true_fitness, tb.history[j].true_fitness);
    }
  }
  EXPECT_DOUBLE_EQ(a.makespan_h, b.makespan_h);
  EXPECT_DOUBLE_EQ(a.energy_kwh, b.energy_kwh);
  EXPECT_DOUBLE_EQ(a.utilization.cpu_active, b.utilization.cpu_active);
  EXPECT_DOUBLE_EQ(a.utilization.gpu_active, b.utilization.gpu_active);
  EXPECT_EQ(a.cpu_series, b.cpu_series);
  EXPECT_EQ(a.gpu_series, b.gpu_series);
  EXPECT_EQ(a.phase_hours, b.phase_hours);
  EXPECT_EQ(a.gantt, b.gantt);
  EXPECT_EQ(a.root_pipelines, b.root_pipelines);
  EXPECT_EQ(a.subpipelines, b.subpipelines);
  EXPECT_EQ(a.generator_tasks, b.generator_tasks);
  EXPECT_EQ(a.refine_tasks, b.refine_tasks);
  EXPECT_EQ(a.fold_tasks, b.fold_tasks);
  EXPECT_EQ(a.fold_retries, b.fold_retries);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.task_timeouts, b.task_timeouts);
  EXPECT_EQ(a.task_requeues, b.task_requeues);
  EXPECT_EQ(a.pilot_failures, b.pilot_failures);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.fold_cache.hits, b.fold_cache.hits);
  EXPECT_EQ(a.fold_cache.misses, b.fold_cache.misses);
  EXPECT_EQ(a.fold_cache.evictions, b.fold_cache.evictions);
}

class SchedulerInterchange : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("impress_sched_interchange_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }
  std::string dir(const std::string& name) {
    const auto d = base_ / name;
    fs::create_directories(d);
    return d.string();
  }
  fs::path base_;
};

TEST_F(SchedulerInterchange, FaultyCheckpointedCampaignBitIdentical) {
  // Faults + retries + a checkpoint cadence, so the run exercises timer
  // cancellation, same-timestamp completion bursts and quiesce cuts —
  // then the full CampaignResult must not depend on the queue structure.
  const auto targets = targets2();
  auto run_with = [&](sim::SchedulerKind kind) {
    auto cfg = faulty_campaign(42, kind);
    cfg.checkpoint.directory = dir(std::string(sim::to_string(kind)));
    cfg.checkpoint.every_n_completions = 4;
    return Campaign(cfg).run(targets);
  };
  const auto heap = run_with(sim::SchedulerKind::kHeap);
  const auto map = run_with(sim::SchedulerKind::kMap);
  const auto calendar = run_with(sim::SchedulerKind::kCalendar);
  // The workload really drew on the fault/retry machinery.
  EXPECT_GT(heap.task_retries, 0u);
  expect_identical(heap, map);
  expect_identical(heap, calendar);
}

TEST_F(SchedulerInterchange, KillResumeMaySwitchSchedulersAcrossTheCut) {
  // Reference: uninterrupted heap run. Twin: killed after the first
  // checkpoint under the calendar queue, resumed under the map scheduler.
  // Checkpoints carry no queue state (cut at quiesce), so the structure
  // is swappable even mid-campaign.
  const auto targets = targets2();

  auto cfg_ref = faulty_campaign(7, sim::SchedulerKind::kHeap);
  cfg_ref.checkpoint.directory = dir("ref");
  cfg_ref.checkpoint.every_n_completions = 4;
  const auto reference = Campaign(cfg_ref).run(targets);

  auto cfg_kill = faulty_campaign(7, sim::SchedulerKind::kCalendar);
  cfg_kill.checkpoint.directory = dir("kill");
  cfg_kill.checkpoint.every_n_completions = 4;
  cfg_kill.checkpoint.halt_after = 1;
  (void)Campaign(cfg_kill).run(targets);  // models the crash: discard

  const auto checkpoint = load_checkpoint(dir("kill") + "/checkpoint.json");
  EXPECT_GE(checkpoint.ordinal, 1u);

  auto cfg_resume = faulty_campaign(7, sim::SchedulerKind::kMap);
  cfg_resume.checkpoint.directory = dir("kill");
  cfg_resume.checkpoint.every_n_completions = 4;
  const auto resumed = Campaign(cfg_resume).resume(targets, checkpoint);

  expect_identical(reference, resumed);
}

}  // namespace
}  // namespace impress::core
