// Checkpoint/restart determinism: a campaign hard-stopped after a
// checkpoint and resumed from the file must reproduce the uninterrupted
// run's CampaignResult bit for bit (same checkpoint cadence on both
// sides — cutting a checkpoint quiesces the coordinator, which is itself
// part of the schedule being reproduced).

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "common/fs.hpp"
#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

namespace fs = std::filesystem;

std::vector<protein::DesignTarget> targets2() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("DET-A", 86, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("DET-B", 90, protein::alpha_synuclein().tail(10)));
  return out;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    const auto& ta = a.trajectories[i];
    const auto& tb = b.trajectories[i];
    EXPECT_EQ(ta.pipeline_id, tb.pipeline_id);
    EXPECT_EQ(ta.terminated_early, tb.terminated_early);
    ASSERT_EQ(ta.history.size(), tb.history.size());
    for (std::size_t j = 0; j < ta.history.size(); ++j) {
      EXPECT_EQ(ta.history[j].sequence, tb.history[j].sequence);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.plddt,
                       tb.history[j].metrics.plddt);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.ptm, tb.history[j].metrics.ptm);
      EXPECT_DOUBLE_EQ(ta.history[j].metrics.ipae, tb.history[j].metrics.ipae);
      EXPECT_DOUBLE_EQ(ta.history[j].true_fitness, tb.history[j].true_fitness);
    }
  }
  EXPECT_DOUBLE_EQ(a.makespan_h, b.makespan_h);
  EXPECT_DOUBLE_EQ(a.energy_kwh, b.energy_kwh);
  EXPECT_DOUBLE_EQ(a.utilization.cpu_active, b.utilization.cpu_active);
  EXPECT_DOUBLE_EQ(a.utilization.gpu_active, b.utilization.gpu_active);
  EXPECT_EQ(a.cpu_series, b.cpu_series);
  EXPECT_EQ(a.gpu_series, b.gpu_series);
  EXPECT_EQ(a.phase_hours, b.phase_hours);
  EXPECT_EQ(a.gantt, b.gantt);
  EXPECT_EQ(a.root_pipelines, b.root_pipelines);
  EXPECT_EQ(a.subpipelines, b.subpipelines);
  EXPECT_EQ(a.generator_tasks, b.generator_tasks);
  EXPECT_EQ(a.refine_tasks, b.refine_tasks);
  EXPECT_EQ(a.fold_tasks, b.fold_tasks);
  EXPECT_EQ(a.fold_retries, b.fold_retries);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.task_timeouts, b.task_timeouts);
  EXPECT_EQ(a.task_requeues, b.task_requeues);
  EXPECT_EQ(a.pilot_failures, b.pilot_failures);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.fold_cache.hits, b.fold_cache.hits);
  EXPECT_EQ(a.fold_cache.misses, b.fold_cache.misses);
  EXPECT_EQ(a.fold_cache.evictions, b.fold_cache.evictions);
}

void expect_identical_observability(const CampaignResult& a,
                                    const CampaignResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].id, b.trace[i].id);
    EXPECT_EQ(a.trace[i].parent, b.trace[i].parent);
    EXPECT_EQ(a.trace[i].name, b.trace[i].name);
    EXPECT_EQ(a.trace[i].category, b.trace[i].category);
    EXPECT_DOUBLE_EQ(a.trace[i].start, b.trace[i].start);
    EXPECT_DOUBLE_EQ(a.trace[i].end, b.trace[i].end);
    EXPECT_EQ(a.trace[i].open_seq, b.trace[i].open_seq);
    EXPECT_EQ(a.trace[i].close_seq, b.trace[i].close_seq);
    EXPECT_EQ(a.trace[i].attrs, b.trace[i].attrs);
  }
  EXPECT_EQ(a.metrics, b.metrics);
}

class CheckpointResume : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("impress_resume_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(base_);
  }
  void TearDown() override {
    common::set_atomic_write_test_hook(nullptr);
    fs::remove_all(base_);
  }
  std::string dir(const std::string& name) {
    const auto d = base_ / name;
    fs::create_directories(d);
    return d.string();
  }
  fs::path base_;
};

struct KillSpec {
  std::size_t every_n_completions;
  std::size_t every_n_pipelines;
  std::size_t halt_after;  ///< crash after this many checkpoint writes
};

CampaignConfig checkpointed(CampaignConfig cfg, const std::string& directory,
                            const KillSpec& spec, std::size_t halt_after) {
  cfg.checkpoint.directory = directory;
  cfg.checkpoint.every_n_completions = spec.every_n_completions;
  cfg.checkpoint.every_n_pipelines = spec.every_n_pipelines;
  cfg.checkpoint.halt_after = halt_after;
  return cfg;
}

// The shared scenario: run uninterrupted (reference), kill a twin run
// after `spec.halt_after` checkpoints, resume from the file, compare.
void run_kill_resume(CampaignConfig (*make)(std::uint64_t),
                     std::uint64_t seed, const KillSpec& spec,
                     const std::string& ref_dir, const std::string& kill_dir,
                     bool observability = false) {
  const auto targets = targets2();

  auto ref_cfg = checkpointed(make(seed), ref_dir, spec, /*halt_after=*/0);
  ref_cfg.session.enable_tracing = observability;
  ref_cfg.session.enable_metrics = observability;
  const auto reference = Campaign(ref_cfg).run(targets);

  auto kill_cfg =
      checkpointed(make(seed), kill_dir, spec, spec.halt_after);
  kill_cfg.session.enable_tracing = observability;
  kill_cfg.session.enable_metrics = observability;
  // The halted run's partial result models a crash: discard it.
  (void)Campaign(kill_cfg).run(targets);

  const auto checkpoint = load_checkpoint(kill_dir + "/checkpoint.json");
  EXPECT_GE(checkpoint.ordinal, spec.halt_after);

  auto resume_cfg = checkpointed(make(seed), kill_dir, spec, /*halt_after=*/0);
  resume_cfg.session.enable_tracing = observability;
  resume_cfg.session.enable_metrics = observability;
  const auto resumed = Campaign(resume_cfg).resume(targets, checkpoint);

  expect_identical(reference, resumed);
  if (observability) expect_identical_observability(reference, resumed);
}

TEST_F(CheckpointResume, DeterminismImRpKillAfterFirstCheckpoint) {
  run_kill_resume(im_rp_campaign, 42, {.every_n_completions = 4,
                                       .every_n_pipelines = 0,
                                       .halt_after = 1},
                  dir("ref"), dir("kill"));
}

TEST_F(CheckpointResume, DeterminismImRpKillLate) {
  run_kill_resume(im_rp_campaign, 42, {.every_n_completions = 3,
                                       .every_n_pipelines = 0,
                                       .halt_after = 4},
                  dir("ref"), dir("kill"));
}

TEST_F(CheckpointResume, DeterminismContVKillMidway) {
  run_kill_resume(cont_v_campaign, 42, {.every_n_completions = 5,
                                        .every_n_pipelines = 0,
                                        .halt_after = 2},
                  dir("ref"), dir("kill"));
}

TEST_F(CheckpointResume, DeterminismPipelineCadence) {
  // Trigger on finished pipelines instead of completions: the checkpoint
  // lands right after a sub-pipeline or root retires.
  run_kill_resume(im_rp_campaign, 7, {.every_n_completions = 0,
                                      .every_n_pipelines = 1,
                                      .halt_after = 1},
                  dir("ref"), dir("kill"));
}

TEST_F(CheckpointResume, DeterminismObservabilityContinuesSeamlessly) {
  // Trace span ids/seqs and metric totals of the resumed run must equal
  // the uninterrupted run's — including the checkpoint.write markers.
  run_kill_resume(im_rp_campaign, 42, {.every_n_completions = 4,
                                       .every_n_pipelines = 0,
                                       .halt_after = 2},
                  dir("ref"), dir("kill"), /*observability=*/true);
}

class CadenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(CadenceSweep, DeterminismRandomizedBoundaries) {
  // Randomized (but seeded) cadence/kill-point combinations: the resume
  // contract cannot depend on where the cut happens to land.
  const auto base = fs::temp_directory_path() /
                    ("impress_sweep_" + std::to_string(GetParam()));
  fs::create_directories(base / "ref");
  fs::create_directories(base / "kill");
  std::uint64_t s = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                GetParam() + 1);
  s ^= s >> 29;
  const KillSpec spec{.every_n_completions = 2 + s % 5,
                      .every_n_pipelines = 0,
                      .halt_after = 1 + (s >> 8) % 3};
  run_kill_resume(im_rp_campaign, 100 + static_cast<std::uint64_t>(GetParam()),
                  spec, (base / "ref").string(), (base / "kill").string());
  fs::remove_all(base);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, CadenceSweep, ::testing::Range(0, 4));

// Campaign with a preemptible second pilot whose capacity is reclaimed
// mid-run for a 4-hour window (PR-2 eviction path in, PR-10 return path
// out). Evicted attempts retry on the durable pilot.
CampaignConfig spot_campaign(std::uint64_t seed) {
  auto cfg = im_rp_campaign(seed);
  cfg.protocol.spawn_subpipelines = false;
  cfg.extra_pilots.push_back(calibration::spot_pilot());
  cfg.session.faults.spot_reclaims.push_back(
      rp::SpotReclaim{.pilot_index = 1, .at_s = 7200.0, .down_s = 14400.0});
  cfg.coordinator.task_retry = rp::RetryPolicy{.max_attempts = 3,
                                               .backoff_initial_s = 30.0,
                                               .backoff_multiplier = 2.0,
                                               .backoff_jitter = 0.25,
                                               .attempt_timeout_s = 0.0};
  return cfg;
}

class SpotReclaimSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("impress_spot_" + std::to_string(GetParam()));
    fs::create_directories(base_ / "ref");
    fs::create_directories(base_ / "kill");
  }
  void TearDown() override { fs::remove_all(base_); }
  fs::path base_;
};

TEST_P(SpotReclaimSweep, DeterminismKillResumeAcrossReclaimWindow) {
  // Sweep the kill point across the reclaim window's boundaries: cuts
  // land before the eviction, inside the outage (the spot pilot is
  // checkpointed FAILED and must reactivate on schedule after resume),
  // and after the capacity returns. Every resume must reproduce the
  // uninterrupted spot-reclaimed run bit for bit.
  const KillSpec spec{.every_n_completions = 3,
                      .every_n_pipelines = 0,
                      .halt_after = 1 + static_cast<std::size_t>(GetParam())};
  run_kill_resume(spot_campaign, 42, spec, (base_ / "ref").string(),
                  (base_ / "kill").string());
}

INSTANTIATE_TEST_SUITE_P(Window, SpotReclaimSweep, ::testing::Range(0, 3));

TEST_F(CheckpointResume, DeterminismSpotReclaimRunSurvivesAndRecovers) {
  // The uninterrupted spot-reclaimed run itself: one pilot failure, work
  // rerouted/retried, and the campaign completes with science recorded.
  const auto targets = targets2();
  const auto r = Campaign(spot_campaign(42)).run(targets);
  EXPECT_EQ(r.pilot_failures, 1u);
  EXPECT_GT(r.task_retries + r.task_requeues, 0u);
  EXPECT_GT(r.total_trajectories(), 0u);
}

TEST_F(CheckpointResume, DeterminismDoubleKillChainedResume) {
  // Crash, resume, crash again, resume again: ordinals keep counting and
  // the final result still matches the uninterrupted reference.
  const auto targets = targets2();
  const KillSpec spec{.every_n_completions = 3,
                      .every_n_pipelines = 0,
                      .halt_after = 1};

  const auto reference =
      Campaign(checkpointed(im_rp_campaign(42), dir("ref"), spec, 0))
          .run(targets);

  const auto kill_dir = dir("kill");
  (void)Campaign(checkpointed(im_rp_campaign(42), kill_dir, spec, 1))
      .run(targets);
  const auto first = load_checkpoint(kill_dir + "/checkpoint.json");
  EXPECT_EQ(first.ordinal, 1u);

  // Resume, but crash again after one more checkpoint.
  (void)Campaign(checkpointed(im_rp_campaign(42), kill_dir, spec, 1))
      .resume(targets, first);
  const auto second = load_checkpoint(kill_dir + "/checkpoint.json");
  EXPECT_GE(second.ordinal, 2u);
  EXPECT_GT(second.now, first.now);

  const auto resumed =
      Campaign(checkpointed(im_rp_campaign(42), kill_dir, spec, 0))
          .resume(targets, second);
  expect_identical(reference, resumed);
}

TEST_F(CheckpointResume, DeterminismFaultyCampaignKillAndResume) {
  // Checkpoint/restart composed with fault injection: retries, timeouts
  // and requeues before the cut are part of the checkpointed state.
  auto make_faulty = [](std::uint64_t seed) {
    auto cfg = im_rp_campaign(seed);
    cfg.session.faults.task_failure_rate = 0.08;
    cfg.coordinator.task_retry.max_attempts = 3;
    return cfg;
  };
  const auto targets = targets2();
  const KillSpec spec{.every_n_completions = 4,
                      .every_n_pipelines = 0,
                      .halt_after = 2};

  auto ref_cfg = checkpointed(make_faulty(9), dir("ref"), spec, 0);
  const auto reference = Campaign(ref_cfg).run(targets);
  EXPECT_GT(reference.task_retries + reference.fold_retries, 0u)
      << "fault rate too low to exercise the retry path";

  (void)Campaign(checkpointed(make_faulty(9), dir("kill"), spec,
                              spec.halt_after))
      .run(targets);
  const auto checkpoint = load_checkpoint(dir("kill") + "/checkpoint.json");
  const auto resumed =
      Campaign(checkpointed(make_faulty(9), dir("kill"), spec, 0))
          .resume(targets, checkpoint);
  expect_identical(reference, resumed);
}

TEST_F(CheckpointResume, CrashDuringCheckpointWriteLeavesPreviousLoadable) {
  // A crash in the middle of writing checkpoint N must leave checkpoint
  // N-1 intact — and resuming from it still reproduces the reference.
  const auto targets = targets2();
  const KillSpec spec{.every_n_completions = 3,
                      .every_n_pipelines = 0,
                      .halt_after = 0};

  const auto reference =
      Campaign(checkpointed(im_rp_campaign(42), dir("ref"), spec, 0))
          .run(targets);

  const auto kill_dir = dir("kill");
  int writes = 0;
  common::set_atomic_write_test_hook([&writes](const std::string&) {
    if (++writes == 2) throw std::runtime_error("killed mid-write");
  });
  EXPECT_THROW((void)Campaign(checkpointed(im_rp_campaign(42), kill_dir, spec,
                                           0))
                   .run(targets),
               std::runtime_error);
  common::set_atomic_write_test_hook(nullptr);

  const auto checkpoint = load_checkpoint(kill_dir + "/checkpoint.json");
  EXPECT_EQ(checkpoint.ordinal, 1u) << "the torn write must not be visible";

  const auto resumed =
      Campaign(checkpointed(im_rp_campaign(42), kill_dir, spec, 0))
          .resume(targets, checkpoint);
  expect_identical(reference, resumed);
}

TEST_F(CheckpointResume, ResumeValidatesConfigMatch) {
  const auto targets = targets2();
  const KillSpec spec{.every_n_completions = 3,
                      .every_n_pipelines = 0,
                      .halt_after = 1};
  (void)Campaign(checkpointed(im_rp_campaign(42), dir("kill"), spec, 1))
      .run(targets);
  const auto checkpoint = load_checkpoint(dir("kill") + "/checkpoint.json");

  // Wrong campaign name.
  EXPECT_THROW((void)Campaign(cont_v_campaign(42)).resume(targets, checkpoint),
               std::invalid_argument);
  // Wrong seed.
  EXPECT_THROW((void)Campaign(im_rp_campaign(43)).resume(targets, checkpoint),
               std::invalid_argument);
  // Wrong target set size.
  std::vector<protein::DesignTarget> one;
  one.push_back(
      protein::make_target("DET-A", 86, protein::alpha_synuclein().tail(10)));
  EXPECT_THROW((void)Campaign(im_rp_campaign(42)).resume(one, checkpoint),
               std::invalid_argument);
  // Renamed target.
  auto renamed = targets2();
  renamed[1].name = "SOMETHING-ELSE";
  EXPECT_THROW((void)Campaign(im_rp_campaign(42)).resume(renamed, checkpoint),
               std::invalid_argument);
}

}  // namespace
}  // namespace impress::core
