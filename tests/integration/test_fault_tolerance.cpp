// Fault-tolerance acceptance (docs/fault_tolerance.md): a seeded campaign
// with injected failures — 10% task failure rate, plus a pilot outage at
// session level — runs to completion deterministically, with per-task
// attempt counts and retry/timeout/failure totals surfaced in its report.

#include <gtest/gtest.h>

#include <tuple>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "hpc/analytics.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

std::vector<protein::DesignTarget> targets2() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("FT-A", 84, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("FT-B", 90, protein::alpha_synuclein().tail(10)));
  return out;
}

CampaignConfig faulty_campaign(std::uint64_t seed) {
  auto cfg = im_rp_campaign(seed);
  cfg.protocol.spawn_subpipelines = false;
  cfg.session.faults.task_failure_rate = 0.10;
  cfg.coordinator.task_retry = rp::RetryPolicy{.max_attempts = 3,
                                               .backoff_initial_s = 30.0,
                                               .backoff_multiplier = 2.0,
                                               .backoff_jitter = 0.25,
                                               .attempt_timeout_s = 0.0};
  return cfg;
}

TEST(FaultTolerance, FaultyCampaignRunsToCompletion) {
  const auto r = Campaign(faulty_campaign(42)).run(targets2());
  // 10% failures over a whole campaign: the retry policy must have fired,
  // and with 3 attempts per task almost everything recovers.
  EXPECT_GT(r.task_retries, 0u);
  EXPECT_GT(r.total_trajectories(), 0u);
  // Per-task attempt counts reached the report.
  EXPECT_FALSE(r.attempts.empty());
  std::size_t multi_attempt = 0;
  for (const auto& [uid, attempts] : r.attempts) {
    EXPECT_GE(attempts, 1);
    if (attempts > 1) ++multi_attempt;
  }
  EXPECT_GT(multi_attempt, 0u);
  // The retry totals and the attempt distribution agree: every retry is
  // one extra submit of some task.
  std::size_t extra_submits = 0;
  for (const auto& [uid, attempts] : r.attempts)
    extra_submits += static_cast<std::size_t>(attempts - 1);
  EXPECT_EQ(extra_submits, r.task_retries);
}

TEST(FaultTolerance, FaultyCampaignIsDeterministic) {
  auto fingerprint = [](const CampaignResult& r) {
    return std::tuple{r.task_retries,      r.task_timeouts,
                      r.task_requeues,     r.pilot_failures,
                      r.failed_tasks,      r.attempts,
                      r.total_trajectories(), r.makespan_h};
  };
  const auto a = Campaign(faulty_campaign(1234)).run(targets2());
  const auto b = Campaign(faulty_campaign(1234)).run(targets2());
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  // And a different seed draws a different fault pattern.
  const auto c = Campaign(faulty_campaign(99)).run(targets2());
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(FaultTolerance, ReportRendersFaultSummary) {
  const auto r = Campaign(faulty_campaign(42)).run(targets2());
  const auto summary = render_fault_summary(r);
  EXPECT_NE(summary.find("retries="), std::string::npos);
  EXPECT_NE(summary.find("timeouts="), std::string::npos);
  EXPECT_NE(summary.find("attempts:"), std::string::npos);
  EXPECT_NE(summary.find("tasks retried:"), std::string::npos);
  // Retried tasks are distinguishable in the Gantt (legend + markers).
  EXPECT_NE(r.gantt.find("'!'=retry"), std::string::npos);
}

TEST(FaultTolerance, PilotOutageMidCampaignRecoversOnSurvivor) {
  // Session-level two-pilot run: pilot 0 dies mid-flight, the survivor
  // absorbs the evicted and drained work. Campaigns stay single-pilot, so
  // the outage path is exercised against the raw runtime here.
  rp::SessionConfig cfg;
  cfg.seed = 7;
  cfg.faults.pilot_outages.push_back(
      rp::PilotOutage{.pilot_index = 0, .at_s = 200.0});
  rp::Session session{cfg};
  rp::PilotDescription pd;
  pd.nodes = {
      hpc::NodeSpec{.name = "n", .cores = 8, .gpus = 0, .mem_gb = 64.0}};
  auto doomed = session.submit_pilot(pd);
  session.submit_pilot(pd);
  std::vector<rp::TaskPtr> tasks;
  for (int i = 0; i < 12; ++i) {
    auto td = rp::make_simple_task("t" + std::to_string(i), 2, 0, 300.0);
    td.retry = rp::RetryPolicy{.max_attempts = 3, .backoff_initial_s = 10.0};
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  session.run();
  EXPECT_EQ(doomed->state(), rp::PilotState::kFailed);
  for (const auto& t : tasks) EXPECT_EQ(t->state(), rp::TaskState::kDone);
  const auto retry = hpc::summarize_retries(session.profiler());
  EXPECT_EQ(retry.pilot_failures, 1u);
  EXPECT_GT(retry.retries + retry.requeues, 0u);
  EXPECT_GT(retry.tasks_retried, 0u);
}

TEST(FaultTolerance, CleanCampaignUnchangedByFaultMachinery) {
  // With no faults configured and the default single-attempt policy, the
  // counters stay zero and nothing retries — the substrate is pay-as-you-go.
  auto cfg = im_rp_campaign(42);
  cfg.protocol.spawn_subpipelines = false;
  const auto r = Campaign(cfg).run(targets2());
  EXPECT_EQ(r.task_retries, 0u);
  EXPECT_EQ(r.task_timeouts, 0u);
  EXPECT_EQ(r.task_requeues, 0u);
  EXPECT_EQ(r.pilot_failures, 0u);
  for (const auto& [uid, attempts] : r.attempts) EXPECT_EQ(attempts, 1);
}

}  // namespace
}  // namespace impress::core
