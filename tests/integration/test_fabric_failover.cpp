// Fabric failover determinism (ISSUE 9): a seeded multi-worker campaign
// over the loopback transport — including injected worker deaths, frame
// chaos, double failures, and a coordinator restart — must produce a
// CampaignResult bit-identical to the same-seed single-process baseline.
//
// The baseline is core::run_sharded (each shard an independent campaign,
// folded by merge_shard_results); for a single shard the merge is the
// identity, so the distributed result also equals plain Campaign::run.
// Bit-identity is pinned by comparing full session dumps: the dump
// serializes every result field with %.17g doubles, so equal strings
// mean equal bytes everywhere it matters.
//
// Suite name carries "Determinism" so the flake detector's seed-stability
// sweep picks these up.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session_dump.hpp"
#include "core/shard.hpp"
#include "net/fabric.hpp"
#include "protein/datasets.hpp"

namespace impress::net {
namespace {

std::vector<protein::DesignTarget> targets4() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("DET-A", 86, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("DET-B", 90, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("DET-C", 77, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("DET-D", 93, protein::alpha_synuclein().tail(10)));
  return out;
}

std::string dump_of(const core::CampaignResult& r) {
  return core::to_json(r).dump();
}

core::CampaignResult sharded_baseline(const core::CampaignConfig& config,
                                      const std::vector<protein::DesignTarget>&
                                          targets,
                                      std::size_t num_shards,
                                      std::size_t checkpoint_every) {
  return core::run_sharded(config, targets,
                           core::ShardPlan::contiguous(targets, num_shards),
                           checkpoint_every);
}

void expect_conserved(const FabricStats& s) {
  EXPECT_EQ(s.submits_opened,
            s.submits_closed_result + s.submits_closed_death + s.submits_open());
  EXPECT_EQ(s.submits_open(), 0u) << "a finished campaign leaves nothing open";
}

TEST(FabricDeterminism, SingleShardMatchesSingleProcess) {
  // The ISSUE's headline criterion: one shard, no cadence — the fabric
  // result IS the plain single-process Campaign::run, bit for bit.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);

  DistributedConfig dc;
  dc.fabric.campaign = config;
  dc.num_workers = 1;
  dc.num_shards = 1;
  const DistributedOutcome out = run_distributed(dc, targets);

  const auto plain = core::Campaign(config).run(targets);
  EXPECT_EQ(dump_of(out.result), dump_of(plain));
  expect_conserved(out.stats);
}

TEST(FabricDeterminism, DistributedMatchesShardedLocal) {
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);

  DistributedConfig dc;
  dc.fabric.campaign = config;
  dc.num_workers = 2;
  dc.num_shards = 3;
  const DistributedOutcome out = run_distributed(dc, targets);

  EXPECT_EQ(dump_of(out.result),
            dump_of(sharded_baseline(config, targets, 3, 0)));
  expect_conserved(out.stats);
  EXPECT_EQ(out.stats.submits_opened, 3u);
  EXPECT_EQ(out.stats.submits_closed_result, 3u);
}

TEST(FabricDeterminism, WorkerCountIsUnobservable) {
  // Same plan, 1 vs 3 workers: scheduling differs, bytes don't.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(7);
  std::vector<std::string> dumps;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    DistributedConfig dc;
    dc.fabric.campaign = config;
    dc.num_workers = workers;
    dc.num_shards = 4;
    dumps.push_back(dump_of(run_distributed(dc, targets).result));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dump_of(sharded_baseline(config, targets, 4, 0)));
}

TEST(FabricDeterminism, ChaosScheduleIsUnobservable) {
  // Drop/reorder/delay churn perturbs delivery, resubmissions, and the
  // assignment schedule — never the merged bytes.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);
  const std::string baseline =
      dump_of(sharded_baseline(config, targets, 4, 0));

  for (const std::uint64_t chaos_seed : {1ULL, 2ULL, 3ULL}) {
    DistributedConfig dc;
    dc.fabric.campaign = config;
    dc.num_workers = 2;
    dc.num_shards = 4;
    dc.chaos.seed = chaos_seed;
    dc.chaos.drop_rate = 0.10;
    dc.chaos.reorder_rate = 0.20;
    dc.chaos.delay_min = 0;
    dc.chaos.delay_max = 3;
    dc.fabric.resubmit_after = 16;
    const DistributedOutcome out = run_distributed(dc, targets);
    EXPECT_EQ(dump_of(out.result), baseline) << "chaos seed " << chaos_seed;
    expect_conserved(out.stats);
    EXPECT_GT(out.net.dropped, 0u) << "chaos too tame to prove anything";
  }
}

TEST(FabricDeterminism, WorkerDeathFailsOverBitExact) {
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);
  const std::size_t cadence = 2;
  const std::string baseline =
      dump_of(sharded_baseline(config, targets, 2, cadence));

  for (const bool ship_final : {false, true}) {
    DistributedConfig dc;
    dc.fabric.campaign = config;
    dc.fabric.checkpoint_every = cadence;
    dc.fabric.heartbeat_timeout = 20;
    dc.num_workers = 2;
    dc.num_shards = 2;
    dc.kill_plans = {
        WorkerKillPlan{.die_at_checkpoint = 1, .ship_final = ship_final}};
    const DistributedOutcome out = run_distributed(dc, targets);
    EXPECT_EQ(dump_of(out.result), baseline)
        << "ship_final=" << ship_final;
    EXPECT_EQ(out.stats.workers_declared_dead, 1u);
    EXPECT_GE(out.stats.reassignments, 1u);
    EXPECT_EQ(out.stats.submits_closed_death, 1u);
    expect_conserved(out.stats);
  }
}

TEST(FabricDeterminism, KillAtRandomBarrierSweep) {
  // Seeded sweep over where the worker dies: the recovery contract cannot
  // depend on which checkpoint barrier the crash lands on.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);
  const std::size_t cadence = 2;
  const std::string baseline =
      dump_of(sharded_baseline(config, targets, 2, cadence));

  for (const std::size_t die_at : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}}) {
    for (const bool ship_final : {false, true}) {
      DistributedConfig dc;
      dc.fabric.campaign = config;
      dc.fabric.checkpoint_every = cadence;
      dc.fabric.heartbeat_timeout = 20;
      dc.num_workers = 2;
      dc.num_shards = 2;
      dc.kill_plans = {WorkerKillPlan{.die_at_checkpoint = die_at,
                                      .ship_final = ship_final}};
      const DistributedOutcome out = run_distributed(dc, targets);
      EXPECT_EQ(dump_of(out.result), baseline)
          << "die_at=" << die_at << " ship_final=" << ship_final;
      EXPECT_EQ(out.stats.workers_declared_dead, 1u);
      expect_conserved(out.stats);
    }
  }
}

TEST(FabricDeterminism, DoubleFailureChainedRecovery) {
  // The replacement worker dies too; the shard's checkpoint lineage keeps
  // counting and the third worker lands the same bytes.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);
  const std::size_t cadence = 2;
  const std::string baseline =
      dump_of(sharded_baseline(config, targets, 1, cadence));

  DistributedConfig dc;
  dc.fabric.campaign = config;
  dc.fabric.checkpoint_every = cadence;
  dc.fabric.heartbeat_timeout = 20;
  dc.num_workers = 3;
  dc.num_shards = 1;
  dc.kill_plans = {WorkerKillPlan{.die_at_checkpoint = 1, .ship_final = true},
                   WorkerKillPlan{.die_at_checkpoint = 1, .ship_final = false}};
  const DistributedOutcome out = run_distributed(dc, targets);
  EXPECT_EQ(dump_of(out.result), baseline);
  EXPECT_EQ(out.stats.workers_declared_dead, 2u);
  EXPECT_GE(out.stats.reassignments, 2u);
  EXPECT_EQ(out.stats.submits_closed_death, 2u);
  expect_conserved(out.stats);
}

TEST(FabricDeterminism, DeathUnderChaosStillBitExact) {
  // Failover composed with frame loss: dropped checkpoints, dropped
  // results, resubmissions — the merged bytes still match.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);
  const std::size_t cadence = 2;
  const std::string baseline =
      dump_of(sharded_baseline(config, targets, 2, cadence));

  DistributedConfig dc;
  dc.fabric.campaign = config;
  dc.fabric.checkpoint_every = cadence;
  dc.fabric.heartbeat_timeout = 40;
  dc.fabric.resubmit_after = 16;
  dc.num_workers = 2;
  dc.num_shards = 2;
  dc.chaos.seed = 5;
  dc.chaos.drop_rate = 0.05;
  dc.chaos.delay_min = 0;
  dc.chaos.delay_max = 2;
  dc.kill_plans = {WorkerKillPlan{.die_at_checkpoint = 1, .ship_final = false}};
  const DistributedOutcome out = run_distributed(dc, targets);
  EXPECT_EQ(dump_of(out.result), baseline);
  EXPECT_GE(out.stats.workers_declared_dead, 1u);
  expect_conserved(out.stats);
}

TEST(FabricDeterminism, CoordinatorRestartMidCampaign) {
  // Kill the coordinator (by discarding it) once it has stored progress,
  // restore a fresh one from the snapshot with fresh workers, and finish:
  // same bytes as the uninterrupted baseline.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);
  const std::size_t cadence = 2;
  const core::ShardPlan plan = core::ShardPlan::contiguous(targets, 2);
  const std::string baseline =
      dump_of(sharded_baseline(config, targets, 2, cadence));

  FabricConfig fc;
  fc.campaign = config;
  fc.checkpoint_every = cadence;

  FabricSnapshot snap;
  {
    LoopbackNet net;
    CoordinatorNode first(fc, &targets, plan);
    auto [coord_side, worker_side] = net.make_link_pair("coord", "w0");
    first.add_worker(coord_side);
    WorkerConfig wc;
    wc.worker_id = 0;
    wc.campaign = config;
    wc.checkpoint_every = cadence;
    WorkerNode worker(wc, worker_side, &targets);

    // Pump until the first shard finishes, then "crash" the coordinator.
    for (std::uint64_t tick = 0; tick < 50000; ++tick) {
      net.advance(1);
      first.pump(net.now());
      worker.pump();
      if (first.snapshot().shards[0].done) {
        break;
      }
    }
    snap = first.snapshot();
    ASSERT_TRUE(snap.shards[0].done) << "scenario never reached mid-campaign";
    ASSERT_FALSE(snap.shards[1].done) << "campaign finished before the crash";
  }

  LoopbackNet net;
  CoordinatorNode second(fc, &targets, plan);
  second.restore(snap);
  auto [coord_side, worker_side] = net.make_link_pair("coord", "w0");
  second.add_worker(coord_side);
  WorkerConfig wc;
  wc.worker_id = 0;
  wc.campaign = config;
  wc.checkpoint_every = cadence;
  WorkerNode worker(wc, worker_side, &targets);
  for (std::uint64_t tick = 0; tick < 50000 && !second.done(); ++tick) {
    net.advance(1);
    second.pump(net.now());
    worker.pump();
  }
  ASSERT_TRUE(second.done());
  EXPECT_EQ(dump_of(second.result()), baseline);
}

TEST(FabricDeterminism, HeartbeatTimeoutReroutesSilentWorker) {
  // A partitioned worker: registered, link open, but never pumping. Only
  // the heartbeat timeout can catch this one (no FIN arrives), and its
  // shard must land on the healthy peer with the same bytes.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);
  const core::ShardPlan plan = core::ShardPlan::contiguous(targets, 2);
  const std::string baseline =
      dump_of(sharded_baseline(config, targets, 2, 0));

  FabricConfig fc;
  fc.campaign = config;
  fc.heartbeat_timeout = 10;

  LoopbackNet net;
  CoordinatorNode coordinator(fc, &targets, plan);
  auto [c0, w0_side] = net.make_link_pair("coord->w0", "w0->coord");
  coordinator.add_worker(c0);
  auto [c1, w1_side] = net.make_link_pair("coord->w1", "w1->coord");
  coordinator.add_worker(c1);

  WorkerConfig wc;
  wc.worker_id = 0;
  wc.campaign = config;
  WorkerNode worker0(wc, w0_side, &targets);

  // The ghost registers once, then never polls again — a partition, not
  // a crash (the link stays open).
  w1_side->send(HelloMsg{.worker_id = 1,
                         .wire_version = kWireVersion,
                         .slots = 1,
                         .build_tag = "ghost"});

  for (std::uint64_t tick = 0; tick < 50000 && !coordinator.done(); ++tick) {
    net.advance(1);
    coordinator.pump(net.now());
    worker0.pump();
  }
  ASSERT_TRUE(coordinator.done());
  EXPECT_EQ(dump_of(coordinator.result()), baseline);
  EXPECT_EQ(coordinator.stats().workers_declared_dead, 1u);
  expect_conserved(coordinator.stats());

  // Epoch fencing: the partitioned worker "reconnects" and delivers a
  // result for its long-reassigned shard — counted stale, table intact.
  const std::string before = dump_of(coordinator.result());
  TaskResultMsg ghost_result;
  ghost_result.shard_id = 1;
  ghost_result.epoch = 1;
  ghost_result.task_seq = 999;
  ghost_result.status = TaskResultMsg::Status::kOk;
  ghost_result.payload = "{}";
  w1_side->send(ghost_result);
  net.advance(1);
  coordinator.pump(net.now());
  EXPECT_GE(coordinator.stats().stale_frames, 1u);
  EXPECT_EQ(dump_of(coordinator.result()), before);
}

TEST(FabricDeterminism, SocketTransportMatchesLoopback) {
  // Same campaign over real AF_UNIX sockets: transport is unobservable.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);

  DistributedConfig dc;
  dc.fabric.campaign = config;
  dc.num_workers = 2;
  dc.num_shards = 2;
  dc.use_sockets = true;
  const DistributedOutcome out = run_distributed(dc, targets);
  EXPECT_EQ(dump_of(out.result),
            dump_of(sharded_baseline(config, targets, 2, 0)));
  expect_conserved(out.stats);
}

TEST(FabricDeterminism, ErrorShardSurfacesInResult) {
  // A worker configured with a different campaign reports kError; the
  // coordinator's result() names the shard instead of looping forever.
  const auto targets = targets4();
  DistributedConfig dc;
  dc.fabric.campaign = core::im_rp_campaign(42);
  dc.num_workers = 1;
  dc.num_shards = 1;
  // A kill plan without a checkpoint cadence is rejected worker-side and
  // comes back as a terminal kError result.
  dc.kill_plans = {WorkerKillPlan{.die_at_checkpoint = 1}};
  EXPECT_THROW((void)run_distributed(dc, targets), std::runtime_error);
}

}  // namespace
}  // namespace impress::net
