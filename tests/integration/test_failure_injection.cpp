// Failure injection: throwing surrogates, impossible resource requests,
// and cancellation mid-campaign. The middleware must degrade gracefully —
// terminate the affected pipeline, release its resources, and let the
// rest of the campaign finish.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/campaign.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

/// A generator that fails deterministically on a chosen call index.
class FailingGenerator final : public SequenceGenerator {
 public:
  FailingGenerator(std::shared_ptr<const SequenceGenerator> inner,
                   int fail_on_call)
      : inner_(std::move(inner)), fail_on_call_(fail_on_call) {}

  std::vector<mpnn::ScoredSequence> generate(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape,
      common::Rng& rng) const override {
    const int call = calls_.fetch_add(1);
    if (call == fail_on_call_)
      throw std::runtime_error("injected generator failure");
    return inner_->generate(complex, landscape, rng);
  }

  std::string name() const override { return "failing"; }
  int calls() const { return calls_.load(); }

 private:
  std::shared_ptr<const SequenceGenerator> inner_;
  int fail_on_call_;
  mutable std::atomic<int> calls_{0};
};

std::vector<protein::DesignTarget> targets2() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("FI-A", 84, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("FI-B", 90, protein::alpha_synuclein().tail(10)));
  return out;
}

TEST(FailureInjection, GeneratorFailureTerminatesOnlyThatPipeline) {
  auto cfg = im_rp_campaign(42);
  cfg.protocol.spawn_subpipelines = false;
  cfg.generator = std::make_shared<FailingGenerator>(
      std::make_shared<MpnnGenerator>(cfg.sampler), /*fail_on_call=*/0);
  const auto targets = targets2();
  const auto r = Campaign(cfg).run(targets);

  EXPECT_EQ(r.failed_tasks, 1u);
  // One pipeline died on its first generator call (zero accepted
  // iterations); the other kept designing unaffected.
  std::size_t with_progress = 0, empty = 0;
  for (const auto& t : r.trajectories) {
    if (t.history.empty())
      ++empty;
    else
      ++with_progress;
  }
  EXPECT_EQ(empty, 1u);
  EXPECT_EQ(with_progress, 1u);
}

TEST(FailureInjection, MidCampaignFailureKeepsEarlierIterations) {
  auto cfg = im_rp_campaign(42);
  cfg.protocol.spawn_subpipelines = false;
  // Fail on the third generator call overall: some iterations already
  // accepted by then.
  cfg.generator = std::make_shared<FailingGenerator>(
      std::make_shared<MpnnGenerator>(cfg.sampler), /*fail_on_call=*/2);
  const auto r = Campaign(cfg).run(targets2());
  EXPECT_EQ(r.failed_tasks, 1u);
  EXPECT_GT(r.total_trajectories(), 0u);
  // The campaign terminated cleanly: no task left outstanding (run()
  // returned), and every surviving trajectory is internally consistent.
  for (const auto& t : r.trajectories) {
    int prev = 0;
    for (const auto& rec : t.history) {
      EXPECT_GT(rec.cycle, prev);
      prev = rec.cycle;
    }
  }
}

TEST(FailureInjection, SubpipelineRescueAfterFailure) {
  // With decision-making enabled, a pipeline killed by a failure is
  // eligible for re-processing: the coordinator spawns a sub-pipeline
  // from its last good state.
  auto cfg = im_rp_campaign(42);
  cfg.protocol.spawn_subpipelines = true;
  cfg.protocol.max_subpipelines_per_target = 1;
  cfg.generator = std::make_shared<FailingGenerator>(
      std::make_shared<MpnnGenerator>(cfg.sampler), /*fail_on_call=*/3);
  const auto r = Campaign(cfg).run(targets2());
  EXPECT_EQ(r.failed_tasks, 1u);
  EXPECT_GE(r.subpipelines, 1u);
}

TEST(FailureInjection, FailureInThreadedModeAlsoGraceful) {
  auto cfg = im_rp_campaign(42);
  cfg.protocol.spawn_subpipelines = false;
  cfg.session.mode = rp::ExecutionMode::kThreaded;
  cfg.session.time_scale = 2e-7;
  cfg.generator = std::make_shared<FailingGenerator>(
      std::make_shared<MpnnGenerator>(cfg.sampler), /*fail_on_call=*/1);
  const auto r = Campaign(cfg).run(targets2());
  EXPECT_EQ(r.failed_tasks, 1u);
  // Campaign still ran to completion on the surviving pipeline.
  EXPECT_GT(r.total_trajectories(), 0u);
}

}  // namespace
}  // namespace impress::core
