// Heterogeneous platforms: pilots mixing CPU-only and GPU nodes (the
// paper's stated direction of "adaptive execution of heterogeneous
// workflows across diverse platforms"). GPU tasks must land only on GPU
// nodes, CPU work should spill onto the CPU nodes, and campaigns must run
// unchanged.

#include <gtest/gtest.h>

#include <set>

#include "core/campaign.hpp"
#include "protein/datasets.hpp"
#include "runtime/session.hpp"

namespace impress::rp {
namespace {

PilotDescription mixed_pilot() {
  PilotDescription pd;
  pd.nodes = {
      hpc::NodeSpec{.name = "cpu0", .cores = 16, .gpus = 0, .mem_gb = 64.0},
      hpc::NodeSpec{.name = "gpu0", .cores = 8, .gpus = 4, .mem_gb = 64.0},
  };
  pd.policy = SchedulerPolicy::kBackfill;
  return pd;
}

TEST(HeterogeneousPlatform, GpuTasksOnlyOnGpuNodes) {
  Session session{SessionConfig{}};
  auto pilot = session.submit_pilot(mixed_pilot());
  std::vector<TaskPtr> gpu_tasks, cpu_tasks;
  for (int i = 0; i < 8; ++i)
    gpu_tasks.push_back(session.task_manager().submit(
        make_simple_task("g" + std::to_string(i), 2, 1, 50.0)));
  for (int i = 0; i < 8; ++i)
    cpu_tasks.push_back(session.task_manager().submit(
        make_simple_task("c" + std::to_string(i), 8, 0, 50.0)));
  session.run();

  // Global gpu ids 0-3 belong to node 1 (cpu0 has none). Check through
  // the recorded allocations at completion time: the task allocation is
  // cleared after release, so validate via utilization intervals instead:
  // every GPU-bearing interval exists and all tasks completed.
  EXPECT_EQ(session.task_manager().done(), 16u);
  std::size_t gpu_intervals = 0;
  for (const auto& iv : pilot->recorder().intervals())
    if (iv.gpus > 0) ++gpu_intervals;
  EXPECT_EQ(gpu_intervals, 8u);
}

TEST(HeterogeneousPlatform, CpuWorkUsesBothNodes) {
  Session session{SessionConfig{}};
  auto pilot = session.submit_pilot(mixed_pilot());
  // Six 8-core tasks: 24 cores needed concurrently; the pool has 16 + 8.
  for (int i = 0; i < 6; ++i)
    session.task_manager().submit(
        make_simple_task("w" + std::to_string(i), 8, 0, 100.0));
  session.run();
  // With 3 fitting concurrently (2 on cpu0, 1 on gpu0): two waves.
  EXPECT_DOUBLE_EQ(session.now(), 200.0);
}

TEST(HeterogeneousPlatform, OversizedGpuRequestRejected) {
  Session session{SessionConfig{}};
  session.submit_pilot(mixed_pilot());
  // 16 cores + 1 gpu fits no single node (gpu node has 8 cores).
  EXPECT_THROW(session.task_manager().submit(
                   make_simple_task("impossible", 16, 1, 1.0)),
               std::runtime_error);
}

TEST(HeterogeneousPlatform, CampaignRunsOnMixedPlatform) {
  auto cfg = core::im_rp_campaign(42);
  cfg.pilot.nodes = {
      hpc::NodeSpec{.name = "cpu0", .cores = 20, .gpus = 0, .mem_gb = 128.0},
      hpc::NodeSpec{.name = "gpu0", .cores = 8, .gpus = 4, .mem_gb = 128.0},
  };
  std::vector<protein::DesignTarget> targets;
  targets.push_back(
      protein::make_target("HET-A", 84, protein::alpha_synuclein().tail(10)));
  targets.push_back(
      protein::make_target("HET-B", 90, protein::alpha_synuclein().tail(10)));
  const auto r = core::Campaign(cfg).run(targets);
  EXPECT_GT(r.total_trajectories(), 0u);
  EXPECT_EQ(r.failed_tasks, 0u);
  EXPECT_GT(r.energy_kwh, 0.0);
}

}  // namespace
}  // namespace impress::rp
