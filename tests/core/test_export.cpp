#include "core/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/string_util.hpp"
#include "core/campaign.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

CampaignResult small_result() {
  std::vector<protein::DesignTarget> targets;
  targets.push_back(
      protein::make_target("EXP-A", 82, protein::alpha_synuclein().tail(10)));
  auto cfg = im_rp_campaign(42);
  cfg.protocol.spawn_subpipelines = false;
  return Campaign(cfg).run(targets);
}

std::vector<std::string> lines_of(const std::string& text) {
  auto lines = common::split(text, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

TEST(Export, TrajectoriesCsvShape) {
  const auto r = small_result();
  const auto csv = trajectories_csv(r);
  const auto lines = lines_of(csv);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "pipeline_id,target,is_subpipeline,cycle,plddt,ptm,ipae,"
            "composite,true_fitness,retries,sequence");
  EXPECT_EQ(lines.size() - 1, r.total_trajectories());
  // Every data row has exactly 11 fields.
  for (std::size_t i = 1; i < lines.size(); ++i)
    EXPECT_EQ(common::split(lines[i], ',').size(), 11u) << lines[i];
}

TEST(Export, TrajectoriesCsvValuesParseBack) {
  const auto r = small_result();
  const auto lines = lines_of(trajectories_csv(r));
  const auto fields = common::split(lines[1], ',');
  EXPECT_EQ(fields[1], "EXP-A");
  const double plddt = std::stod(fields[4]);
  EXPECT_GT(plddt, 0.0);
  EXPECT_LT(plddt, 100.0);
  const double ptm = std::stod(fields[5]);
  EXPECT_GT(ptm, 0.0);
  EXPECT_LT(ptm, 1.0);
  // The sequence column round-trips as a valid sequence.
  EXPECT_NO_THROW((void)protein::Sequence::from_string(fields[10]));
}

TEST(Export, UtilizationCsvShape) {
  const auto r = small_result();
  const auto lines = lines_of(utilization_csv(r));
  EXPECT_EQ(lines[0], "bin,t_start_h,t_end_h,cpu,gpu");
  EXPECT_EQ(lines.size() - 1, r.cpu_series.size());
  const auto fields = common::split(lines[1], ',');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "0");
  EXPECT_DOUBLE_EQ(std::stod(fields[1]), 0.0);
}

TEST(Export, IterationsCsvHasAllMetricCycleCombos) {
  const auto r = small_result();
  const auto lines = lines_of(iterations_csv(r, 4));
  // header + 3 metrics x 4 cycles.
  EXPECT_EQ(lines.size(), 1u + 12u);
  EXPECT_NE(lines[1].find("pLDDT,1,"), std::string::npos);
  EXPECT_NE(lines[12].find("inter-chain pAE,4,"), std::string::npos);
}

TEST(Export, WriteTextFileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "impress_export_t";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "x.txt").string();
  write_text_file(path, "hello\n");
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::filesystem::remove_all(dir);
}

TEST(Export, WriteTextFileBadPathThrows) {
  EXPECT_THROW(write_text_file("/nonexistent-dir-xyz/file.txt", "x"),
               std::runtime_error);
}

TEST(Export, ExportCampaignCsvWritesThreeFiles) {
  const auto r = small_result();
  const auto dir =
      (std::filesystem::temp_directory_path() / "impress_export_full").string();
  const auto paths = export_campaign_csv(r, dir, 4);
  ASSERT_EQ(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_TRUE(std::filesystem::exists(p)) << p;
    EXPECT_GT(std::filesystem::file_size(p), 10u);
    // Lower-cased campaign name in the stem.
    EXPECT_NE(p.find("im_rp"), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace impress::core
