// Coordinator behaviour through the simulated runtime: channel-driven
// dispatch, sequential (CONT-V) gating, sub-pipeline decision-making,
// and bookkeeping.

#include "core/coordinator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/calibration.hpp"
#include "protein/datasets.hpp"
#include "runtime/session.hpp"

namespace impress::core {
namespace {

struct Fixture {
  std::vector<protein::DesignTarget> targets;
  rp::SessionConfig session_config;

  Fixture() {
    targets.push_back(
        protein::make_target("CO-A", 84, protein::alpha_synuclein().tail(10)));
    targets.push_back(
        protein::make_target("CO-B", 88, protein::alpha_synuclein().tail(10)));
    session_config.seed = 42;
  }

  CoordinatorConfig coordinator_config(bool sequential = false) {
    CoordinatorConfig cfg;
    cfg.sequential = sequential;
    cfg.mpnn_durations = calibration::mpnn_durations();
    cfg.fold_durations = calibration::fold_durations();
    return cfg;
  }

  std::unique_ptr<Pipeline> pipeline(rp::Session& session,
                                     const protein::DesignTarget& t,
                                     ProtocolConfig protocol) {
    return std::make_unique<Pipeline>(
        t.name, t, t.start_complex(), protocol,
        std::make_shared<MpnnGenerator>(calibration::sampler_config()),
        fold::AlphaFold{}, session.fork_rng("pipeline." + t.name));
  }
};

TEST(Coordinator, RunsSinglePipelineToCompletion) {
  Fixture f;
  rp::Session session(f.session_config);
  session.submit_pilot(calibration::amarel_pilot());
  Coordinator coord(session, f.coordinator_config());
  auto protocol = calibration::im_rp_protocol();
  protocol.spawn_subpipelines = false;
  coord.add_pipeline(f.pipeline(session, f.targets[0], protocol));
  coord.run();
  const auto results = coord.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].history.empty());
  EXPECT_EQ(coord.pipelines_submitted(), 1u);
  EXPECT_EQ(coord.failed_tasks(), 0u);
  // Each accepted cycle needed one generator call; fold calls >= cycles.
  EXPECT_GE(coord.fold_tasks(), results[0].history.size());
  EXPECT_EQ(coord.generator_tasks(), results[0].history.size() +
                                         (results[0].terminated_early ? 1 : 0));
}

TEST(Coordinator, RunTwiceThrows) {
  Fixture f;
  rp::Session session(f.session_config);
  session.submit_pilot(calibration::amarel_pilot());
  Coordinator coord(session, f.coordinator_config());
  auto protocol = calibration::cont_v_protocol();
  coord.add_pipeline(f.pipeline(session, f.targets[0], protocol));
  coord.run();
  EXPECT_THROW(coord.run(), std::logic_error);
}

TEST(Coordinator, SequentialModeNeverOverlapsTasks) {
  Fixture f;
  rp::Session session(f.session_config);
  auto pilot = session.submit_pilot(
      calibration::amarel_pilot(rp::SchedulerPolicy::kFifo));
  Coordinator coord(session, f.coordinator_config(/*sequential=*/true));
  for (const auto& t : f.targets)
    coord.add_pipeline(f.pipeline(session, t, calibration::cont_v_protocol()));
  coord.run();
  // No two recorded usage intervals may overlap.
  auto intervals = pilot->recorder().intervals();
  std::sort(intervals.begin(), intervals.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  for (std::size_t i = 1; i < intervals.size(); ++i)
    EXPECT_GE(intervals[i].start, intervals[i - 1].end - 1e-9)
        << "tasks overlapped in sequential mode";
}

TEST(Coordinator, ConcurrentModeOverlapsTasks) {
  Fixture f;
  rp::Session session(f.session_config);
  auto pilot = session.submit_pilot(calibration::amarel_pilot());
  Coordinator coord(session, f.coordinator_config(/*sequential=*/false));
  auto protocol = calibration::im_rp_protocol();
  protocol.spawn_subpipelines = false;
  for (const auto& t : f.targets)
    coord.add_pipeline(f.pipeline(session, t, protocol));
  coord.run();
  auto intervals = pilot->recorder().intervals();
  bool overlap = false;
  for (std::size_t i = 0; i < intervals.size() && !overlap; ++i)
    for (std::size_t j = i + 1; j < intervals.size() && !overlap; ++j)
      if (intervals[i].start < intervals[j].end &&
          intervals[j].start < intervals[i].end)
        overlap = true;
  EXPECT_TRUE(overlap) << "IM-RP pipelines should execute concurrently";
}

TEST(Coordinator, SubpipelinesSpawnWhenEnabled) {
  Fixture f;
  rp::Session session(f.session_config);
  session.submit_pilot(calibration::amarel_pilot());
  Coordinator coord(session, f.coordinator_config());
  auto protocol = calibration::im_rp_protocol();
  protocol.max_subpipelines_per_target = 2;
  for (const auto& t : f.targets)
    coord.add_pipeline(f.pipeline(session, t, protocol));
  coord.run();
  // Every spawned sub-pipeline appears in the results and respects caps.
  std::size_t subs = 0;
  for (const auto& r : coord.results())
    if (r.is_subpipeline) ++subs;
  EXPECT_EQ(subs, coord.subpipelines_spawned());
  EXPECT_LE(subs, f.targets.size() *
                      static_cast<std::size_t>(protocol.max_subpipelines_per_target));
}

TEST(Coordinator, NoSubpipelinesWhenDisabled) {
  Fixture f;
  rp::Session session(f.session_config);
  session.submit_pilot(calibration::amarel_pilot());
  Coordinator coord(session, f.coordinator_config());
  auto protocol = calibration::im_rp_protocol();
  protocol.spawn_subpipelines = false;
  for (const auto& t : f.targets)
    coord.add_pipeline(f.pipeline(session, t, protocol));
  coord.run();
  EXPECT_EQ(coord.subpipelines_spawned(), 0u);
  for (const auto& r : coord.results()) EXPECT_FALSE(r.is_subpipeline);
}

TEST(Coordinator, RetriesCountedAsFoldRetries) {
  Fixture f;
  rp::Session session(f.session_config);
  session.submit_pilot(calibration::amarel_pilot());
  Coordinator coord(session, f.coordinator_config());
  auto protocol = calibration::im_rp_protocol();
  protocol.spawn_subpipelines = false;
  for (const auto& t : f.targets)
    coord.add_pipeline(f.pipeline(session, t, protocol));
  coord.run();
  std::size_t accepted = 0;
  int retries = 0;
  std::size_t terminated = 0;
  for (const auto& r : coord.results()) {
    accepted += r.history.size();
    retries += r.total_retries;
    if (r.terminated_early) ++terminated;
  }
  // Every fold is an accepted iteration or a counted decline; the
  // coordinator resubmits every decline except the terminal one of a
  // pipeline that ran out of budget or candidates.
  EXPECT_EQ(coord.fold_tasks(), accepted + static_cast<std::size_t>(retries));
  EXPECT_EQ(coord.fold_retries() + terminated,
            static_cast<std::size_t>(retries));
}

TEST(Coordinator, ResultsCoverEveryTarget) {
  Fixture f;
  rp::Session session(f.session_config);
  session.submit_pilot(calibration::amarel_pilot());
  Coordinator coord(session, f.coordinator_config());
  for (const auto& t : f.targets)
    coord.add_pipeline(f.pipeline(session, t, calibration::im_rp_protocol()));
  coord.run();
  std::set<std::string> names;
  for (const auto& r : coord.results()) names.insert(r.target_name);
  EXPECT_EQ(names.size(), f.targets.size());
}

}  // namespace
}  // namespace impress::core
