// Persistence-layer guarantees shared by every artifact writer: atomic
// (crash-consistent) file replacement, RFC-4180 CSV escaping, and schema
// versioning across the v1 session dump / v2 checkpoint split.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/fs.hpp"
#include "core/campaign.hpp"
#include "core/export.hpp"
#include "core/session_dump.hpp"

namespace impress::core {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("impress_persist_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    common::set_atomic_write_test_hook(nullptr);
    fs::remove_all(dir_);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

using Persistence = TempDir;

TEST_F(Persistence, AtomicWriteCreatesAndReplaces) {
  const auto p = path("file.txt");
  common::write_file_atomic(p, "first");
  EXPECT_EQ(slurp(p), "first");
  common::write_file_atomic(p, "second");
  EXPECT_EQ(slurp(p), "second");
  // No temp-file droppings after a clean pair of writes.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(Persistence, CrashDuringWritePreservesPreviousContents) {
  const auto p = path("file.txt");
  common::write_file_atomic(p, "durable");

  // Simulate the process dying after the temp file is written but before
  // the rename publishes it.
  common::set_atomic_write_test_hook(
      [](const std::string&) { throw std::runtime_error("killed"); });
  EXPECT_THROW(common::write_file_atomic(p, "torn"), std::runtime_error);
  EXPECT_EQ(slurp(p), "durable");

  // The next (uninterrupted) write goes through normally.
  common::set_atomic_write_test_hook(nullptr);
  common::write_file_atomic(p, "recovered");
  EXPECT_EQ(slurp(p), "recovered");
}

TEST_F(Persistence, CrashDuringSessionDumpKeepsPriorDumpLoadable) {
  // Regression for the original non-atomic writer: a crash mid-dump used
  // to truncate the archive. Now the previous dump must survive verbatim.
  CampaignResult first;
  first.name = "persist-test";
  first.targets = 1;
  TrajectoryResult t;
  t.pipeline_id = "P1";
  t.target_name = "T1";
  t.history.push_back(IterationRecord{.cycle = 1, .sequence = "ACDEFG"});
  first.trajectories.push_back(t);

  const auto p = path("dump.json");
  save_session_dump(first, p);

  auto second = first;
  second.name = "persist-test-2";
  common::set_atomic_write_test_hook(
      [](const std::string&) { throw std::runtime_error("killed"); });
  EXPECT_THROW(save_session_dump(second, p), std::runtime_error);
  common::set_atomic_write_test_hook(nullptr);

  const auto loaded = load_session_dump(p);
  EXPECT_EQ(loaded.name, "persist-test");
  ASSERT_EQ(loaded.trajectories.size(), 1u);
  EXPECT_EQ(loaded.trajectories[0].history.at(0).sequence, "ACDEFG");
}

TEST(CsvEscape, QuotesHostileFields) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(csv_escape("cr\rlf"), "\"cr\rlf\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, TrajectoriesCsvSurvivesHostileTargetName) {
  CampaignResult result;
  TrajectoryResult t;
  t.pipeline_id = "P,1";
  t.target_name = "PDZ \"domain\", variant\n2";
  t.history.push_back(IterationRecord{.cycle = 1, .sequence = "ACDE"});
  result.trajectories.push_back(t);

  const auto csv = trajectories_csv(result);
  // Exactly one record row (the embedded newline is inside quotes), and
  // the hostile fields appear in their RFC-4180 escaped forms.
  EXPECT_NE(csv.find("\"P,1\""), std::string::npos);
  EXPECT_NE(csv.find("\"PDZ \"\"domain\"\", variant\n2\""), std::string::npos);
  // Header + one logical record; quoted-aware field count on the record.
  const auto header_end = csv.find('\n');
  const std::string record = csv.substr(header_end + 1);
  std::size_t fields = 1;
  bool quoted = false;
  for (char c : record) {
    if (c == '"') quoted = !quoted;
    if (c == ',' && !quoted) ++fields;
  }
  EXPECT_EQ(fields, 11u);
}

TEST_F(Persistence, SessionDumpSchemaStaysV1) {
  // Checkpoints are schema v2 under a distinct kind; the finished-run
  // session dump must stay loadable as v1 (forward compatibility for
  // archives written before checkpoints existed).
  CampaignResult result;
  result.name = "v1";
  const auto p = path("dump.json");
  save_session_dump(result, p);
  const auto doc = common::Json::parse(slurp(p));
  EXPECT_EQ(static_cast<int>(doc.at("schema_version").as_number()), 1);
  EXPECT_EQ(load_session_dump(p).name, "v1");
}

TEST_F(Persistence, CheckpointLoaderRejectsSessionDumps) {
  CampaignResult result;
  result.name = "v1";
  const auto p = path("dump.json");
  save_session_dump(result, p);
  EXPECT_THROW((void)load_checkpoint(p), std::invalid_argument);
}

}  // namespace
}  // namespace impress::core
