// The Pipeline state machine (Stages 1-6M+7) exercised directly, without
// the runtime: actions, selection, retry logic, termination, sub-pipeline
// resumption.

#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "protein/fasta.hpp"

namespace impress::core {
namespace {

using Kind = Pipeline::Action::Kind;

struct Fixture {
  protein::DesignTarget target = protein::make_target(
      "PIPE-T", 88, protein::alpha_synuclein().tail(10));
  std::shared_ptr<MpnnGenerator> generator =
      std::make_shared<MpnnGenerator>(mpnn::SamplerConfig{});

  ProtocolConfig adaptive_config() {
    ProtocolConfig cfg;
    cfg.cycles = 4;
    cfg.adaptive = true;
    cfg.max_retries = 10;
    cfg.spawn_subpipelines = false;
    return cfg;
  }

  Pipeline make(ProtocolConfig cfg, int start_cycle = 0,
                std::optional<fold::FoldMetrics> baseline = std::nullopt) {
    return Pipeline("p0", target, target.start_complex(), cfg, generator,
                    fold::AlphaFold{}, common::Rng(7), start_cycle,
                    start_cycle > 0, baseline);
  }

  std::vector<mpnn::ScoredSequence> sequences(int n = 10) {
    std::vector<mpnn::ScoredSequence> out;
    common::Rng rng(3);
    for (int i = 0; i < n; ++i) {
      auto seq = target.start_receptor;
      seq.set(target.landscape.interface_positions()[0],
              static_cast<protein::AminoAcid>(rng.below(20)));
      out.push_back({std::move(seq), -1.0 - i * 0.1});
    }
    return out;
  }

  fold::Prediction prediction(double ptm, double plddt = 70.0,
                              double ipae = 12.0) {
    fold::Prediction p;
    fold::ModelPrediction m;
    m.metrics = fold::FoldMetrics{.plddt = plddt, .ptm = ptm, .ipae = ipae};
    m.structure = target.start_complex().structure;
    p.models.push_back(std::move(m));
    p.best_index = 0;
    return p;
  }
};

TEST(Pipeline, ConstructionValidates) {
  Fixture f;
  auto cfg = f.adaptive_config();
  cfg.cycles = 0;
  EXPECT_THROW(f.make(cfg), std::invalid_argument);
  cfg = f.adaptive_config();
  EXPECT_THROW(f.make(cfg, /*start_cycle=*/4), std::invalid_argument);
  EXPECT_THROW(Pipeline("x", f.target, f.target.start_complex(),
                        f.adaptive_config(), nullptr, fold::AlphaFold{},
                        common::Rng(1)),
               std::invalid_argument);
}

TEST(Pipeline, StartRequestsGenerator) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  const auto a = p.start();
  EXPECT_EQ(a.kind, Kind::kRunGenerator);
  EXPECT_FALSE(p.finished());
  EXPECT_EQ(p.cycle(), 0);
}

TEST(Pipeline, DoubleStartThrows) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  EXPECT_THROW((void)p.start(), std::logic_error);
}

TEST(Pipeline, OutOfOrderResultsThrow) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  EXPECT_THROW((void)p.on_generator_result(f.sequences()), std::logic_error);
  (void)p.start();
  EXPECT_THROW((void)p.on_fold_result(f.prediction(0.5)), std::logic_error);
}

TEST(Pipeline, GeneratorResultLeadsToFold) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  const auto a = p.on_generator_result(f.sequences());
  EXPECT_EQ(a.kind, Kind::kRunFold);
  ASSERT_TRUE(a.fold_input.has_value());
  EXPECT_EQ(a.fold_input->peptide().sequence, f.target.peptide);
}

TEST(Pipeline, AdaptiveSelectsTopLogLikelihood) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  auto seqs = f.sequences();
  // Mark one sequence as clearly best-ranked.
  seqs[7].log_likelihood = 0.0;
  const auto expected = seqs[7].sequence;
  const auto a = p.on_generator_result(std::move(seqs));
  EXPECT_EQ(a.fold_input->receptor().sequence, expected);
}

TEST(Pipeline, EmptyGeneratorResultTerminates) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  const auto a = p.on_generator_result({});
  EXPECT_EQ(a.kind, Kind::kTerminated);
  EXPECT_TRUE(p.finished());
}

TEST(Pipeline, FirstFoldAlwaysAccepted) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  const auto a = p.on_fold_result(f.prediction(0.1));  // poor, but baseline
  EXPECT_EQ(a.kind, Kind::kRunGenerator);              // next cycle
  EXPECT_EQ(p.cycle(), 1);
  ASSERT_EQ(p.history().size(), 1u);
  EXPECT_TRUE(p.history()[0].accepted);
  EXPECT_EQ(p.history()[0].cycle, 1);
}

TEST(Pipeline, DecliningResultRetriesNextCandidate) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  (void)p.on_fold_result(f.prediction(0.9, 90.0, 5.0));  // strong baseline
  (void)p.on_generator_result(f.sequences());
  const auto a = p.on_fold_result(f.prediction(0.2, 50.0, 25.0));  // decline
  EXPECT_EQ(a.kind, Kind::kRunFold);
  EXPECT_TRUE(a.reuse_features ==
              false);  // reuse_features_on_retry defaults false
  EXPECT_EQ(p.cycle(), 1);  // cycle not advanced
}

TEST(Pipeline, RetryReuseFlagHonorsConfig) {
  Fixture f;
  auto cfg = f.adaptive_config();
  cfg.reuse_features_on_retry = true;
  auto p = f.make(cfg);
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  (void)p.on_fold_result(f.prediction(0.9, 90.0, 5.0));
  (void)p.on_generator_result(f.sequences());
  const auto a = p.on_fold_result(f.prediction(0.2, 50.0, 25.0));
  EXPECT_EQ(a.kind, Kind::kRunFold);
  EXPECT_TRUE(a.reuse_features);
}

TEST(Pipeline, RetryWalksRankingInOrder) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  (void)p.on_fold_result(f.prediction(0.9, 90.0, 5.0));
  auto seqs = f.sequences();
  mpnn::sort_by_log_likelihood(seqs);
  (void)p.on_generator_result(f.sequences());
  const auto a1 = p.on_fold_result(f.prediction(0.2, 50.0, 25.0));
  EXPECT_EQ(a1.fold_input->receptor().sequence, seqs[1].sequence);
  const auto a2 = p.on_fold_result(f.prediction(0.2, 50.0, 25.0));
  EXPECT_EQ(a2.fold_input->receptor().sequence, seqs[2].sequence);
}

TEST(Pipeline, RetryBudgetExhaustionTerminates) {
  Fixture f;
  auto cfg = f.adaptive_config();
  cfg.max_retries = 3;
  auto p = f.make(cfg);
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  (void)p.on_fold_result(f.prediction(0.9, 90.0, 5.0));
  (void)p.on_generator_result(f.sequences());
  Pipeline::Action a{};
  for (int i = 0; i < 4; ++i) a = p.on_fold_result(f.prediction(0.1, 40.0, 28.0));
  EXPECT_EQ(a.kind, Kind::kTerminated);
  EXPECT_TRUE(p.finished());
  const auto r = p.result();
  EXPECT_TRUE(r.terminated_early);
  EXPECT_EQ(r.total_retries, 4);
}

TEST(Pipeline, CandidateExhaustionTerminatesEvenWithBudget) {
  Fixture f;
  auto cfg = f.adaptive_config();
  cfg.max_retries = 100;
  auto p = f.make(cfg);
  (void)p.start();
  (void)p.on_generator_result(f.sequences(3));  // only 3 candidates
  (void)p.on_fold_result(f.prediction(0.9, 90.0, 5.0));
  (void)p.on_generator_result(f.sequences(3));
  (void)p.on_fold_result(f.prediction(0.1, 40.0, 28.0));
  (void)p.on_fold_result(f.prediction(0.1, 40.0, 28.0));
  const auto a = p.on_fold_result(f.prediction(0.1, 40.0, 28.0));
  EXPECT_EQ(a.kind, Kind::kTerminated);
}

TEST(Pipeline, CompletesAfterMCycles) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  Pipeline::Action a{};
  for (int c = 1; c <= 4; ++c) {
    (void)p.on_generator_result(f.sequences());
    a = p.on_fold_result(f.prediction(0.2 + 0.2 * c, 50.0 + 10.0 * c,
                                      20.0 - 4.0 * c));
  }
  EXPECT_EQ(a.kind, Kind::kCompleted);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.cycle(), 4);
  EXPECT_EQ(p.history().size(), 4u);
  EXPECT_FALSE(p.result().terminated_early);
}

TEST(Pipeline, AcceptedModelSeedsNextCycle) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  auto seqs = f.sequences();
  mpnn::sort_by_log_likelihood(seqs);
  const auto accepted_receptor = seqs[0].sequence;
  (void)p.on_generator_result(f.sequences());
  (void)p.on_fold_result(f.prediction(0.5));
  // The pipeline's current complex now carries the accepted receptor.
  EXPECT_EQ(p.current().receptor().sequence, accepted_receptor);
}

TEST(Pipeline, NonAdaptiveAcceptsDeclines) {
  Fixture f;
  auto cfg = f.adaptive_config();
  cfg.adaptive = false;
  cfg.random_selection = true;
  auto p = f.make(cfg);
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  (void)p.on_fold_result(f.prediction(0.9, 90.0, 5.0));
  (void)p.on_generator_result(f.sequences());
  const auto a = p.on_fold_result(f.prediction(0.1, 40.0, 28.0));  // worse
  EXPECT_EQ(a.kind, Kind::kRunGenerator);  // accepted anyway
  EXPECT_EQ(p.cycle(), 2);
  EXPECT_EQ(p.result().total_retries, 0);
}

TEST(Pipeline, NonAdaptiveFinalCycleAcceptsDecline) {
  Fixture f;
  auto cfg = f.adaptive_config();
  cfg.adaptivity_in_final_cycle = false;
  auto p = f.make(cfg);
  (void)p.start();
  for (int c = 1; c <= 3; ++c) {
    (void)p.on_generator_result(f.sequences());
    (void)p.on_fold_result(f.prediction(0.2 * c, 60.0, 15.0));
  }
  (void)p.on_generator_result(f.sequences());
  const auto a = p.on_fold_result(f.prediction(0.05, 30.0, 29.0));  // bad
  EXPECT_EQ(a.kind, Kind::kCompleted);  // Fig-3 behaviour: no gate
  EXPECT_EQ(p.history().back().metrics.ptm, 0.05);
}

TEST(Pipeline, SubPipelineResumesAtStartCycle) {
  Fixture f;
  auto p = f.make(f.adaptive_config(), /*start_cycle=*/3);
  EXPECT_TRUE(p.is_subpipeline());
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  const auto a = p.on_fold_result(f.prediction(0.5));
  EXPECT_EQ(a.kind, Kind::kCompleted);  // one remaining cycle
  ASSERT_EQ(p.history().size(), 1u);
  EXPECT_EQ(p.history()[0].cycle, 4);
}

TEST(Pipeline, BaselineGatesFirstFold) {
  Fixture f;
  const fold::FoldMetrics baseline{.plddt = 90.0, .ptm = 0.9, .ipae = 4.0};
  auto p = f.make(f.adaptive_config(), 0, baseline);
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  const auto a = p.on_fold_result(f.prediction(0.2, 50.0, 25.0));
  EXPECT_EQ(a.kind, Kind::kRunFold);  // declined vs the inherited baseline
}

TEST(Pipeline, FastaContainsRankedCandidates) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  (void)p.on_generator_result(f.sequences(4));
  const auto fasta = p.current_fasta();
  const auto records = protein::from_fasta(fasta);
  ASSERT_EQ(records.size(), 4u);
  // Ranked: descriptions carry non-increasing log-likelihoods.
  EXPECT_NE(records[0].description.find("log_likelihood="), std::string::npos);
  EXPECT_EQ(records[0].sequence.size(), 88u);
}

TEST(Pipeline, IterationRecordsCarryGroundTruth) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  (void)p.on_fold_result(f.prediction(0.5));
  const auto& rec = p.history()[0];
  EXPECT_GT(rec.true_fitness, 0.0);
  EXPECT_LT(rec.true_fitness, 1.0);
  EXPECT_EQ(rec.sequence.size(), 88u);
  EXPECT_EQ(rec.retries, 0);
}

TEST(Pipeline, AbortForcesTermination) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  (void)p.start();
  p.abort();
  EXPECT_TRUE(p.finished());
  EXPECT_TRUE(p.result().terminated_early);
}

TEST(Pipeline, LastCompositeTracksBaseline) {
  Fixture f;
  auto p = f.make(f.adaptive_config());
  EXPECT_FALSE(p.last_composite().has_value());
  (void)p.start();
  (void)p.on_generator_result(f.sequences());
  (void)p.on_fold_result(f.prediction(0.5));
  ASSERT_TRUE(p.last_composite().has_value());
  EXPECT_GT(*p.last_composite(), 0.0);
}

}  // namespace
}  // namespace impress::core
