#include "core/report.hpp"

#include <gtest/gtest.h>

namespace impress::core {
namespace {

IterationRecord record(int cycle, double plddt, double ptm, double ipae) {
  IterationRecord r;
  r.cycle = cycle;
  r.metrics = fold::FoldMetrics{.plddt = plddt, .ptm = ptm, .ipae = ipae};
  r.accepted = true;
  return r;
}

CampaignResult synthetic_result() {
  CampaignResult r;
  r.name = "SYN";
  TrajectoryResult t1;
  t1.pipeline_id = "A";
  t1.target_name = "A";
  t1.history = {record(1, 60, 0.5, 15), record(2, 70, 0.6, 12),
                record(3, 80, 0.7, 9), record(4, 85, 0.8, 7)};
  TrajectoryResult t2;
  t2.pipeline_id = "B";
  t2.target_name = "B";
  t2.history = {record(1, 62, 0.52, 14), record(2, 72, 0.62, 11),
                record(3, 82, 0.72, 8), record(4, 87, 0.82, 6)};
  r.trajectories = {t1, t2};
  r.targets = 2;
  r.root_pipelines = 2;
  return r;
}

TEST(Report, MetricNamesAndDirections) {
  EXPECT_EQ(metric_name(Metric::kPlddt), "pLDDT");
  EXPECT_EQ(metric_name(Metric::kPtm), "pTM");
  EXPECT_EQ(metric_name(Metric::kIpae), "inter-chain pAE");
  EXPECT_TRUE(higher_is_better(Metric::kPlddt));
  EXPECT_TRUE(higher_is_better(Metric::kPtm));
  EXPECT_FALSE(higher_is_better(Metric::kIpae));
}

TEST(Report, MetricValueExtraction) {
  const fold::FoldMetrics m{.plddt = 77.0, .ptm = 0.66, .ipae = 9.5};
  EXPECT_DOUBLE_EQ(metric_value(m, Metric::kPlddt), 77.0);
  EXPECT_DOUBLE_EQ(metric_value(m, Metric::kPtm), 0.66);
  EXPECT_DOUBLE_EQ(metric_value(m, Metric::kIpae), 9.5);
}

TEST(Report, MetricByCycleShape) {
  const auto r = synthetic_result();
  const auto m = metric_by_cycle(r, Metric::kPlddt, 4);
  ASSERT_EQ(m.size(), 4u);
  for (const auto& cyc : m) EXPECT_EQ(cyc.size(), 2u);  // two targets
  EXPECT_DOUBLE_EQ(m[0][0], 60.0);
  EXPECT_DOUBLE_EQ(m[3][1], 87.0);
}

TEST(Report, MedianAtCycle) {
  const auto r = synthetic_result();
  EXPECT_DOUBLE_EQ(median_at_cycle(r, Metric::kPlddt, 1, 4), 61.0);
  EXPECT_DOUBLE_EQ(median_at_cycle(r, Metric::kPlddt, 4, 4), 86.0);
  EXPECT_DOUBLE_EQ(median_at_cycle(r, Metric::kPlddt, 0, 4), 0.0);  // guard
  EXPECT_DOUBLE_EQ(median_at_cycle(r, Metric::kPlddt, 5, 4), 0.0);
}

TEST(Report, NetDeltaFirstToLast) {
  const auto r = synthetic_result();
  EXPECT_DOUBLE_EQ(net_delta(r, Metric::kPlddt, 4), 25.0);
  EXPECT_NEAR(net_delta(r, Metric::kPtm, 4), 0.30, 1e-12);
  EXPECT_DOUBLE_EQ(net_delta(r, Metric::kIpae, 4), -8.0);
}

TEST(Report, CarryForwardOverPrunedCycles) {
  CampaignResult r;
  TrajectoryResult t;
  t.target_name = "X";
  t.history = {record(1, 60, 0.5, 15), record(2, 70, 0.6, 12)};
  t.terminated_early = true;
  r.trajectories = {t};
  const auto m = metric_by_cycle(r, Metric::kPlddt, 4);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m[2][0], 70.0);  // carried forward
  EXPECT_DOUBLE_EQ(m[3][0], 70.0);
}

TEST(Report, MultipleRecordsPerCellAveraged) {
  CampaignResult r;
  TrajectoryResult root, sub;
  root.target_name = "X";
  root.history = {record(2, 60, 0.5, 15)};
  sub.target_name = "X";
  sub.is_subpipeline = true;
  sub.history = {record(2, 80, 0.7, 9)};
  r.trajectories = {root, sub};
  const auto m = metric_by_cycle(r, Metric::kPlddt, 2);
  ASSERT_EQ(m[1].size(), 1u);
  EXPECT_DOUBLE_EQ(m[1][0], 70.0);
  // Cycle 1 has no record for X at all: nothing to report yet.
  EXPECT_TRUE(m[0].empty());
}

TEST(Report, Table1HasBothArms) {
  const auto r = synthetic_result();
  auto cont = r;
  cont.name = "CONT-V";
  auto im = r;
  im.name = "IM-RP";
  im.subpipelines = 3;
  const auto table = table1(cont, im, 4);
  const auto text = table.render();
  EXPECT_NE(text.find("CONT-V"), std::string::npos);
  EXPECT_NE(text.find("IM-RP"), std::string::npos);
  EXPECT_NE(text.find("N/A"), std::string::npos);  // CONT-V sub-PL column
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Report, MetricFigureRendersAllIterations) {
  const auto r = synthetic_result();
  const auto fig =
      render_metric_figure("Fig X", {&r}, Metric::kPtm, 4);
  EXPECT_NE(fig.find("iteration 1"), std::string::npos);
  EXPECT_NE(fig.find("iteration 4"), std::string::npos);
  EXPECT_NE(fig.find("pTM"), std::string::npos);
}

TEST(Report, UtilizationFigureIncludesPhases) {
  auto r = synthetic_result();
  r.makespan_h = 10.0;
  r.cpu_series = std::vector<double>(20, 0.5);
  r.gpu_series = std::vector<double>(20, 0.1);
  r.phase_hours = {{"bootstrap", 0.05}, {"exec_setup", 0.5}, {"running", 9.0}};
  r.utilization.cpu_active = 0.5;
  r.utilization.gpu_active = 0.1;
  const auto fig = render_utilization_figure(r, "Fig Y");
  EXPECT_NE(fig.find("CPU"), std::string::npos);
  EXPECT_NE(fig.find("GPU"), std::string::npos);
  EXPECT_NE(fig.find("bootstrap"), std::string::npos);
  EXPECT_NE(fig.find("exec_setup"), std::string::npos);
  EXPECT_NE(fig.find("running"), std::string::npos);
  EXPECT_NE(fig.find("avg CPU 50.0%"), std::string::npos);
}

}  // namespace
}  // namespace impress::core
