#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

std::vector<protein::DesignTarget> small_targets() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("CAMP-A", 84, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("CAMP-B", 90, protein::alpha_synuclein().tail(10)));
  return out;
}

TEST(CampaignConfig, PresetsMatchPaperArms) {
  const auto im = im_rp_campaign();
  EXPECT_EQ(im.name, "IM-RP");
  EXPECT_TRUE(im.protocol.adaptive);
  EXPECT_FALSE(im.protocol.random_selection);
  EXPECT_FALSE(im.coordinator.sequential);
  EXPECT_EQ(im.pilot.policy, rp::SchedulerPolicy::kBackfill);

  const auto cv = cont_v_campaign();
  EXPECT_EQ(cv.name, "CONT-V");
  EXPECT_FALSE(cv.protocol.adaptive);
  EXPECT_TRUE(cv.protocol.random_selection);
  EXPECT_TRUE(cv.coordinator.sequential);
  EXPECT_FALSE(cv.protocol.spawn_subpipelines);
}

TEST(Campaign, ContVProducesOneTrajectoryPerTargetPerCycle) {
  const auto targets = small_targets();
  Campaign campaign(cont_v_campaign(7));
  const auto r = campaign.run(targets);
  EXPECT_EQ(r.name, "CONT-V");
  EXPECT_EQ(r.targets, 2u);
  EXPECT_EQ(r.root_pipelines, 2u);
  EXPECT_EQ(r.subpipelines, 0u);
  EXPECT_EQ(r.fold_retries, 0u);
  // CONT-V never prunes: exactly cycles x targets accepted iterations.
  EXPECT_EQ(r.total_trajectories(),
            static_cast<std::size_t>(calibration::kCycles) * targets.size());
  EXPECT_EQ(r.failed_tasks, 0u);
}

TEST(Campaign, ResultsCarryComputeMetrics) {
  const auto targets = small_targets();
  Campaign campaign(cont_v_campaign(7));
  const auto r = campaign.run(targets);
  EXPECT_GT(r.makespan_h, 1.0);
  EXPECT_GT(r.utilization.cpu_active, 0.0);
  EXPECT_LT(r.utilization.cpu_active, 1.0);
  EXPECT_EQ(r.cpu_series.size(), 100u);
  EXPECT_EQ(r.gpu_series.size(), 100u);
  EXPECT_GT(r.phase_hours.at("running"), 0.0);
  EXPECT_GT(r.phase_hours.at("exec_setup"), 0.0);
  EXPECT_GT(r.phase_hours.at("bootstrap"), 0.0);
}

TEST(Campaign, ImRpEvaluatesAtLeastAsManyTrajectories) {
  const auto targets = small_targets();
  Campaign cont(cont_v_campaign(11));
  Campaign im(im_rp_campaign(11));
  const auto rc = cont.run(targets);
  const auto ri = im.run(targets);
  EXPECT_GE(ri.total_trajectories(), rc.total_trajectories());
  EXPECT_GE(ri.fold_tasks, rc.fold_tasks);
}

TEST(Campaign, GeneratorOverrideIsUsed) {
  auto cfg = im_rp_campaign(3);
  cfg.generator = std::make_shared<RandomMutagenesisGenerator>(10, 2);
  cfg.protocol.spawn_subpipelines = false;
  Campaign campaign(cfg);
  const auto targets = small_targets();
  const auto r = campaign.run(targets);
  EXPECT_GT(r.total_trajectories(), 0u);
}

TEST(Campaign, SeparateSessionsAreIndependent) {
  const auto targets = small_targets();
  Campaign a(im_rp_campaign(5));
  Campaign b(im_rp_campaign(5));
  const auto ra = a.run(targets);
  const auto rb = b.run(targets);
  // Identical configuration and seed => identical outcome.
  EXPECT_EQ(ra.total_trajectories(), rb.total_trajectories());
  EXPECT_DOUBLE_EQ(ra.makespan_h, rb.makespan_h);
  EXPECT_EQ(ra.fold_tasks, rb.fold_tasks);
}

TEST(Campaign, SeedChangesOutcome) {
  const auto targets = small_targets();
  const auto ra = Campaign(im_rp_campaign(1)).run(targets);
  const auto rb = Campaign(im_rp_campaign(2)).run(targets);
  // Some observable differs (makespans carry lognormal jitter).
  EXPECT_NE(ra.makespan_h, rb.makespan_h);
}

TEST(Campaign, ResumeContinuesFromBestDesigns) {
  const auto targets = small_targets();
  auto cfg = im_rp_campaign(5);
  cfg.protocol.spawn_subpipelines = false;
  const auto first = Campaign(cfg).run(targets);
  const double first_final =
      median_at_cycle(first, Metric::kPtm, calibration::kCycles,
                      calibration::kCycles);

  const auto second = resume_campaign(cfg, first, targets);
  EXPECT_EQ(second.name, "IM-RP-resumed");
  EXPECT_GT(second.total_trajectories(), 0u);
  // Resumed campaigns start from the previous best designs, so their
  // first-cycle medians begin near (or above) where the first run ended.
  const double resumed_start =
      median_at_cycle(second, Metric::kPtm, 1, calibration::kCycles);
  EXPECT_GT(resumed_start, first_final - 0.12);
  // True fitness of resumed starting points exceeds the original ones.
  double original_start_f = 0.0, resumed_start_f = 0.0;
  for (const auto& t : first.trajectories)
    if (!t.history.empty()) original_start_f += t.history.front().true_fitness;
  for (const auto& t : second.trajectories)
    if (!t.history.empty()) resumed_start_f += t.history.front().true_fitness;
  EXPECT_GT(resumed_start_f, original_start_f);
}

TEST(Campaign, ResumeWithEmptyPreviousIsPlainRun) {
  const auto targets = small_targets();
  auto cfg = cont_v_campaign(5);
  const CampaignResult empty;
  const auto r = resume_campaign(cfg, empty, targets);
  EXPECT_EQ(r.total_trajectories(),
            static_cast<std::size_t>(calibration::kCycles) * targets.size());
}

TEST(CampaignResult, TrajectoryCountingMatchesHistories) {
  const auto targets = small_targets();
  const auto r = Campaign(im_rp_campaign(9)).run(targets);
  std::size_t manual = 0;
  for (const auto& t : r.trajectories) manual += t.history.size();
  EXPECT_EQ(r.total_trajectories(), manual);
}

}  // namespace
}  // namespace impress::core
