#include "core/dpo_generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "core/campaign.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

const protein::DesignTarget& target() {
  static const auto t =
      protein::make_target("DPO-T", 80, protein::alpha_synuclein().tail(10));
  return t;
}

TEST(DpoGenerator, ConfigValidation) {
  DpoGenerator::Config bad;
  bad.num_sequences = 0;
  EXPECT_THROW(DpoGenerator{bad}, std::invalid_argument);
  bad = DpoGenerator::Config{};
  bad.temperature = 0.0;
  EXPECT_THROW(DpoGenerator{bad}, std::invalid_argument);
}

TEST(DpoGenerator, ProducesRequestedSequences) {
  DpoGenerator gen;
  common::Rng rng(1);
  const auto seqs =
      gen.generate(target().start_complex(), target().landscape, rng);
  EXPECT_EQ(seqs.size(), 10u);
  for (const auto& s : seqs) EXPECT_EQ(s.sequence.size(), 80u);
  EXPECT_EQ(gen.name(), "mprot-dpo");
}

TEST(DpoGenerator, UntrainedPolicyIsUniform) {
  // With zero logits, all self-scores are 0.
  DpoGenerator gen;
  common::Rng rng(2);
  for (const auto& s :
       gen.generate(target().start_complex(), target().landscape, rng))
    EXPECT_DOUBLE_EQ(s.log_likelihood, 0.0);
}

TEST(DpoGenerator, ObservePairsFormUpdates) {
  DpoGenerator gen;
  EXPECT_EQ(gen.updates(), 0u);
  const auto a = target().start_receptor;
  const auto b = a.with_mutation(0, protein::AminoAcid::kTrp);
  gen.observe(a, 0.5);
  EXPECT_EQ(gen.updates(), 0u);  // needs a pair
  gen.observe(b, 0.7);
  EXPECT_EQ(gen.updates(), 1u);
  gen.observe(a, 0.5);
  gen.observe(b, 0.9);
  EXPECT_EQ(gen.updates(), 2u);
}

TEST(DpoGenerator, IdenticalRewardsAreNoop) {
  DpoGenerator gen;
  const auto a = target().start_receptor;
  const auto b = a.with_mutation(0, protein::AminoAcid::kTrp);
  gen.observe(a, 0.5);
  gen.observe(b, 0.5);
  EXPECT_EQ(gen.updates(), 0u);
}

TEST(DpoGenerator, LearnsToPreferWinningResidues) {
  // Repeatedly prefer Trp over Gly at position 0; samples should shift.
  DpoGenerator::Config cfg;
  cfg.mutations_per_sequence = 80;  // resample every position
  cfg.num_sequences = 200;
  DpoGenerator gen(cfg);
  const auto base = target().start_receptor;
  const auto w = base.with_mutation(0, protein::AminoAcid::kTrp);
  const auto l = base.with_mutation(0, protein::AminoAcid::kGly);
  for (int i = 0; i < 12; ++i) {
    gen.observe(l, 0.3);
    gen.observe(w, 0.8);
  }
  common::Rng rng(3);
  const auto seqs =
      gen.generate(target().start_complex(), target().landscape, rng);
  int trp = 0, gly = 0;
  for (const auto& s : seqs) {
    if (s.sequence[0] == protein::AminoAcid::kTrp) ++trp;
    if (s.sequence[0] == protein::AminoAcid::kGly) ++gly;
  }
  EXPECT_GT(trp, gly + 20);
}

TEST(DpoGenerator, LengthMismatchObservationsIgnored) {
  DpoGenerator gen;
  gen.observe(target().start_receptor, 0.5);
  gen.observe(protein::Sequence::from_string("MKV"), 0.9);
  EXPECT_EQ(gen.updates(), 0u);  // cross-target pair dropped
}

TEST(DpoGenerator, ThreadSafeObserve) {
  DpoGenerator gen;
  const auto a = target().start_receptor;
  const auto b = a.with_mutation(1, protein::AminoAcid::kArg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      // Pairing is by length, so interleaving may pair a-with-a across
      // threads; identical rewards would make that pair a gap-0 no-op and
      // the final count scheduling-dependent. Distinct rewards keep every
      // consumed pair countable whatever the interleaving.
      for (int i = 0; i < 250; ++i) {
        gen.observe(a, 0.4 + 1e-9 * (t * 500 + 2 * i));
        gen.observe(b, 0.6 + 1e-9 * (t * 500 + 2 * i + 1));
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(gen.updates(), 1000u);
}

TEST(DpoGenerator, RunsInsideFullCampaign) {
  // MProt-DPO-style arm: structure-blind learning generator through the
  // whole middleware. It must function (and learn) end to end.
  auto cfg = im_rp_campaign(42);
  auto gen = std::make_shared<DpoGenerator>();
  cfg.generator = gen;
  cfg.protocol.spawn_subpipelines = false;
  std::vector<protein::DesignTarget> targets;
  targets.push_back(
      protein::make_target("DPO-E2E", 84, protein::alpha_synuclein().tail(10)));
  const auto r = Campaign(cfg).run(targets);
  EXPECT_GT(r.total_trajectories(), 0u);
  EXPECT_GT(gen->updates(), 0u);  // feedback loop actually closed
}

}  // namespace
}  // namespace impress::core
