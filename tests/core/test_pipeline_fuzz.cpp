// Pipeline state-machine fuzzing: drive a Pipeline with randomized
// prediction streams and assert that for ANY input it terminates within
// bounded work, never wedges, and keeps its bookkeeping invariants.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

using Kind = Pipeline::Action::Kind;

struct FuzzParams {
  std::uint64_t seed;
  bool adaptive;
  bool refinement;
  int max_retries;
};

class PipelineFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(PipelineFuzz, TerminatesWithInvariantsForAnyPredictionStream) {
  const auto [seed, adaptive, refinement, max_retries] = GetParam();
  const auto target = protein::make_target(
      "FUZZ" + std::to_string(seed), 85, protein::alpha_synuclein().tail(10));
  auto generator = std::make_shared<MpnnGenerator>(mpnn::SamplerConfig{});

  ProtocolConfig cfg;
  cfg.cycles = 4;
  cfg.adaptive = adaptive;
  cfg.random_selection = !adaptive;
  cfg.max_retries = max_retries;
  cfg.backbone_refinement = refinement;
  cfg.spawn_subpipelines = false;

  Pipeline pipeline("fz", target, target.start_complex(), cfg, generator,
                    fold::AlphaFold{}, common::Rng(seed));
  common::Rng rng(seed * 7919 + 1);
  common::Rng science(seed * 104729 + 3);

  auto random_prediction = [&] {
    fold::Prediction p;
    fold::ModelPrediction m;
    m.metrics = fold::FoldMetrics{.plddt = rng.uniform(30.0, 95.0),
                                  .ptm = rng.uniform(0.2, 0.95),
                                  .ipae = rng.uniform(2.0, 28.0)};
    m.structure = target.start_complex().structure;
    p.models.push_back(std::move(m));
    return p;
  };

  auto action = pipeline.start();
  int steps = 0;
  // Bound: cycles * (1 generator + (retries+1) * (refine + fold)) plus
  // slack. Anything beyond that means the state machine loops.
  const int bound = cfg.cycles * (1 + (cfg.max_retries + 2) * 2) + 16;
  while (action.kind != Kind::kCompleted && action.kind != Kind::kTerminated) {
    ASSERT_LT(++steps, bound) << "state machine did not terminate";
    switch (action.kind) {
      case Kind::kRunGenerator:
        action = pipeline.on_generator_result(generator->generate(
            pipeline.current(), target.landscape, science));
        break;
      case Kind::kRunRefine:
        ASSERT_TRUE(refinement);
        ASSERT_TRUE(action.fold_input.has_value());
        action = pipeline.on_refine_result(std::move(*action.fold_input));
        break;
      case Kind::kRunFold:
        ASSERT_TRUE(action.fold_input.has_value());
        // The fold input always carries the right chains.
        ASSERT_EQ(action.fold_input->receptor().size(), 85u);
        ASSERT_EQ(action.fold_input->peptide().sequence.to_string(),
                  "EGYQDYEPEA");
        action = pipeline.on_fold_result(random_prediction());
        break;
      default:
        FAIL() << "unexpected action";
    }
  }

  EXPECT_TRUE(pipeline.finished());
  const auto result = pipeline.result();
  // History invariants hold for every random stream.
  EXPECT_LE(result.history.size(), static_cast<std::size_t>(cfg.cycles));
  int prev_cycle = 0;
  for (const auto& rec : result.history) {
    EXPECT_EQ(rec.cycle, prev_cycle + 1);  // no gaps, no repeats
    prev_cycle = rec.cycle;
    EXPECT_TRUE(rec.accepted);
    EXPECT_LE(rec.retries, cfg.max_retries);
    EXPECT_FALSE(rec.sequence.empty());
  }
  if (!adaptive) {
    // Non-adaptive runs never retry and never terminate early.
    EXPECT_EQ(result.total_retries, 0);
    EXPECT_FALSE(result.terminated_early);
    EXPECT_EQ(result.history.size(), static_cast<std::size_t>(cfg.cycles));
  }
  if (result.terminated_early) {
    EXPECT_LT(result.history.size(), static_cast<std::size_t>(cfg.cycles));
  }
}

std::vector<FuzzParams> fuzz_matrix() {
  std::vector<FuzzParams> out;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    out.push_back({seed, true, false, 10});
    out.push_back({seed, true, true, 3});
    out.push_back({seed, false, false, 0});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Streams, PipelineFuzz,
                         ::testing::ValuesIn(fuzz_matrix()));

}  // namespace
}  // namespace impress::core
