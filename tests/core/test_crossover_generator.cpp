#include "core/crossover_generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/campaign.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

const protein::DesignTarget& target() {
  static const auto t =
      protein::make_target("XO-T", 84, protein::alpha_synuclein().tail(10));
  return t;
}

std::shared_ptr<MpnnGenerator> inner() {
  return std::make_shared<MpnnGenerator>(mpnn::SamplerConfig{});
}

TEST(CrossoverGenerator, ConfigValidation) {
  EXPECT_THROW(CrossoverGenerator(nullptr), std::invalid_argument);
  CrossoverGenerator::Config bad;
  bad.crossover_fraction = 1.5;
  EXPECT_THROW(CrossoverGenerator(inner(), bad), std::invalid_argument);
  bad = CrossoverGenerator::Config{};
  bad.population_size = 1;
  EXPECT_THROW(CrossoverGenerator(inner(), bad), std::invalid_argument);
}

TEST(CrossoverGenerator, NameAnnotatesInner) {
  const CrossoverGenerator gen(inner());
  EXPECT_EQ(gen.name(), "proteinmpnn+crossover");
}

TEST(CrossoverGenerator, WithoutParentsDelegatesEntirely) {
  const CrossoverGenerator gen(inner());
  common::Rng r1(1), r2(1);
  const auto plain = inner()->generate(target().start_complex(),
                                       target().landscape, r1);
  const auto wrapped =
      gen.generate(target().start_complex(), target().landscape, r2);
  ASSERT_EQ(plain.size(), wrapped.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(plain[i].sequence, wrapped[i].sequence);
}

TEST(CrossoverGenerator, PopulationIsElitistAndBounded) {
  CrossoverGenerator::Config cfg;
  cfg.population_size = 3;
  const CrossoverGenerator gen(inner(), cfg);
  const auto base = target().start_receptor;
  for (int i = 0; i < 10; ++i)
    gen.observe(base.with_mutation(0, static_cast<protein::AminoAcid>(i)),
                0.1 * i);
  EXPECT_EQ(gen.population(base.size()), 3u);
}

TEST(CrossoverGenerator, PopulationsArePerLength) {
  const CrossoverGenerator gen(inner());
  gen.observe(target().start_receptor, 0.5);
  gen.observe(protein::Sequence::from_string("MKVLA"), 0.5);
  EXPECT_EQ(gen.population(84), 1u);
  EXPECT_EQ(gen.population(5), 1u);
  EXPECT_EQ(gen.population(99), 0u);
}

TEST(CrossoverGenerator, RecombinantsMixParentPocketResidues) {
  // Two parents with distinct, recognizable pocket residues; with
  // mixing=0.5 and full crossover, children must draw from both.
  const auto& iface = target().landscape.interface_positions();
  auto parent_a = target().start_receptor;
  auto parent_b = target().start_receptor;
  for (auto pos : iface) {
    parent_a.set(pos, protein::AminoAcid::kTrp);
    parent_b.set(pos, protein::AminoAcid::kGly);
  }
  CrossoverGenerator::Config cfg;
  cfg.crossover_fraction = 1.0;
  const CrossoverGenerator gen(inner(), cfg);
  gen.observe(parent_a, 0.9);
  gen.observe(parent_b, 0.85);

  common::Rng rng(3);
  const auto proposals =
      gen.generate(target().start_complex(), target().landscape, rng);
  bool found_mixed = false;
  for (const auto& p : proposals) {
    std::size_t trp = 0, gly = 0, other = 0;
    for (auto pos : iface) {
      if (p.sequence[pos] == protein::AminoAcid::kTrp) ++trp;
      else if (p.sequence[pos] == protein::AminoAcid::kGly) ++gly;
      else ++other;
    }
    if (trp > 0 && gly > 0 && other == 0) found_mixed = true;
  }
  EXPECT_TRUE(found_mixed) << "no recombinant drew pocket residues from both "
                              "parents";
}

TEST(CrossoverGenerator, RunsInsideFullCampaign) {
  auto cfg = im_rp_campaign(42);
  auto gen = std::make_shared<CrossoverGenerator>(
      std::make_shared<MpnnGenerator>(cfg.sampler));
  cfg.generator = gen;
  cfg.protocol.spawn_subpipelines = false;
  std::vector<protein::DesignTarget> targets;
  targets.push_back(
      protein::make_target("XO-E2E", 84, protein::alpha_synuclein().tail(10)));
  const auto r = Campaign(cfg).run(targets);
  EXPECT_GT(r.total_trajectories(), 0u);
  EXPECT_GT(gen->population(84), 0u);  // feedback loop fed the population
  EXPECT_EQ(r.failed_tasks, 0u);
}

}  // namespace
}  // namespace impress::core
