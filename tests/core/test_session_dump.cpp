#include "core/session_dump.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "protein/datasets.hpp"

namespace impress::core {
namespace {

CampaignResult real_result() {
  std::vector<protein::DesignTarget> targets;
  targets.push_back(
      protein::make_target("DUMP-A", 84, protein::alpha_synuclein().tail(10)));
  targets.push_back(
      protein::make_target("DUMP-B", 88, protein::alpha_synuclein().tail(10)));
  return Campaign(im_rp_campaign(42)).run(targets);
}

void expect_equal(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_DOUBLE_EQ(a.makespan_h, b.makespan_h);
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_EQ(a.root_pipelines, b.root_pipelines);
  EXPECT_EQ(a.subpipelines, b.subpipelines);
  EXPECT_EQ(a.generator_tasks, b.generator_tasks);
  EXPECT_EQ(a.fold_tasks, b.fold_tasks);
  EXPECT_EQ(a.fold_retries, b.fold_retries);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_DOUBLE_EQ(a.utilization.cpu_active, b.utilization.cpu_active);
  EXPECT_DOUBLE_EQ(a.utilization.gpu_allocated, b.utilization.gpu_allocated);
  EXPECT_EQ(a.phase_hours, b.phase_hours);
  EXPECT_EQ(a.cpu_series, b.cpu_series);
  EXPECT_EQ(a.gpu_series, b.gpu_series);
  EXPECT_EQ(a.gantt, b.gantt);
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    const auto& ta = a.trajectories[i];
    const auto& tb = b.trajectories[i];
    EXPECT_EQ(ta.pipeline_id, tb.pipeline_id);
    EXPECT_EQ(ta.target_name, tb.target_name);
    EXPECT_EQ(ta.is_subpipeline, tb.is_subpipeline);
    EXPECT_EQ(ta.terminated_early, tb.terminated_early);
    EXPECT_EQ(ta.total_retries, tb.total_retries);
    ASSERT_EQ(ta.history.size(), tb.history.size());
    for (std::size_t k = 0; k < ta.history.size(); ++k) {
      EXPECT_EQ(ta.history[k].cycle, tb.history[k].cycle);
      EXPECT_DOUBLE_EQ(ta.history[k].metrics.ptm, tb.history[k].metrics.ptm);
      EXPECT_DOUBLE_EQ(ta.history[k].true_fitness, tb.history[k].true_fitness);
      EXPECT_EQ(ta.history[k].sequence, tb.history[k].sequence);
      EXPECT_EQ(ta.history[k].accepted, tb.history[k].accepted);
    }
  }
}

TEST(SessionDump, JsonRoundTripIsLossless) {
  const auto original = real_result();
  const auto doc = to_json(original);
  // Through text, as a real dump would go.
  const auto restored =
      campaign_result_from_json(common::Json::parse(doc.dump(2)));
  expect_equal(original, restored);
}

TEST(SessionDump, FileRoundTrip) {
  const auto original = real_result();
  const auto dir =
      std::filesystem::temp_directory_path() / "impress_session_dump";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "campaign.json").string();
  save_session_dump(original, path);
  const auto restored = load_session_dump(path);
  expect_equal(original, restored);
  std::filesystem::remove_all(dir);
}

TEST(SessionDump, AnalysisWorksOnRestoredResults) {
  // The whole report layer must run on a loaded dump (the use case:
  // re-render figures without re-simulating).
  const auto original = real_result();
  const auto restored =
      campaign_result_from_json(common::Json::parse(to_json(original).dump()));
  EXPECT_EQ(restored.total_trajectories(), original.total_trajectories());
}

TEST(SessionDump, LockdepSectionRoundTripsAndOmitsWhenEmpty) {
  auto result = real_result();
  // No violations (the overwhelmingly common case): the key must be
  // absent so dumps stay byte-identical to pre-lockdep schema v1 output.
  ASSERT_TRUE(result.lockdep.empty());
  EXPECT_FALSE(to_json(result).contains("lockdep"));
  // With violations recorded, the lines survive a text round trip.
  result.lockdep = {"lock-order cycle: A -> B -> A",
                    "blocking call X while holding Y"};
  const auto restored =
      campaign_result_from_json(common::Json::parse(to_json(result).dump(2)));
  EXPECT_EQ(restored.lockdep, result.lockdep);
}

TEST(SessionDump, RejectsWrongDocuments) {
  EXPECT_THROW((void)campaign_result_from_json(common::Json::parse("[]")),
               std::invalid_argument);
  EXPECT_THROW(
      (void)campaign_result_from_json(common::Json::parse("{\"x\":1}")),
      std::invalid_argument);
  EXPECT_THROW((void)campaign_result_from_json(
                   common::Json::parse("{\"schema_version\":99}")),
               std::invalid_argument);
}

TEST(SessionDump, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_session_dump("/nonexistent/impress-dump.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace impress::core
