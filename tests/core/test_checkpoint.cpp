// Checkpoint document round-trips: the serialized form must reproduce
// every bit the resume path consumes — rng stream positions, cache keys,
// span ids, clock values — across parse(dump(x)).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

namespace fs = std::filesystem;

std::vector<protein::DesignTarget> targets2() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("CKPT-A", 86, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("CKPT-B", 90, protein::alpha_synuclein().tail(10)));
  return out;
}

class CheckpointDoc : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("impress_ckpt_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path() const { return (dir_ / "checkpoint.json").string(); }
  fs::path dir_;
};

// Cut a real checkpoint by running a campaign with a tight cadence; the
// last document written is a full mid-flight snapshot with live rng
// streams, cache contents and observability state.
CampaignCheckpoint real_checkpoint(const std::string& dir,
                                   bool observability = false) {
  auto cfg = im_rp_campaign(42);
  cfg.checkpoint.directory = dir;
  cfg.checkpoint.every_n_completions = 3;
  cfg.session.enable_tracing = observability;
  cfg.session.enable_metrics = observability;
  const auto targets = targets2();
  (void)Campaign(cfg).run(targets);
  return load_checkpoint(dir + "/checkpoint.json");
}

TEST_F(CheckpointDoc, RealCheckpointRoundTripsBitExactly) {
  const auto checkpoint = real_checkpoint(dir_.string());
  EXPECT_GT(checkpoint.ordinal, 0u);
  EXPECT_GT(checkpoint.now, 0.0);
  EXPECT_FALSE(checkpoint.coordinator.pipelines.empty());
  ASSERT_EQ(checkpoint.pilots.size(), 1u);

  // json -> struct -> json must be the identity on the document.
  const auto doc = to_json(checkpoint);
  const auto back = to_json(campaign_checkpoint_from_json(doc));
  EXPECT_EQ(doc.dump(), back.dump());
}

TEST_F(CheckpointDoc, ObservabilityStateRoundTrips) {
  const auto checkpoint =
      real_checkpoint(dir_.string(), /*observability=*/true);
  EXPECT_FALSE(checkpoint.trace.empty());
  EXPECT_NE(checkpoint.campaign_span, 0u);
  EXPECT_FALSE(checkpoint.metrics.empty());
  // The document records its own write marker (span + counter recorded
  // before the harvest), so a resumed tracer continues identically.
  EXPECT_GE(checkpoint.metrics.counter("impress_checkpoints_written"), 1u);

  const auto doc = to_json(checkpoint);
  const auto back = to_json(campaign_checkpoint_from_json(doc));
  EXPECT_EQ(doc.dump(), back.dump());
}

TEST_F(CheckpointDoc, SaveLoadPreservesDocument) {
  const auto checkpoint = real_checkpoint(dir_.string());
  const auto p = (dir_ / "copy.json").string();
  save_checkpoint(checkpoint, p);
  const auto loaded = load_checkpoint(p);
  EXPECT_EQ(to_json(checkpoint).dump(), to_json(loaded).dump());
}

TEST_F(CheckpointDoc, LoaderRejectsWrongKindAndVersion) {
  common::Json::Object o;
  o["schema_version"] = 2;
  o["kind"] = std::string("impress.session_dump");
  EXPECT_THROW((void)campaign_checkpoint_from_json(common::Json(o)),
               std::invalid_argument);
  o["kind"] = std::string("impress.checkpoint");
  o["schema_version"] = 1;
  EXPECT_THROW((void)campaign_checkpoint_from_json(common::Json(o)),
               std::invalid_argument);
  EXPECT_THROW((void)campaign_checkpoint_from_json(common::Json(3.0)),
               std::invalid_argument);
}

TEST(FoldCacheSnapshot, RoundTripPreservesContentsAndRecency) {
  fold::FoldCache::Config config{.capacity = 8, .shards = 2};
  fold::FoldCache cache(config);
  // Distinct keys; values only need distinguishable best_index.
  for (std::uint64_t k = 1; k <= 6; ++k) {
    fold::Prediction p;
    p.models.resize(1);
    p.models[0].metrics.plddt = static_cast<double>(k);
    cache.insert(k * 0x9e3779b97f4a7c15ULL, p);
  }
  // Touch some entries to perturb recency order.
  (void)cache.lookup(2 * 0x9e3779b97f4a7c15ULL);
  (void)cache.lookup(5 * 0x9e3779b97f4a7c15ULL);
  (void)cache.lookup(12345u);  // miss

  const auto snap = cache.snapshot();
  fold::FoldCache restored(config);
  restored.restore(snap);

  EXPECT_EQ(restored.stats().hits, cache.stats().hits);
  EXPECT_EQ(restored.stats().misses, cache.stats().misses);
  EXPECT_EQ(restored.stats().evictions, cache.stats().evictions);
  for (std::uint64_t k = 1; k <= 6; ++k) {
    const auto hit = restored.lookup(k * 0x9e3779b97f4a7c15ULL);
    ASSERT_TRUE(hit.has_value()) << "key " << k;
    EXPECT_DOUBLE_EQ(hit->models.at(0).metrics.plddt, static_cast<double>(k));
  }
  // Snapshot-of-restore equals the original snapshot (same shards, same
  // MRU order) once the verification lookups above are accounted for —
  // compare the raw key layout instead of counters.
  auto layout = [](const fold::FoldCache::Snapshot& s) {
    std::vector<std::vector<std::uint64_t>> keys;
    for (const auto& shard : s.shards) {
      keys.emplace_back();
      for (const auto& e : shard) keys.back().push_back(e.key);
    }
    return keys;
  };
  fold::FoldCache untouched(config);
  untouched.restore(snap);
  EXPECT_EQ(layout(untouched.snapshot()), layout(snap));
}

TEST(FoldCacheSnapshot, RestoreRejectsShardMismatch) {
  fold::FoldCache a(fold::FoldCache::Config{.capacity = 8, .shards = 2});
  fold::FoldCache b(fold::FoldCache::Config{.capacity = 8, .shards = 4});
  EXPECT_THROW(b.restore(a.snapshot()), std::invalid_argument);
}

}  // namespace
}  // namespace impress::core
