// The optional backbone-refinement stage: pipeline state machine plumbing
// and end-to-end behaviour through the coordinator.

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

using Kind = Pipeline::Action::Kind;

struct Fixture {
  protein::DesignTarget target = protein::make_target(
      "REF-T", 86, protein::alpha_synuclein().tail(10));
  std::shared_ptr<MpnnGenerator> generator =
      std::make_shared<MpnnGenerator>(mpnn::SamplerConfig{});

  Pipeline make(bool refinement) {
    ProtocolConfig cfg;
    cfg.cycles = 2;
    cfg.backbone_refinement = refinement;
    cfg.spawn_subpipelines = false;
    return Pipeline("r0", target, target.start_complex(), cfg, generator,
                    fold::AlphaFold{}, common::Rng(7));
  }

  std::vector<mpnn::ScoredSequence> sequences() {
    common::Rng rng(3);
    return mpnn::Mpnn(mpnn::SamplerConfig{})
        .design(target.start_complex(), target.landscape, rng);
  }

  fold::Prediction prediction() {
    fold::Prediction p;
    fold::ModelPrediction m;
    m.metrics = fold::FoldMetrics{.plddt = 70.0, .ptm = 0.7, .ipae = 10.0};
    m.structure = target.start_complex().structure;
    p.models.push_back(std::move(m));
    return p;
  }
};

TEST(Refinement, PipelineInsertsRefineAction) {
  Fixture f;
  auto p = f.make(true);
  (void)p.start();
  const auto a = p.on_generator_result(f.sequences());
  EXPECT_EQ(a.kind, Kind::kRunRefine);
  ASSERT_TRUE(a.fold_input.has_value());
  EXPECT_FALSE(a.refined);
}

TEST(Refinement, RefineResultProceedsToFoldWithFlag) {
  Fixture f;
  auto p = f.make(true);
  (void)p.start();
  auto a = p.on_generator_result(f.sequences());
  a = p.on_refine_result(std::move(*a.fold_input));
  EXPECT_EQ(a.kind, Kind::kRunFold);
  EXPECT_TRUE(a.refined);
}

TEST(Refinement, DisabledPipelineSkipsStraightToFold) {
  Fixture f;
  auto p = f.make(false);
  (void)p.start();
  const auto a = p.on_generator_result(f.sequences());
  EXPECT_EQ(a.kind, Kind::kRunFold);
  EXPECT_FALSE(a.refined);
}

TEST(Refinement, UnexpectedRefineResultThrows) {
  Fixture f;
  auto p = f.make(false);
  (void)p.start();
  EXPECT_THROW((void)p.on_refine_result(f.target.start_complex()),
               std::logic_error);
}

TEST(Refinement, RetriesAlsoPassThroughRefinement) {
  Fixture f;
  ProtocolConfig cfg;
  cfg.cycles = 2;
  cfg.backbone_refinement = true;
  cfg.max_retries = 5;
  Pipeline p("r1", f.target, f.target.start_complex(), cfg, f.generator,
             fold::AlphaFold{}, common::Rng(7), 0, false,
             fold::FoldMetrics{.plddt = 95.0, .ptm = 0.95, .ipae = 3.0});
  (void)p.start();
  auto a = p.on_generator_result(f.sequences());
  ASSERT_EQ(a.kind, Kind::kRunRefine);
  a = p.on_refine_result(std::move(*a.fold_input));
  ASSERT_EQ(a.kind, Kind::kRunFold);
  // Decline against the strong baseline: retry goes through refine again.
  a = p.on_fold_result(f.prediction());
  EXPECT_EQ(a.kind, Kind::kRunRefine);
}

TEST(Refinement, EndToEndCampaignRunsRefineTasks) {
  auto cfg = im_rp_campaign(42);
  cfg.protocol.backbone_refinement = true;
  cfg.protocol.spawn_subpipelines = false;
  std::vector<protein::DesignTarget> targets;
  targets.push_back(
      protein::make_target("REF-E2E", 84, protein::alpha_synuclein().tail(10)));
  const auto r = Campaign(cfg).run(targets);
  EXPECT_GT(r.total_trajectories(), 0u);
  EXPECT_EQ(r.refine_tasks, r.fold_tasks);  // one relax per prediction
  EXPECT_EQ(r.failed_tasks, 0u);
}

TEST(Refinement, OffByDefaultEverywhere) {
  EXPECT_FALSE(calibration::im_rp_protocol().backbone_refinement);
  EXPECT_FALSE(calibration::cont_v_protocol().backbone_refinement);
  const auto r = Campaign(im_rp_campaign(42)).run(
      std::vector<protein::DesignTarget>{protein::make_target(
          "REF-OFF", 84, protein::alpha_synuclein().tail(10))});
  EXPECT_EQ(r.refine_tasks, 0u);
}

}  // namespace
}  // namespace impress::core
