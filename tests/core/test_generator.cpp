#include "core/generator.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

const protein::DesignTarget& target() {
  static const auto t =
      protein::make_target("GEN-T", 86, protein::alpha_synuclein().tail(10));
  return t;
}

TEST(MpnnGenerator, DelegatesToModel) {
  mpnn::SamplerConfig cfg;
  cfg.num_sequences = 7;
  const MpnnGenerator gen(cfg);
  EXPECT_EQ(gen.name(), "proteinmpnn");
  common::Rng rng(1);
  const auto seqs =
      gen.generate(target().start_complex(), target().landscape, rng);
  EXPECT_EQ(seqs.size(), 7u);
}

TEST(RandomMutagenesis, ProducesRequestedCountAndLength) {
  const RandomMutagenesisGenerator gen(12, 3);
  EXPECT_EQ(gen.name(), "random-mutagenesis");
  common::Rng rng(2);
  const auto seqs =
      gen.generate(target().start_complex(), target().landscape, rng);
  EXPECT_EQ(seqs.size(), 12u);
  for (const auto& s : seqs) {
    EXPECT_EQ(s.sequence.size(), 86u);
    EXPECT_LE(s.sequence.hamming_distance(target().start_receptor), 3u);
  }
}

TEST(RandomMutagenesis, MutatesAnywhereInReceptor) {
  // Unlike the structure-conditioned generator, random mutagenesis can
  // touch scaffold positions.
  const RandomMutagenesisGenerator gen(300, 2);
  common::Rng rng(3);
  const auto& iface = target().landscape.interface_positions();
  bool touched_scaffold = false;
  for (const auto& s :
       gen.generate(target().start_complex(), target().landscape, rng)) {
    for (std::size_t pos = 0; pos < s.sequence.size(); ++pos) {
      if (s.sequence[pos] != target().start_receptor[pos] &&
          !std::binary_search(iface.begin(), iface.end(), pos))
        touched_scaffold = true;
    }
  }
  EXPECT_TRUE(touched_scaffold);
}

TEST(RandomMutagenesis, WeakerProposalsThanMpnn) {
  // The structure-blind baseline should produce lower-fitness proposals on
  // average — the reason the paper prefers structure-conditioned design.
  mpnn::SamplerConfig mpnn_cfg;
  mpnn_cfg.num_sequences = 100;
  const MpnnGenerator mpnn_gen(mpnn_cfg);
  const RandomMutagenesisGenerator random_gen(100, 5);
  common::Rng r1(4), r2(4);
  auto mean_fitness = [&](const SequenceGenerator& gen, common::Rng& rng) {
    double sum = 0.0;
    const auto seqs =
        gen.generate(target().start_complex(), target().landscape, rng);
    for (const auto& s : seqs) sum += target().landscape.fitness(s.sequence);
    return sum / static_cast<double>(seqs.size());
  };
  EXPECT_GT(mean_fitness(mpnn_gen, r1), mean_fitness(random_gen, r2));
}

TEST(RandomMutagenesis, DeterministicInRng) {
  const RandomMutagenesisGenerator gen(5, 2);
  common::Rng r1(5), r2(5);
  const auto a = gen.generate(target().start_complex(), target().landscape, r1);
  const auto b = gen.generate(target().start_complex(), target().landscape, r2);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].sequence, b[i].sequence);
}

TEST(GeneratorInterface, PolymorphicUse) {
  std::vector<std::shared_ptr<const SequenceGenerator>> gens{
      std::make_shared<MpnnGenerator>(mpnn::SamplerConfig{}),
      std::make_shared<RandomMutagenesisGenerator>(10, 2)};
  common::Rng rng(6);
  for (const auto& g : gens) {
    const auto seqs =
        g->generate(target().start_complex(), target().landscape, rng);
    EXPECT_EQ(seqs.size(), 10u);
    EXPECT_FALSE(g->name().empty());
  }
}

}  // namespace
}  // namespace impress::core
