// TSan-targeted stress tests for the MPMC Channel.
//
// These tests are not about assertions first — they construct the
// interleavings in which a real synchronization bug in Channel shows up
// as a ThreadSanitizer report (or a deadlock -> ctest timeout) instead of
// a rare flake: racing close() against blocked senders/receivers, the
// receive_for deadline against close, and tri-state try_receive against
// concurrent producers. Run them under `cmake --preset tsan`.

#include "common/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace impress::common {
namespace {

using namespace std::chrono_literals;

// Payload with heap-allocated internals: a racy handoff becomes a TSan
// report on the string buffer, not a silent torn int.
struct Payload {
  std::string blob;
  int seq = 0;
};

TEST(StressChannel, MpmcSendReceiveCloseRace) {
  for (int round = 0; round < 6; ++round) {
    Channel<Payload> ch(8);
    std::atomic<int> sent{0};
    std::atomic<int> received{0};
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int p = 0; p < 4; ++p)
      threads.emplace_back([&, p] {
        for (int i = 0; i < 400; ++i) {
          if (!ch.send(Payload{std::string(64, static_cast<char>('a' + p)), i}))
            return;  // close() won the race
          sent.fetch_add(1, std::memory_order_relaxed);
        }
      });
    for (int c = 0; c < 4; ++c)
      threads.emplace_back([&] {
        while (auto v = ch.receive()) {
          ASSERT_EQ(v->blob.size(), 64u);
          received.fetch_add(1, std::memory_order_relaxed);
        }
      });
    std::this_thread::sleep_for(1ms);
    ch.close();  // races blocked senders, draining receivers, in-flight sends
    for (auto& t : threads) t.join();
    // close() never drops a value that send() acknowledged.
    EXPECT_EQ(received.load(), sent.load());
  }
}

TEST(StressChannel, ReceiveForDeadlineVsCloseRace) {
  Channel<Payload> ch(4);
  std::atomic<int> sent{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c)
    threads.emplace_back([&] {
      for (;;) {
        // Tiny deadline so timeouts constantly interleave with close().
        if (auto v = ch.receive_for(200us)) {
          received.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (ch.closed()) {
          // No new send can succeed now; drain the remainder and leave.
          while (ch.try_receive())
            received.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  for (int p = 0; p < 2; ++p)
    threads.emplace_back([&, p] {
      for (int i = 0; i < 300; ++i) {
        if (!ch.send(Payload{"x", p * 1000 + i})) return;
        sent.fetch_add(1, std::memory_order_relaxed);
      }
    });
  std::this_thread::sleep_for(2ms);
  ch.close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(received.load(), sent.load());
}

TEST(StressChannel, TriStateTryReceiveDrainRace) {
  Channel<int> ch(16);
  constexpr int kItems = 4000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ch.send(i);
    ch.close();
  });
  std::atomic<int> received{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c)
    consumers.emplace_back([&] {
      for (;;) {
        int out = -1;
        switch (ch.try_receive(out)) {
          case RecvStatus::kValue:
            ASSERT_GE(out, 0);
            received.fetch_add(1, std::memory_order_relaxed);
            break;
          case RecvStatus::kEmpty:
            std::this_thread::yield();
            break;
          case RecvStatus::kClosed:
            return;  // closed AND drained — must imply nothing is lost
        }
      }
    });
  producer.join();
  for (auto& t : consumers) t.join();
  // kClosed may only be observed after the queue is empty, so every sent
  // item must have been claimed by exactly one consumer.
  EXPECT_EQ(received.load(), kItems);
}

TEST(StressChannel, CloseRacingBlockedSendersOnBoundedChannel) {
  for (int round = 0; round < 20; ++round) {
    Channel<int> ch(1);
    ASSERT_TRUE(ch.send(0));  // fill: every further send blocks
    std::atomic<int> accepted{1};
    std::vector<std::thread> senders;
    for (int s = 0; s < 4; ++s)
      senders.emplace_back([&, s] {
        if (ch.send(s + 1)) accepted.fetch_add(1, std::memory_order_relaxed);
      });
    std::this_thread::sleep_for(200us);
    ch.close();  // must wake all blocked senders; they return false
    for (auto& t : senders) t.join();
    // Whatever was accepted is still drainable after close.
    int drained = 0;
    while (ch.try_receive()) ++drained;
    EXPECT_EQ(drained, accepted.load());
  }
}

TEST(StressChannel, AdvisorySizeUnderConcurrentTraffic) {
  // size()/empty()/closed() are advisory snapshots; hammering them while
  // producers/consumers run must be race-free (all go through the lock).
  Channel<int> ch(32);
  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load()) {
      (void)ch.size();
      (void)ch.empty();
      (void)ch.closed();
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < 5000; ++i)
      if (!ch.send(i)) return;
  });
  std::thread consumer([&] {
    int n = 0;
    while (ch.receive()) ++n;
    EXPECT_EQ(n, 5000);
  });
  producer.join();
  ch.close();
  consumer.join();
  stop.store(true);
  observer.join();
}

}  // namespace
}  // namespace impress::common
