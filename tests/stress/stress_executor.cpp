// TSan-targeted stress tests for the runtime: scheduler placement racing
// completions, task cancellation racing normal completion, and pilot
// teardown while tasks are in flight. All on the ThreadExecutor, i.e.
// real worker threads — these are the interleavings the simulated engine
// can never produce.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "hpc/profiler.hpp"
#include "runtime/pilot.hpp"
#include "runtime/session.hpp"
#include "runtime/thread_executor.hpp"

namespace impress::rp {
namespace {

using namespace std::chrono_literals;

SessionConfig stress_config(std::uint64_t seed = 7) {
  SessionConfig cfg;
  cfg.mode = ExecutionMode::kThreaded;
  cfg.seed = seed;
  cfg.time_scale = 1e-3;  // 1 virtual second = 1 ms wall
  cfg.worker_threads = 8;
  return cfg;
}

PilotDescription stress_pilot() {
  PilotDescription pd;
  pd.nodes = {hpc::NodeSpec{.name = "n", .cores = 4, .gpus = 1, .mem_gb = 32.0}};
  pd.policy = SchedulerPolicy::kBackfill;
  return pd;
}

TEST(StressExecutor, CompletionVsCancellationRace) {
  Session session{stress_config()};
  session.submit_pilot(stress_pilot());
  constexpr int kTasks = 32;
  std::vector<TaskPtr> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    TaskDescription td;
    td.name = "t" + std::to_string(i);
    td.resources = {.cores = 1, .gpus = 0, .mem_gb = 0.0};
    // Several short phases: cancels land between phase boundaries.
    for (int p = 0; p < 4; ++p)
      td.phases.push_back(TaskPhase{.name = "p", .duration_s = 3.0, .cores = 1});
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  // Two threads cancel overlapping halves while tasks queue, execute and
  // complete — the cancel path (TaskManager -> Pilot -> Executor) races
  // the completion path (Executor -> Pilot -> TaskManager) head-on.
  std::thread cancel_front([&] {
    for (int i = 0; i < kTasks * 3 / 4; ++i) {
      (void)session.task_manager().cancel(tasks[static_cast<std::size_t>(i)]);
      std::this_thread::sleep_for(200us);
    }
  });
  std::thread cancel_back([&] {
    for (int i = kTasks - 1; i >= kTasks / 4; --i) {
      (void)session.task_manager().cancel(tasks[static_cast<std::size_t>(i)]);
      std::this_thread::sleep_for(200us);
    }
  });
  cancel_front.join();
  cancel_back.join();
  session.run();

  std::size_t terminal = 0;
  for (const auto& t : tasks) {
    EXPECT_TRUE(is_terminal(t->state()))
        << t->uid() << " stuck in " << to_string(t->state());
    if (is_terminal(t->state())) ++terminal;
  }
  EXPECT_EQ(terminal, static_cast<std::size_t>(kTasks));
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
  EXPECT_EQ(session.task_manager().done() + session.task_manager().failed() +
                session.task_manager().cancelled(),
            static_cast<std::size_t>(kTasks));
}

TEST(StressExecutor, PilotTeardownWhileTasksInFlight) {
  // Direct pilot + executor wiring (no TaskManager): enqueue a burst,
  // then finish() the pilot from another thread while completions and
  // cancels are landing. Every placed task must still reach a terminal
  // state exactly once, and nothing may race the teardown.
  const auto t0 = std::chrono::steady_clock::now();
  auto now_fn = [t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count() * 1e3;  // virtual seconds at time_scale 1e-3
  };
  hpc::Profiler profiler;
  common::ThreadPool pool(4);
  Pilot pilot("pilot.stress", stress_pilot(), profiler, now_fn);
  ThreadExecutor exec(pool, profiler, pilot.recorder(), ExecOverheadModel{},
                      common::Rng(11), 1e-3, now_fn);
  std::atomic<int> terminal{0};
  pilot.attach(exec, [&](const TaskPtr&) {
    terminal.fetch_add(1, std::memory_order_relaxed);
  });
  pilot.activate();

  constexpr int kTasks = 24;
  std::vector<TaskPtr> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    auto td = make_simple_task("t" + std::to_string(i), 1, 0, 5.0);
    td.validate_and_normalize();
    auto task = std::make_shared<Task>("task." + std::to_string(i), std::move(td));
    tasks.push_back(task);
    pilot.enqueue(task);
  }

  std::thread finisher([&] {
    std::this_thread::sleep_for(3ms);
    pilot.finish();  // no new placements; running tasks drain
  });
  std::thread canceller([&] {
    for (const auto& t : tasks) {
      (void)pilot.cancel(t);
      std::this_thread::sleep_for(300us);
    }
  });
  finisher.join();
  canceller.join();
  pool.wait_idle();

  EXPECT_EQ(pilot.state(), PilotState::kDone);
  EXPECT_EQ(pilot.running(), 0u);
  // Everything the canceller or executor touched reached a terminal
  // state exactly once; nothing is left holding an allocation.
  EXPECT_EQ(terminal.load(), kTasks);
  for (const auto& t : tasks)
    EXPECT_TRUE(is_terminal(t->state()))
        << t->uid() << " stuck in " << to_string(t->state());
  EXPECT_EQ(pilot.pool().free_cores(), pilot.pool().total_cores());
}

TEST(StressExecutor, BackfillPlacementHammer) {
  // Heterogeneous widths force the backfill scheduler to make placement
  // decisions concurrently with completions releasing resources from
  // worker threads — the try_schedule reentrancy path.
  Session session{stress_config(13)};
  session.submit_pilot(stress_pilot());
  constexpr int kTasks = 60;
  for (int i = 0; i < kTasks; ++i)
    session.task_manager().submit(make_simple_task(
        "t" + std::to_string(i), 1 + static_cast<std::uint32_t>(i % 4),
        i % 5 == 0 ? 1 : 0, 2.0 + i % 3));
  session.run();
  EXPECT_EQ(session.task_manager().done(), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
}

}  // namespace
}  // namespace impress::rp
