// Interleaving-hostile CampaignService stress: concurrent producers on
// the lock-free submit path, one pump thread, and a threaded execution
// backend completing from its own workers — the full cross-thread record
// hand-off chain (inbox -> DRR queue -> backend -> pool) under TSan.
//
// Time is a single global atomic "clock" (each fetch_add is a unique,
// increasing nanosecond stamp), so latency arithmetic never underflows
// while the schedule itself stays maximally racy.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

namespace impress::service {
namespace {

std::atomic<std::uint64_t> g_clock{1};

std::uint64_t tick_clock() {
  return g_clock.fetch_add(1000, std::memory_order_relaxed);
}

/// Backend that completes records from its own worker threads.
class ThreadedBackend final : public ExecutionBackend {
 public:
  explicit ThreadedBackend(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }

  ~ThreadedBackend() override { stop(); }

  void attach(CampaignService& s) noexcept { service_ = &s; }

  void start(SubmissionRecord& rec, std::uint64_t /*now_ns*/) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_.push_back(&rec);
    }
    cv_.notify_one();
  }

  [[nodiscard]] rp::LoadSnapshot load() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return {pending_.size(), threads_.size(), threads_.size()};
  }

  [[nodiscard]] bool idle() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.empty() && busy_ == 0;
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

 private:
  void worker() {
    for (;;) {
      SubmissionRecord* rec = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
        if (pending_.empty()) return;  // stopping and drained
        rec = pending_.front();
        pending_.pop_front();
        ++busy_;
      }
      // Callbacks run with no backend lock held: the only lock they take
      // is the service's leaf completion mutex.
      service_->on_first_result(*rec, tick_clock());
      service_->on_complete(*rec, tick_clock(),
                            0.5 + 0.4 * static_cast<double>(rec->seq % 100) /
                                      100.0);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --busy_;
      }
    }
  }

  CampaignService* service_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<SubmissionRecord*> pending_;
  std::size_t busy_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

TEST(StressService, ConcurrentProducersPumpAndThreadedCompletions) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;

  ThreadedBackend backend(/*workers=*/3);
  ServiceConfig c;
  c.backpressure_enabled = true;  // roll_interval races against completions
  c.backpressure.interval_s = 0.001;
  c.global_max_open = 1024;
  c.max_dispatched = 256;
  c.max_dispatch_per_tick = 512;
  c.shed_age_ns = 0;  // admitted == completed at the end
  for (std::uint32_t i = 0; i < kProducers; ++i) {
    TenantConfig t;
    t.name = "p" + std::to_string(i);
    t.tier = static_cast<Tier>(i % 3);
    t.weight = 1 + i;
    t.max_open = 256;
    t.initial_rate = 1e9;  // quotas, not tokens, are the contended limit
    c.tenants.push_back(t);
  }
  CampaignService svc(c, backend);
  backend.attach(svc);

  std::atomic<bool> producers_done{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&svc, p] {
      std::uint64_t payload = 0x5eed + p;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        svc.submit(p, payload, 1 + static_cast<std::uint32_t>(i % 3),
                   tick_clock());
        payload = payload * 6364136223846793005ull + 1442695040888963407ull;
        if (i % 512 == 0) std::this_thread::yield();
      }
    });
  }

  std::thread pump([&svc, &backend, &producers_done] {
    // Keep pumping until the producers stop and everything in flight has
    // drained back through the pool.
    for (;;) {
      svc.tick(tick_clock());
      if (producers_done.load(std::memory_order_acquire) &&
          svc.open_now() == 0 && backend.idle()) {
        return;
      }
      std::this_thread::yield();
    }
  });

  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  pump.join();
  backend.stop();

  const ServiceReport r = svc.report();
  EXPECT_EQ(r.submitted, kProducers * kPerProducer);
  EXPECT_EQ(r.submitted, r.admitted + r.rejected);
  EXPECT_EQ(r.admitted, r.dispatched);
  EXPECT_EQ(r.dispatched, r.completed);  // shed disabled
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.queued_now, 0u);
  EXPECT_EQ(r.in_flight_now, 0u);
  EXPECT_EQ(svc.open_now(), 0u);
  EXPECT_EQ(r.pool.in_use, 0u);
  EXPECT_LE(r.pool.high_water, c.global_max_open);
  EXPECT_GT(r.admitted, 0u);
  for (const TenantReport& t : r.tenants) {
    EXPECT_EQ(t.first_results, t.completed);
    EXPECT_EQ(t.queued_now, 0u);
  }
  // Quantiles are well-formed under concurrency.
  EXPECT_LE(r.first_result_p50_ns, r.first_result_p99_ns);
  EXPECT_LE(r.first_result_p99_ns, r.first_result_p999_ns);
}

}  // namespace
}  // namespace impress::service
