// TSan/lockdep-targeted stress for the campaign fabric: four workers
// pumping on their own threads against a single-threaded coordinator,
// with the loopback net injecting reorder/drop/delay churn. Threading
// moves the chaos draw order (send-order determinism is single-threaded
// only), so these tests pin the invariants that survive any
// interleaving: convergence, the message-conservation identity, and a
// merged result equal to the single-process sharded baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/session_dump.hpp"
#include "core/shard.hpp"
#include "net/fabric.hpp"
#include "protein/datasets.hpp"

namespace impress::net {
namespace {

std::vector<protein::DesignTarget> targets4() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("DET-A", 86, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("DET-B", 90, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("DET-C", 77, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("DET-D", 93, protein::alpha_synuclein().tail(10)));
  return out;
}

void expect_conserved(const FabricStats& s) {
  EXPECT_EQ(s.submits_opened,
            s.submits_closed_result + s.submits_closed_death + s.submits_open());
  EXPECT_EQ(s.submits_open(), 0u);
}

TEST(StressFabric, FourThreadedWorkersUnderChurn) {
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);

  DistributedConfig dc;
  dc.fabric.campaign = config;
  dc.num_workers = 4;
  dc.num_shards = 4;
  dc.threaded = true;
  dc.chaos.seed = 17;
  dc.chaos.drop_rate = 0.05;
  dc.chaos.reorder_rate = 0.25;
  dc.chaos.delay_min = 0;
  dc.chaos.delay_max = 3;
  dc.fabric.resubmit_after = 32;
  const DistributedOutcome out = run_distributed(dc, targets);

  EXPECT_EQ(core::to_json(out.result).dump(),
            core::to_json(core::run_sharded(
                              config, targets,
                              core::ShardPlan::contiguous(targets, 4), 0))
                .dump());
  expect_conserved(out.stats);
  // Frame conservation: every frame offered to the net was delivered,
  // dropped, or is still queued at teardown — never duplicated.
  EXPECT_GE(out.net.sent, out.net.delivered + out.net.dropped);
  EXPECT_GT(out.net.dropped, 0u) << "churn too tame to prove anything";
}

TEST(StressFabric, ThreadedFailoverWithCheckpoints) {
  // A worker dies mid-shard while three threaded peers keep pumping; the
  // shard reroutes from its stored checkpoint under churn.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(42);
  const std::size_t cadence = 2;

  DistributedConfig dc;
  dc.fabric.campaign = config;
  dc.fabric.checkpoint_every = cadence;
  // No heartbeat timeout: in threaded mode a busy worker can outlast any
  // tick-based deadline, so death detection rides on the closed link.
  dc.fabric.heartbeat_timeout = 0;
  dc.fabric.resubmit_after = 64;
  dc.num_workers = 4;
  dc.num_shards = 4;
  dc.threaded = true;
  dc.chaos.seed = 3;
  dc.chaos.delay_min = 0;
  dc.chaos.delay_max = 2;
  dc.kill_plans = {WorkerKillPlan{.die_at_checkpoint = 1, .ship_final = true}};
  const DistributedOutcome out = run_distributed(dc, targets);

  EXPECT_EQ(core::to_json(out.result).dump(),
            core::to_json(core::run_sharded(
                              config, targets,
                              core::ShardPlan::contiguous(targets, 4),
                              cadence))
                .dump());
  EXPECT_EQ(out.stats.workers_declared_dead, 1u);
  expect_conserved(out.stats);
}

TEST(StressFabric, RepeatedRunsConvergeEveryTime) {
  // Hammer the threaded path repeatedly: different chaos seeds, always
  // the same merged bytes and a conserved ledger.
  const auto targets = targets4();
  const auto config = core::im_rp_campaign(7);
  const std::string baseline =
      core::to_json(core::run_sharded(config, targets,
                                      core::ShardPlan::contiguous(targets, 2),
                                      0))
          .dump();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    DistributedConfig dc;
    dc.fabric.campaign = config;
    dc.num_workers = 2;
    dc.num_shards = 2;
    dc.threaded = true;
    dc.chaos.seed = seed;
    dc.chaos.drop_rate = 0.03;
    dc.chaos.reorder_rate = 0.15;
    dc.chaos.delay_max = 2;
    dc.fabric.resubmit_after = 32;
    const DistributedOutcome out = run_distributed(dc, targets);
    EXPECT_EQ(core::to_json(out.result).dump(), baseline) << "seed " << seed;
    expect_conserved(out.stats);
  }
}

}  // namespace
}  // namespace impress::net
