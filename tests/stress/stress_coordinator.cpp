// TSan-targeted stress tests for the coordinator's dual-channel loop.
//
// The paper's middleware contribution is exactly this: a decision-making
// loop wired to the runtime over two channels (pipeline submissions out,
// task completions back). Under the threaded executor the completion
// callback fires on worker threads while the decision loop runs on the
// test thread, so every send/receive_for interleaving is real.

#include "core/coordinator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/channel.hpp"
#include "common/thread_pool.hpp"
#include "core/calibration.hpp"
#include "protein/datasets.hpp"
#include "runtime/session.hpp"

namespace impress::core {
namespace {

using namespace std::chrono_literals;

TEST(StressCoordinator, ThreadedDualChannelCampaign) {
  rp::SessionConfig scfg;
  scfg.mode = rp::ExecutionMode::kThreaded;
  scfg.seed = 2026;
  scfg.time_scale = 2e-7;  // one task-hour ~ 0.7 ms wall
  scfg.worker_threads = 12;
  rp::Session session(scfg);
  session.submit_pilot(calibration::amarel_pilot());

  CoordinatorConfig ccfg;
  ccfg.mpnn_durations = calibration::mpnn_durations();
  ccfg.fold_durations = calibration::fold_durations();
  Coordinator coord(session, ccfg);

  auto protocol = calibration::im_rp_protocol();  // sub-pipelines enabled
  std::vector<protein::DesignTarget> targets;
  targets.push_back(
      protein::make_target("ST-A", 84, protein::alpha_synuclein().tail(10)));
  targets.push_back(
      protein::make_target("ST-B", 88, protein::alpha_synuclein().tail(10)));
  targets.push_back(
      protein::make_target("ST-C", 92, protein::alpha_synuclein().tail(10)));
  for (const auto& t : targets)
    coord.add_pipeline(std::make_unique<Pipeline>(
        t.name, t, t.start_complex(), protocol,
        std::make_shared<MpnnGenerator>(calibration::sampler_config()),
        fold::AlphaFold{}, session.fork_rng("pipeline." + t.name)));

  // The decision loop runs here while completions stream in from worker
  // threads through the completion channel.
  coord.run();

  EXPECT_EQ(coord.pipelines_submitted(), targets.size());
  EXPECT_EQ(coord.failed_tasks(), 0u);
  EXPECT_GE(coord.results().size(), targets.size());
  EXPECT_EQ(session.task_manager().outstanding(), 0u);
  for (const auto& r : coord.results())
    EXPECT_FALSE(r.pipeline_id.empty());
}

// The two-channel pattern in isolation, without the protein stack: a
// decision loop feeds work out over one channel and consumes completions
// over the other, while a pool of "runtime" threads turns work into
// completions. Sub-work is spawned from the completion handler exactly
// like Coordinator::consider_subpipeline does, so submissions and
// completions interleave on both channels simultaneously.
TEST(StressCoordinator, DualChannelLoopConservesWork) {
  struct WorkItem {
    int id = 0;
    int generation = 0;
  };
  common::Channel<WorkItem> work_channel(16);
  common::Channel<WorkItem> completion_channel;  // unbounded, like the real one

  constexpr int kRoots = 64;
  constexpr int kMaxGeneration = 2;
  std::atomic<int> completed_by_runtime{0};

  std::vector<std::thread> runtime;
  for (int w = 0; w < 4; ++w)
    runtime.emplace_back([&] {
      while (auto item = work_channel.receive()) {
        std::this_thread::sleep_for(50us);  // "execution"
        completed_by_runtime.fetch_add(1, std::memory_order_relaxed);
        completion_channel.send(*item);
      }
    });

  // Decision loop (this thread): submit roots, then for every completion
  // decide whether to spawn a follow-up — the sub-pipeline pattern.
  int outstanding = 0;
  int handled = 0;
  int spawned = 0;
  for (int i = 0; i < kRoots; ++i) {
    ASSERT_TRUE(work_channel.send(WorkItem{i, 0}));
    ++outstanding;
  }
  while (outstanding > 0) {
    if (auto msg = completion_channel.receive_for(1ms)) {
      --outstanding;
      ++handled;
      if (msg->generation < kMaxGeneration && msg->id % 3 == 0) {
        ASSERT_TRUE(work_channel.send(WorkItem{msg->id, msg->generation + 1}));
        ++outstanding;
        ++spawned;
      }
    }
  }
  work_channel.close();
  for (auto& t : runtime) t.join();
  completion_channel.close();

  EXPECT_EQ(handled, kRoots + spawned);
  EXPECT_EQ(completed_by_runtime.load(), handled);
  EXPECT_FALSE(completion_channel.receive().has_value());  // fully drained
}

}  // namespace
}  // namespace impress::core
