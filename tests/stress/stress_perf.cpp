// Interleaving-hostile hammering of the two new concurrent structures —
// the sharded FoldCache and the per-thread Profiler buffers. Designed to
// trip ThreadSanitizer on any missing synchronization rather than flake:
// many writers over overlapping keys, readers merging mid-write, and
// clear() racing record().

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fold/fold_cache.hpp"
#include "hpc/profiler.hpp"

namespace impress {
namespace {

fold::Prediction prediction_for(std::uint64_t key) {
  fold::Prediction p;
  p.models.push_back(fold::ModelPrediction{});
  p.models[0].metrics.ptm = static_cast<double>(key);
  return p;
}

TEST(StressPerf, FoldCacheConcurrentHammer) {
  // 8 writers insert/lookup over a key range several times the capacity,
  // so hits, misses, evictions and duplicate inserts all interleave.
  fold::FoldCache cache(fold::FoldCache::Config{.capacity = 64, .shards = 8});
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  constexpr std::uint64_t kKeys = 256;
  std::atomic<int> corrupt{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      std::uint64_t x = static_cast<std::uint64_t>(t) * 2654435761u + 1;
      for (int i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;  // xorshift: per-thread deterministic key stream
        const std::uint64_t key = 1 + x % kKeys;
        if (const auto got = cache.lookup(key)) {
          // Any resident value must be the one its key determines.
          if (got->models.at(0).metrics.ptm != static_cast<double>(key))
            corrupt.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.insert(key, prediction_for(key));
        }
        if (i % 1024 == 0) (void)cache.stats();  // reader mid-write
      }
    });
  for (auto& w : workers) w.join();

  EXPECT_EQ(corrupt.load(), 0) << "cache returned a value for the wrong key";
  const auto s = cache.stats();
  EXPECT_EQ(s.lookups(), static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_LE(s.entries, 64u);
  EXPECT_GT(s.hits, 0u);
}

TEST(StressPerf, FoldCacheClearWhileHammered) {
  fold::FoldCache cache(fold::FoldCache::Config{.capacity = 32, .shards = 4});
  std::atomic<bool> stop{false};
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) cache.clear();
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 20000; ++i) {
        const std::uint64_t key = 1 + (i + static_cast<std::uint64_t>(t)) % 64;
        if (const auto got = cache.lookup(key))
          ASSERT_EQ(got->models.at(0).metrics.ptm, static_cast<double>(key));
        else
          cache.insert(key, prediction_for(key));
      }
    });
  for (auto& w : workers) w.join();
  stop.store(true);
  clearer.join();
}

TEST(StressPerf, ProfilerConcurrentRecordAndMerge) {
  // 8 writer threads, each its own entity, with 2 readers merging the
  // buffers concurrently. Afterwards: nothing lost, the global sequence
  // order is a total order, and each entity's records appear in its own
  // program order (encoded in the event time).
  hpc::Profiler profiler;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)profiler.size();
        (void)profiler.events();  // merge mid-write
      }
    });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      const std::string entity = "task.writer" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i)
        profiler.record(static_cast<double>(i), entity, "exec_start");
    });
  for (auto& w : writers) w.join();
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_EQ(profiler.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  const auto events = profiler.events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Per-entity program order survives the merge.
  for (int t = 0; t < kThreads; ++t) {
    const auto mine =
        profiler.events_for("task.writer" + std::to_string(t));
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(kPerThread));
    for (int i = 0; i < kPerThread; ++i)
      ASSERT_DOUBLE_EQ(mine[static_cast<std::size_t>(i)].time,
                       static_cast<double>(i));
  }
}

TEST(StressPerf, ProfilerClearWhileRecording) {
  hpc::Profiler profiler;
  std::atomic<bool> stop{false};
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) profiler.clear();
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&, t] {
      const std::string entity = "task.c" + std::to_string(t);
      for (int i = 0; i < 20000; ++i)
        profiler.record(static_cast<double>(i), entity, "exec_start");
    });
  for (auto& w : writers) w.join();
  stop.store(true);
  clearer.join();
  // Whatever survived the clears is still a well-formed merge.
  const auto events = profiler.events();
  EXPECT_LE(events.size(), 4u * 20000u);
}

TEST(StressPerf, ManyProfilersAcrossThreads) {
  // Exercises the bounded thread-local cache: more profilers than the
  // TLS cap, touched from several threads, must still route every record
  // to the right profiler.
  constexpr int kProfilers = 80;  // > kTlsCacheCap (64)
  std::vector<std::unique_ptr<hpc::Profiler>> profilers;
  for (int i = 0; i < kProfilers; ++i)
    profilers.push_back(std::make_unique<hpc::Profiler>());

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&] {
      for (int round = 0; round < 50; ++round)
        for (int i = 0; i < kProfilers; ++i)
          profilers[static_cast<std::size_t>(i)]->record(
              static_cast<double>(round), "task.x", "exec_start");
    });
  for (auto& w : workers) w.join();
  for (const auto& p : profilers) EXPECT_EQ(p->size(), 4u * 50u);
}

}  // namespace
}  // namespace impress
