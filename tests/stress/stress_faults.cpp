// TSan-targeted stress tests for the fault-tolerance subsystem: injected
// task failures, pilot outages, retry resubmission, and deadline eviction
// all racing against user-driven cancel() and wait_all() on real worker
// threads. A real race trips ThreadSanitizer (or deadlocks into the test
// timeout) rather than flaking.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "runtime/session.hpp"
#include "runtime/task_manager.hpp"

namespace impress::rp {
namespace {

PilotDescription node(std::uint32_t cores) {
  PilotDescription pd;
  pd.nodes = {
      hpc::NodeSpec{.name = "n", .cores = cores, .gpus = 0, .mem_gb = 64.0}};
  return pd;
}

SessionConfig threaded(std::uint64_t seed) {
  SessionConfig cfg;
  cfg.mode = ExecutionMode::kThreaded;
  cfg.seed = seed;
  cfg.time_scale = 1e-4;  // 100 sim-seconds ~ 10 ms wall
  cfg.worker_threads = 16;
  return cfg;
}

TEST(StressFaults, InjectedFailuresWithRetriesUnderLoad) {
  auto cfg = threaded(91);
  cfg.faults.task_failure_rate = 0.3;
  cfg.faults.slow_task_rate = 0.2;
  cfg.faults.slow_factor = 2.0;
  Session session{cfg};
  session.submit_pilot(node(16));
  const int n = 48;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < n; ++i) {
    auto td = make_simple_task("t" + std::to_string(i), 1, 0, 50.0);
    td.retry = RetryPolicy{.max_attempts = 3, .backoff_initial_s = 5.0};
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  session.run();
  auto& tmgr = session.task_manager();
  EXPECT_EQ(tmgr.outstanding(), 0u);
  EXPECT_EQ(tmgr.done() + tmgr.failed() + tmgr.cancelled(),
            static_cast<std::size_t>(n));
  for (const auto& t : tasks) EXPECT_TRUE(is_terminal(t->state()));
  // A 30% failure rate over 48 tasks must have triggered retries.
  EXPECT_GT(tmgr.retried(), 0u);
}

TEST(StressFaults, CancelRacesFaultInjectionAndRetry) {
  auto cfg = threaded(17);
  cfg.faults.task_failure_rate = 0.4;
  Session session{cfg};
  session.submit_pilot(node(16));
  const int n = 40;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < n; ++i) {
    auto td = make_simple_task("t" + std::to_string(i), 1, 0, 100.0);
    td.retry = RetryPolicy{.max_attempts = 4, .backoff_initial_s = 20.0};
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  // Cancel every other task from a foreign thread while attempts fail,
  // back off, and resubmit underneath.
  std::thread canceller([&] {
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < n; i += 2)
        (void)session.task_manager().cancel(tasks[static_cast<std::size_t>(i)]);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  session.run();
  canceller.join();
  auto& tmgr = session.task_manager();
  EXPECT_EQ(tmgr.outstanding(), 0u);
  EXPECT_EQ(tmgr.done() + tmgr.failed() + tmgr.cancelled(),
            static_cast<std::size_t>(n));
  for (const auto& t : tasks) EXPECT_TRUE(is_terminal(t->state()));
  // Repeated cancel of an already-terminal task stays false.
  for (const auto& t : tasks) EXPECT_FALSE(session.task_manager().cancel(t));
}

TEST(StressFaults, PilotOutageDrainsAndReroutesUnderLoad) {
  auto cfg = threaded(7);
  // The outage fuse (300 ms wall at this time_scale) must be long enough
  // that setup + 32 submits finish first even under TSan's overhead, and
  // task durations (200 ms each, ~800 ms makespan) long enough that the
  // doomed pilot still holds queued + executing work when it blows.
  cfg.faults.pilot_outages.push_back(
      PilotOutage{.pilot_index = 0, .at_s = 3000.0});
  Session session{cfg};
  auto doomed = session.submit_pilot(node(8));
  session.submit_pilot(node(8));
  const int n = 32;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < n; ++i) {
    auto td = make_simple_task("t" + std::to_string(i), 2, 0, 2000.0);
    td.retry = RetryPolicy{.max_attempts = 3, .backoff_initial_s = 5.0};
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  session.run();
  EXPECT_EQ(doomed->state(), PilotState::kFailed);
  auto& tmgr = session.task_manager();
  EXPECT_EQ(tmgr.outstanding(), 0u);
  for (const auto& t : tasks) EXPECT_TRUE(is_terminal(t->state()));
  // The outage must have evicted or drained something.
  EXPECT_GT(tmgr.retried() + tmgr.requeued(), 0u);
}

TEST(StressFaults, SpotReclaimRacesEvictionAndReturn) {
  // Spot capacity reclaimed and returned while real worker threads churn:
  // the eviction path (drain + executor cancel), the reactivation path
  // (FAILED -> ACTIVE + scheduler kick) and retry resubmission all race.
  // TSan/lockdep catch ordering bugs; the invariants below catch leaks.
  auto cfg = threaded(61);
  cfg.faults.spot_reclaims.push_back(
      SpotReclaim{.pilot_index = 0, .at_s = 3000.0, .down_s = 5000.0});
  Session session{cfg};
  auto spot = session.submit_pilot(node(8));
  session.submit_pilot(node(8));
  const int n = 32;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < n; ++i) {
    auto td = make_simple_task("t" + std::to_string(i), 2, 0, 2000.0);
    td.retry = RetryPolicy{.max_attempts = 3, .backoff_initial_s = 5.0};
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  session.run();
  auto& tmgr = session.task_manager();
  EXPECT_EQ(tmgr.outstanding(), 0u);
  EXPECT_EQ(tmgr.done() + tmgr.failed() + tmgr.cancelled(),
            static_cast<std::size_t>(n));
  for (const auto& t : tasks) EXPECT_TRUE(is_terminal(t->state()));
  EXPECT_GT(tmgr.retried() + tmgr.requeued(), 0u);
  // The window (500 ms wall) closes long before the retried workload
  // drains, so the pilot must have come back.
  EXPECT_EQ(spot->state(), PilotState::kActive);
}

// Regression (wait_all early return) under churn: terminal callbacks keep
// submitting follow-on work; wait_all must observe the full chain.
TEST(StressFaults, WaitAllSurvivesCallbackResubmissionChurn) {
  auto cfg = threaded(29);
  cfg.faults.task_failure_rate = 0.2;
  Session session{cfg};
  session.submit_pilot(node(16));
  std::atomic<int> chained{0};
  const int roots = 16;
  const int depth = 3;
  session.task_manager().add_callback([&](const TaskPtr& task) {
    const auto it = task->description().metadata.find("depth");
    const int d = it == task->description().metadata.end()
                      ? 0
                      : std::stoi(it->second);
    if (d >= depth) return;
    chained.fetch_add(1);
    auto td = make_simple_task(task->description().name + ".c", 1, 0, 20.0);
    td.retry = RetryPolicy{.max_attempts = 2, .backoff_initial_s = 2.0};
    td.metadata["depth"] = std::to_string(d + 1);
    (void)session.task_manager().submit(std::move(td));
  });
  for (int i = 0; i < roots; ++i) {
    auto td = make_simple_task("r" + std::to_string(i), 1, 0, 20.0);
    td.retry = RetryPolicy{.max_attempts = 2, .backoff_initial_s = 2.0};
    (void)session.task_manager().submit(std::move(td));
  }
  session.run();
  auto& tmgr = session.task_manager();
  // Every root chained to full depth: 16 * (1 + 3) tasks total.
  EXPECT_EQ(chained.load(), roots * depth);
  EXPECT_EQ(tmgr.submitted(), static_cast<std::size_t>(roots * (depth + 1)));
  EXPECT_EQ(tmgr.done() + tmgr.failed() + tmgr.cancelled(), tmgr.submitted());
  EXPECT_EQ(tmgr.outstanding(), 0u);
}

TEST(StressFaults, AttemptDeadlinesRaceCompletions) {
  auto cfg = threaded(53);
  Session session{cfg};
  session.submit_pilot(node(16));
  const int n = 32;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < n; ++i) {
    // Durations straddle the deadline so evictions race completions.
    auto td =
        make_simple_task("t" + std::to_string(i), 1, 0, 40.0 + 2.0 * i);
    td.retry = RetryPolicy{.max_attempts = 2,
                           .backoff_initial_s = 2.0,
                           .backoff_multiplier = 2.0,
                           .backoff_jitter = 0.0,
                           .attempt_timeout_s = 70.0};
    tasks.push_back(session.task_manager().submit(std::move(td)));
  }
  session.run();
  auto& tmgr = session.task_manager();
  EXPECT_EQ(tmgr.outstanding(), 0u);
  EXPECT_EQ(tmgr.done() + tmgr.failed() + tmgr.cancelled(),
            static_cast<std::size_t>(n));
  for (const auto& t : tasks) EXPECT_TRUE(is_terminal(t->state()));
}

}  // namespace
}  // namespace impress::rp
