// TSan-targeted stress tests for the checkpoint quiesce path under the
// threaded executor: the coordinator parks submissions on its decision
// thread while completion callbacks stream in from worker threads, then
// snapshots every layer (pipelines, fold cache, task-manager counters,
// executor rng) at the quiesce barrier. A race between the snapshot and
// a straggling worker is exactly what this suite exists to trip.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "fold/fold_cache.hpp"
#include "protein/datasets.hpp"

namespace impress::core {
namespace {

namespace fs = std::filesystem;

std::vector<protein::DesignTarget> targets3() {
  std::vector<protein::DesignTarget> out;
  out.push_back(
      protein::make_target("SC-A", 84, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("SC-B", 88, protein::alpha_synuclein().tail(10)));
  out.push_back(
      protein::make_target("SC-C", 92, protein::alpha_synuclein().tail(10)));
  return out;
}

TEST(StressCheckpoint, ThreadedCampaignCheckpointsAtQuiesce) {
  const auto dir =
      fs::temp_directory_path() /
      ("impress_stress_ckpt_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  auto cfg = im_rp_campaign(2026);
  cfg.session.mode = rp::ExecutionMode::kThreaded;
  cfg.session.time_scale = 2e-7;
  cfg.session.worker_threads = 12;
  // Aggressive cadence: quiesce-and-snapshot as often as possible so the
  // park/release machinery runs many times against live workers.
  cfg.checkpoint.directory = dir.string();
  cfg.checkpoint.every_n_completions = 2;

  const auto targets = targets3();
  const auto result = Campaign(cfg).run(targets);

  EXPECT_EQ(result.root_pipelines, targets.size());
  EXPECT_EQ(result.failed_tasks, 0u);

  // At least one checkpoint was cut, and the last one is loadable.
  const auto checkpoint = load_checkpoint((dir / "checkpoint.json").string());
  EXPECT_GE(checkpoint.ordinal, 1u);
  EXPECT_EQ(checkpoint.campaign_name, cfg.name);
  fs::remove_all(dir);
}

TEST(StressCheckpoint, ConcurrentSinkSeesQuiescedState) {
  // The sink runs on the decision thread at the quiesce barrier; every
  // field it reads must already be stable. Assert the strongest cheap
  // invariant — no task in flight — on every single checkpoint.
  const auto dir =
      fs::temp_directory_path() /
      ("impress_stress_sink_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  auto cfg = im_rp_campaign(77);
  cfg.session.mode = rp::ExecutionMode::kThreaded;
  cfg.session.time_scale = 2e-7;
  cfg.session.worker_threads = 8;
  cfg.checkpoint.directory = dir.string();
  cfg.checkpoint.every_n_completions = 3;

  const auto targets = targets3();
  (void)Campaign(cfg).run(targets);

  const auto checkpoint = load_checkpoint((dir / "checkpoint.json").string());
  // Quiesced coordinator state: every serialized pipeline is between
  // actions, and the task counters balance (submitted = resolved).
  const auto& c = checkpoint.task_counters;
  EXPECT_EQ(c.submitted, c.done + c.failed + c.cancelled);
  for (const auto& p : checkpoint.coordinator.pipelines)
    EXPECT_FALSE(p.id.empty());
  fs::remove_all(dir);
}

TEST(StressCheckpoint, FoldCacheSnapshotRacesLookups) {
  // snapshot() walks every shard under its lock while reader threads
  // hammer lookups/inserts — the checkpoint path against executor
  // threads, distilled.
  fold::FoldCache cache(fold::FoldCache::Config{.capacity = 256, .shards = 4});
  // Seed before racing so every snapshot observes a non-empty cache
  // regardless of how the scheduler orders the reader threads.
  for (std::uint64_t k = 1; k <= 16; ++k) {
    fold::Prediction p;
    p.models.resize(1);
    cache.insert(k, p);
  }
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int w = 0; w < 6; ++w)
    readers.emplace_back([&cache, &stop, w] {
      std::uint64_t k = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(w + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        k ^= k >> 29;
        k *= 0xbf58476d1ce4e5b9ULL;
        if ((k & 3) == 0) {
          fold::Prediction p;
          p.models.resize(1);
          cache.insert(k, p);
        } else {
          (void)cache.lookup(k & 0x3ff);
        }
      }
    });

  std::size_t total_entries = 0;
  for (int i = 0; i < 200; ++i) {
    const auto snap = cache.snapshot();
    ASSERT_EQ(snap.shards.size(), 4u);
    for (const auto& shard : snap.shards) total_entries += shard.size();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GT(total_entries, 0u);
}

}  // namespace
}  // namespace impress::core
