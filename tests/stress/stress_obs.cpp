// TSan-targeted stress tests for the observability layer: writer threads
// hammering one Tracer / one MetricsRegistry while reader threads take
// snapshots mid-flight. A real synchronization bug in the per-thread
// buffers, the stripe cells or the registry maps shows up as a TSan
// report (run under `cmake --preset tsan`); the closing assertions pin
// that no acknowledged write was lost once writers quiesce.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace impress::obs {
namespace {

TEST(StressObs, TracerWritersVsSnapshotReaders) {
  Tracer tracer(true);
  tracer.set_clock([] { return 0.0; });
  std::atomic<bool> stop{false};
  constexpr int kWriters = 6;
  constexpr int kSpansPer = 2'000;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w)
    threads.emplace_back([&tracer, w] {
      for (int i = 0; i < kSpansPer; ++i) {
        const SpanId parent =
            tracer.begin(0.0, "outer." + std::to_string(w), categories::kTask);
        const SpanId child =
            tracer.begin(0.0, "inner", categories::kWork, parent);
        tracer.attr(child, "i", std::to_string(i));
        tracer.end(child, 1.0);
        tracer.end(parent, 2.0);
      }
    });
  // Concurrent snapshots race the writers by design; each one must be
  // internally consistent (ordered, no torn strings).
  for (int r = 0; r < 2; ++r)
    threads.emplace_back([&tracer, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto spans = tracer.spans();
        for (std::size_t i = 1; i < spans.size(); ++i)
          ASSERT_LT(spans[i - 1].open_seq, spans[i].open_seq);
      }
    });
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(2 * kWriters * kSpansPer));
  for (const auto& s : spans) EXPECT_TRUE(s.closed());
}

TEST(StressObs, AmbientContextsAreThreadLocal) {
  Tracer tracer(true);
  tracer.set_clock([] { return 0.0; });
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < 1'000; ++i) {
        const SpanId attempt = tracer.begin(
            0.0, "attempt." + std::to_string(t), categories::kAttempt);
        AmbientContext ctx(&tracer, attempt);
        ScopedSpan work = ambient_span("work");
        // Another thread's context must never leak into this one.
        ASSERT_EQ(ambient_parent(), work.id());
        work.close();
        ASSERT_EQ(ambient_parent(), attempt);
        tracer.end(attempt, 1.0);
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.size(), static_cast<std::size_t>(2 * kThreads * 1'000));
}

TEST(StressObs, MetricsHammerWithConcurrentSnapshots) {
  MetricsRegistry registry(true);
  const RuntimeMetrics m = RuntimeMetrics::registered(registry);
  std::atomic<bool> stop{false};
  constexpr int kWriters = 6;
  constexpr std::uint64_t kOpsPer = 30'000;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w)
    threads.emplace_back([&m] {
      for (std::uint64_t i = 0; i < kOpsPer; ++i) {
        m.tasks_submitted->inc();
        m.tasks_outstanding->add(1.0);
        m.task_run_seconds->observe(static_cast<double>(i % 128));
        m.tasks_outstanding->sub(1.0);
        m.tasks_done->inc();
      }
    });
  for (int r = 0; r < 2; ++r)
    threads.emplace_back([&registry, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const MetricsSnapshot snap = registry.snapshot();
        // Mid-flight sums are racy by design but never exceed the final
        // totals and never go backwards past zero.
        ASSERT_LE(snap.counter("impress_tasks_done"), kWriters * kOpsPer);
      }
    });
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(m.tasks_submitted->value(), kWriters * kOpsPer);
  EXPECT_EQ(m.tasks_done->value(), kWriters * kOpsPer);
  EXPECT_DOUBLE_EQ(m.tasks_outstanding->value(), 0.0);
  EXPECT_EQ(m.task_run_seconds->count(), kWriters * kOpsPer);
}

TEST(StressObs, RegistrationRacesResolveToOneHandle) {
  MetricsRegistry registry(true);
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry, &handles, t] {
      Counter* c = registry.counter("raced");
      c->inc();
      handles[static_cast<std::size_t>(t)] = c;
    });
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->value(), static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace impress::obs
