// TSan-targeted stress tests for ThreadPool.
//
// The interesting interleavings: workers re-submitting into the pool
// while the destructor flips stopping_ (submit must atomically either be
// accepted — and then run — or throw), exceptions crossing the
// packaged_task boundary under load, and wait_idle() racing completions.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace impress::common {
namespace {

using namespace std::chrono_literals;

// A task that keeps re-submitting itself until the pool shuts down.
// Workers calling submit() race the destructor's stopping_ flip; the
// contract is all-or-nothing: accepted => executed, rejected => thrown.
struct Resubmitter {
  ThreadPool* pool;
  std::atomic<int>* executed;
  std::atomic<int>* accepted;
  std::atomic<int>* rejected;

  void operator()() const {
    executed->fetch_add(1, std::memory_order_relaxed);
    try {
      (void)pool->submit(Resubmitter{*this});
      accepted->fetch_add(1, std::memory_order_relaxed);
    } catch (const std::runtime_error&) {
      rejected->fetch_add(1, std::memory_order_relaxed);
    }
  }
};

TEST(StressThreadPool, SubmitDuringShutdownEitherRunsOrThrows) {
  std::atomic<int> executed{0};
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 8; ++i) {
      (void)pool.submit(Resubmitter{&pool, &executed, &accepted, &rejected});
      accepted.fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(2ms);
  }  // ~ThreadPool races the workers' re-submits, then drains and joins
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_GT(executed.load(), 8);  // chains actually made progress
}

TEST(StressThreadPool, ConcurrentSubmittersAndExceptionPropagation) {
  ThreadPool pool(4);
  constexpr int kPerThread = 200;
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<int>>> futures(4);
  for (int s = 0; s < 4; ++s)
    submitters.emplace_back([&, s] {
      futures[s].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i)
        futures[s].push_back(pool.submit([&, s, i]() -> int {
          ran.fetch_add(1, std::memory_order_relaxed);
          if (i % 7 == 0) throw std::runtime_error("boom " + std::to_string(s));
          return s * kPerThread + i;
        }));
    });
  for (auto& t : submitters) t.join();

  int ok = 0, failed = 0;
  for (int s = 0; s < 4; ++s)
    for (int i = 0; i < kPerThread; ++i) {
      try {
        EXPECT_EQ(futures[s][i].get(), s * kPerThread + i);
        ++ok;
      } catch (const std::runtime_error&) {
        ++failed;
      }
    }
  EXPECT_EQ(ran.load(), 4 * kPerThread);
  EXPECT_EQ(failed, 4 * ((kPerThread + 6) / 7));
  EXPECT_EQ(ok + failed, 4 * kPerThread);
  // A thrown task must not poison the pool.
  EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
}

TEST(StressThreadPool, WaitIdleBarrierVsConcurrentCompletions) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::atomic<bool> stop{false};
  // One thread hammers the barrier while others feed work.
  std::thread waiter([&] {
    while (!stop.load()) {
      pool.wait_idle();
      (void)pool.pending();
    }
  });
  std::vector<std::thread> feeders;
  for (int f = 0; f < 3; ++f)
    feeders.emplace_back([&] {
      for (int i = 0; i < 300; ++i)
        (void)pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  for (auto& t : feeders) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), 900);
  EXPECT_EQ(pool.pending(), 0u);
  stop.store(true);
  waiter.join();
}

TEST(StressThreadPool, ParallelForDisjointWrites) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  std::vector<int> data(kN, 0);
  // Disjoint index writes must be race-free; an off-by-one in work
  // partitioning would trip TSan on neighbouring elements.
  parallel_for(pool, kN, [&](std::size_t i) { data[i] = static_cast<int>(i); });
  long sum = std::accumulate(data.begin(), data.end(), 0L);
  EXPECT_EQ(sum, static_cast<long>(kN) * (kN - 1) / 2);
}

}  // namespace
}  // namespace impress::common
