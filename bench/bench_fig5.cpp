// Fig 5 reproduction: IM-RP total CPU/GPU utilization, execution time and
// the runtime phase breakdown — Bootstrap (RP start-up), Exec setup
// (sandbox/launch-script creation per task) and Running (task execution),
// as the paper's Fig 5 legend defines them.
//
// Paper: average CPU ~88%, GPU ~61%, makespan 38.3 h. Expected shape:
// sustained multi-task occupancy (several concurrent AlphaFold feature
// stages), regular GPU activity from interleaved inference/ProteinMPNN
// tasks, longer makespan than CONT-V because the adaptive protocol
// evaluates more trajectories.

#include <cstdio>
#include <string>

#include "common/histogram.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "hpc/analytics.hpp"
#include "protein/datasets.hpp"
#include "runtime/session.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);

  const auto targets = protein::four_pdz_domains();
  // Run once through the raw layers (instead of core::Campaign) so the
  // profiler is still in scope for the per-task analytics below.
  const auto config = core::im_rp_campaign(seed);
  rp::Session session(config.session);
  const auto pilot = session.submit_pilot(config.pilot);
  core::Coordinator coordinator(session, config.coordinator);
  auto generator = std::make_shared<core::MpnnGenerator>(config.sampler);
  for (const auto& target : targets)
    coordinator.add_pipeline(std::make_unique<core::Pipeline>(
        target.name, target, target.start_complex(), config.protocol,
        generator, fold::AlphaFold(config.predictor),
        session.fork_rng("pipeline." + target.name)));
  coordinator.run();

  // Also produce the aggregated CampaignResult view for the figure.
  core::Campaign campaign(core::im_rp_campaign(seed));
  const auto result = campaign.run(targets);

  std::printf("# Fig 5: IM-RP total GPU/CPU utilization and execution time "
              "(seed %llu)\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%s\n",
              core::render_utilization_figure(
                  result, "IM-RP utilization timeline (intensity ramp "
                          "' .:-=+*#%@' = 0-100%)")
                  .c_str());
  std::printf(
      "workload: %zu trajectories, %zu sub-pipelines, %zu fold tasks "
      "(%zu Stage-6 retries), %zu generator tasks\n",
      result.total_trajectories(), result.subpipelines, result.fold_tasks,
      result.fold_retries, result.generator_tasks);

  const auto timing = hpc::summarize_timings(session.profiler());
  std::printf(
      "per-task analytics: n=%zu mean queue wait %.0f s (p95 %.0f s), mean "
      "exec setup %.0f s, mean run %.0f s, non-running fraction %.1f%% "
      "(queueing is resource contention, not runtime overhead); peak task "
      "concurrency %zu\n",
      timing.tasks, timing.mean_wait, timing.p95_wait, timing.mean_setup,
      timing.mean_run, timing.overhead_fraction * 100.0,
      hpc::peak_concurrency(session.profiler()));
  // Wait-time distribution: where the asynchronous backlog actually sits.
  common::Histogram wait_hist(0.0, 8.0, 8);
  for (const auto& t : hpc::task_timings(session.profiler()))
    wait_hist.add(t.wait / 3600.0);
  std::printf("task queue-wait distribution (hours):\n%s",
              wait_hist.render(40, "h").c_str());
  std::printf("paper reference: CPU ~88%%, GPU ~61%%, 38.3 h\n");
  return 0;
}
