// bench_service: multi-tenant campaign-service baseline.
//
// Self-timed (same conventions as bench_report/bench_sim): one JSON
// document — BENCH_service.json, schema impress.bench_service.v1 —
// holding
//   * a seeded closed-loop tenant-scaling study (1/10/100/1000 tenants)
//     driven in virtual time against the SimulatedBackend: sustained
//     campaigns/sec, p50/p99/p999 submit-to-first-result latency, Jain
//     fairness and rejected/shed counts under saturating offered load
//     with PCC backpressure adapting per-tenant admission rates;
//   * a wall-clock hot-path microbench: ns per admitted submission on
//     the pooled allocation-free path vs a deliberately naive reference
//     (string-keyed std::map tenants, one `new` per request, big lock) —
//     the ratio is the perf claim this PR gates on.
//
// Modes:
//   bench_service [--out FILE]          full run
//   bench_service --smoke [--out FILE]  seconds-scale run for CI smoke
//   bench_service --check BASELINE      compare against a checked-in
//                                       baseline: fail (exit 1) if a
//                                       gated ratio drops below 0.8x its
//                                       baseline value or the pooled
//                                       submit path falls under the
//                                       absolute sanity floor. Ratios
//                                       and the virtual-time study are
//                                       what stay stable across machines,
//                                       not raw ns.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "service/service.hpp"
#include "service/sim_backend.hpp"

using namespace impress;

namespace {

struct Options {
  std::string out = "BENCH_service.json";
  std::string check;
  bool smoke = false;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- tenant-scaling study (deterministic virtual time) -------------------

struct ScalingResult {
  std::size_t tenants = 0;
  std::size_t slots = 0;
  double virtual_s = 0.0;
  double offered_per_tenant = 0.0;
  service::ServiceReport report;
  double campaigns_per_s = 0.0;
  double mean_admission_rate = 0.0;
  double wall_s = 0.0;
};

/// Seeded open-loop load generator: every tenant offers Poisson arrivals
/// at `offered_per_tenant`/s (well above fair capacity) for `virtual_s`
/// virtual seconds; the pump ticks on a 100 ms grid and the simulated
/// backend executes duration-compressed campaigns on a fixed-width
/// fleet. Bit-deterministic in `seed`.
ScalingResult run_tenant_scaling(std::size_t n_tenants, double virtual_s,
                                 std::uint64_t seed) {
  constexpr double kOffered = 8.0;       // submissions/s per tenant
  constexpr double kTickS = 0.1;         // pump grid
  constexpr double kScale = 1e-3;        // campaign duration compression
  const std::size_t slots = 8 * n_tenants;

  service::ServiceConfig cfg;
  cfg.tenants.reserve(n_tenants);
  const std::uint32_t weights[] = {1, 2, 4};
  for (std::size_t i = 0; i < n_tenants; ++i) {
    service::TenantConfig t;
    t.name = "tenant-" + std::to_string(i);
    t.tier = service::Tier::kStandard;
    t.weight = weights[i % 3];
    t.max_open = 64;
    t.initial_rate = 4.0;
    t.burst_s = 2.0;
    cfg.tenants.push_back(std::move(t));
  }
  cfg.global_max_open = 64 * n_tenants;
  cfg.max_dispatched = 2 * slots;
  cfg.max_dispatch_per_tick = 4096;
  cfg.shed_age_ns = 45'000'000'000ULL;  // 45 virtual s
  cfg.backpressure_enabled = true;
  cfg.backpressure.interval_s = 4.0;
  cfg.backpressure.latency_ref_s = 30.0;  // compressed-campaign scale

  service::SimulatedBackendConfig bcfg;
  bcfg.slots = slots;
  bcfg.duration_scale = kScale;
  bcfg.reserve_events = 3 * cfg.global_max_open + 64;
  service::SimulatedBackend backend(bcfg);
  service::CampaignService svc(cfg, backend);
  backend.attach(svc);

  // Per-tenant exponential interarrival streams, forked from one seed.
  common::Rng root(seed, /*stream=*/0x42454E43485F5356ULL);
  std::vector<common::Rng> streams;
  std::vector<double> next_s;
  streams.reserve(n_tenants);
  next_s.reserve(n_tenants);
  for (std::size_t i = 0; i < n_tenants; ++i) {
    streams.push_back(root.fork(static_cast<std::uint64_t>(i)));
    next_s.push_back(streams.back().exponential(1.0 / kOffered));
  }

  std::uint64_t payload_seed = seed;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto ticks = static_cast<std::size_t>(virtual_s / kTickS);
  for (std::size_t tick = 1; tick <= ticks; ++tick) {
    const double now_s = static_cast<double>(tick) * kTickS;
    const auto now_ns = static_cast<std::uint64_t>(now_s * 1e9);
    backend.advance_to(now_ns);
    for (std::size_t t = 0; t < n_tenants; ++t) {
      while (next_s[t] <= now_s) {
        const auto at_ns = static_cast<std::uint64_t>(next_s[t] * 1e9);
        payload_seed = common::splitmix64(payload_seed);
        (void)svc.submit(static_cast<service::TenantId>(t), payload_seed,
                         /*cost=*/1, at_ns);
        next_s[t] += streams[t].exponential(1.0 / kOffered);
      }
    }
    svc.tick(now_ns);
  }

  ScalingResult r;
  r.tenants = n_tenants;
  r.slots = slots;
  r.virtual_s = virtual_s;
  r.offered_per_tenant = kOffered;
  r.report = svc.report();
  r.campaigns_per_s =
      static_cast<double>(r.report.completed) / virtual_s;
  double rate_sum = 0.0;
  for (std::size_t t = 0; t < n_tenants; ++t)
    rate_sum += svc.admission_rate(static_cast<service::TenantId>(t));
  r.mean_admission_rate = rate_sum / static_cast<double>(n_tenants);
  r.wall_s = seconds_since(wall_start);
  return r;
}

// --- hot-path microbench (wall clock) ------------------------------------

/// The deliberately naive front door the pooled path is measured against:
/// tenants keyed by freshly-built std::string names in a std::map, one
/// heap-allocated record per request, one big mutex — exactly the churn
/// impress_lint's hot-path rules exist to keep out of src/service.
class NaiveService {
 public:
  struct Record {
    std::string tenant;  ///< owner keyed by name, not an interned id
    std::string uid;     ///< per-request uid string (exceeds SSO)
    std::uint64_t seq;
    std::uint64_t seed;
    std::uint64_t submit_ns;
  };

  explicit NaiveService(std::size_t n_tenants) {
    for (std::size_t i = 0; i < n_tenants; ++i) {
      Tenant t;
      t.tokens = 1e18;
      tenants_["tenant-" + std::to_string(i)] = t;
    }
  }
  ~NaiveService() { pump(); }

  bool submit(std::size_t tenant_idx, std::uint64_t seed,
              std::uint64_t now_ns) {
    // Per-request key + uid construction and a shared_ptr record (the
    // runtime's own TaskPtr idiom): the anti-pattern under test.
    std::string key = "tenant-" + std::to_string(tenant_idx);
    const std::uint64_t seq = seq_.fetch_add(1);
    auto rec = std::make_shared<Record>();
    rec->uid = "submission." + std::to_string(seq);
    rec->seq = seq;
    rec->seed = seed;
    rec->submit_ns = now_ns;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(key);
    if (it == tenants_.end()) return false;
    if (it->second.tokens < 1.0) return false;
    it->second.tokens -= 1.0;
    rec->tenant = std::move(key);
    queue_.push_back(std::move(rec));
    return true;
  }

  std::size_t pump() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = queue_.size();
    queue_.clear();
    return n;
  }

 private:
  struct Tenant {
    double tokens = 0.0;
  };
  std::mutex mutex_;
  std::map<std::string, Tenant> tenants_;
  std::deque<std::shared_ptr<Record>> queue_;
  std::atomic<std::uint64_t> seq_{0};
};

struct HotPathResult {
  double pooled_ns_per_op = 0.0;
  double pooled_mops = 0.0;
  double naive_ns_per_op = 0.0;
  double naive_mops = 0.0;
  double naive_over_pooled = 0.0;
  std::uint64_t pooled_admitted = 0;
  std::size_t pool_high_water = 0;
  // Contended variant: kThreads producer threads vs one pump thread —
  // what a multi-tenant front door actually faces.
  double pooled_mt_ns_per_op = 0.0;
  double pooled_mt_mops = 0.0;
  double naive_mt_ns_per_op = 0.0;
  double naive_mt_mops = 0.0;
  double naive_over_pooled_mt = 0.0;
};

HotPathResult run_hot_path(std::size_t total_ops) {
  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kBatch = 4096;

  HotPathResult r;
  // --- pooled path: the real service, backpressure off, caps wide open.
  {
    service::ServiceConfig cfg;
    for (std::size_t i = 0; i < kTenants; ++i) {
      service::TenantConfig t;
      t.name = "tenant-" + std::to_string(i);
      t.max_open = 4096;
      t.initial_rate = 1e9;
      t.burst_s = 1.0;
      cfg.tenants.push_back(std::move(t));
    }
    cfg.global_max_open = 4 * 4096;
    cfg.max_dispatched = 1 << 20;
    cfg.max_dispatch_per_tick = 2 * kBatch;
    cfg.backpressure_enabled = false;

    service::SimulatedBackendConfig bcfg;
    bcfg.slots = 4096;
    bcfg.duration_scale = 1e-12;  // near-instant completions
    bcfg.reserve_events = 3 * cfg.global_max_open + 64;
    service::SimulatedBackend backend(bcfg);
    service::CampaignService svc(cfg, backend);
    backend.attach(svc);

    std::uint64_t now_ns = 1;
    std::uint64_t admitted = 0;
    double submit_s = 0.0;
    std::uint64_t seed = 0x5EEDULL;
    for (std::size_t done = 0; done < total_ops; done += kBatch) {
      const auto batch_start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kBatch; ++i) {
        seed = common::splitmix64(seed);
        now_ns += 1'000'000;  // 1 ms virtual between submissions
        const auto res = svc.submit(
            static_cast<service::TenantId>(i % kTenants), seed, 1, now_ns);
        admitted += res.admitted() ? 1 : 0;
      }
      submit_s += seconds_since(batch_start);
      // Pump + recycle outside the timed region: the claim under test is
      // the submit path itself.
      svc.tick(now_ns);
      backend.advance_to(now_ns + 1'000'000);
    }
    r.pooled_ns_per_op =
        submit_s * 1e9 / static_cast<double>(total_ops);
    r.pooled_mops = static_cast<double>(total_ops) / submit_s / 1e6;
    r.pooled_admitted = admitted;
    r.pool_high_water = svc.report().pool.high_water;
  }

  // --- naive reference, same shape and batch cadence.
  {
    NaiveService naive(kTenants);
    std::uint64_t now_ns = 1;
    double submit_s = 0.0;
    std::uint64_t seed = 0x5EEDULL;
    for (std::size_t done = 0; done < total_ops; done += kBatch) {
      const auto batch_start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kBatch; ++i) {
        seed = common::splitmix64(seed);
        now_ns += 1'000'000;
        (void)naive.submit(i % kTenants, seed, now_ns);
      }
      submit_s += seconds_since(batch_start);
      (void)naive.pump();
    }
    r.naive_ns_per_op = submit_s * 1e9 / static_cast<double>(total_ops);
    r.naive_mops = static_cast<double>(total_ops) / submit_s / 1e6;
  }

  r.naive_over_pooled = r.naive_ns_per_op / r.pooled_ns_per_op;

  // --- contended variant: kThreads producers, one pump/drain thread.
  constexpr std::size_t kThreads = 4;
  const std::size_t per_thread = total_ops / kThreads;
  {
    service::ServiceConfig cfg;
    for (std::size_t i = 0; i < kThreads; ++i) {
      service::TenantConfig t;
      t.name = "tenant-" + std::to_string(i);
      t.max_open = 8192;
      t.initial_rate = 1e9;
      t.burst_s = 1.0;
      cfg.tenants.push_back(std::move(t));
    }
    cfg.global_max_open = kThreads * 8192;
    cfg.max_dispatched = 1 << 20;
    cfg.max_dispatch_per_tick = 1 << 20;
    cfg.backpressure_enabled = false;

    service::SimulatedBackendConfig bcfg;
    bcfg.slots = 8192;
    bcfg.duration_scale = 1e-12;
    bcfg.reserve_events = 3 * cfg.global_max_open + 64;
    service::SimulatedBackend backend(bcfg);
    service::CampaignService svc(cfg, backend);
    backend.attach(svc);

    std::atomic<bool> stop{false};
    // Wall timestamps for the virtual clock: monotonically nondecreasing
    // across threads is not required by the service (each record only
    // compares against its own submit time).
    std::thread pump([&] {
      std::uint64_t now_ns = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        now_ns += 10'000'000;  // 10 ms virtual per pump pass
        svc.tick(now_ns);
        backend.advance_to(now_ns);
      }
      now_ns += 10'000'000;
      svc.tick(now_ns);
      backend.advance_to(now_ns);
    });
    std::vector<std::thread> workers;
    std::vector<double> elapsed(kThreads, 0.0);
    for (std::size_t w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        std::uint64_t seed = 0x5EEDULL + w;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < per_thread; ++i) {
          seed = common::splitmix64(seed);
          (void)svc.submit(static_cast<service::TenantId>(w), seed, 1,
                           static_cast<std::uint64_t>(i) * 1'000);
        }
        elapsed[w] = seconds_since(start);
      });
    }
    for (auto& t : workers) t.join();
    stop.store(true);
    pump.join();
    const double worst = *std::max_element(elapsed.begin(), elapsed.end());
    r.pooled_mt_ns_per_op =
        worst * 1e9 / static_cast<double>(per_thread);
    r.pooled_mt_mops =
        static_cast<double>(kThreads * per_thread) / worst / 1e6;
  }
  {
    NaiveService naive(kThreads);
    std::atomic<bool> stop{false};
    std::thread pump([&] {
      while (!stop.load(std::memory_order_relaxed)) (void)naive.pump();
      (void)naive.pump();
    });
    std::vector<std::thread> workers;
    std::vector<double> elapsed(kThreads, 0.0);
    for (std::size_t w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        std::uint64_t seed = 0x5EEDULL + w;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < per_thread; ++i) {
          seed = common::splitmix64(seed);
          (void)naive.submit(w, seed, static_cast<std::uint64_t>(i) * 1'000);
        }
        elapsed[w] = seconds_since(start);
      });
    }
    for (auto& t : workers) t.join();
    stop.store(true);
    pump.join();
    const double worst = *std::max_element(elapsed.begin(), elapsed.end());
    r.naive_mt_ns_per_op = worst * 1e9 / static_cast<double>(per_thread);
    r.naive_mt_mops =
        static_cast<double>(kThreads * per_thread) / worst / 1e6;
  }
  r.naive_over_pooled_mt = r.naive_mt_ns_per_op / r.pooled_mt_ns_per_op;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      opt.check = argv[++i];
    } else {
      std::cerr << "usage: bench_service [--smoke] [--out FILE] "
                   "[--check BASELINE]\n";
      return 2;
    }
  }

  // --- tenant-scaling study (virtual time; bit-deterministic).
  const std::vector<std::size_t> tenant_counts =
      opt.smoke ? std::vector<std::size_t>{1, 10, 100}
                : std::vector<std::size_t>{1, 10, 100, 1000};
  const double virtual_s = opt.smoke ? 120.0 : 600.0;
  common::Json::Object scaling;
  double fairness_t10 = 1.0;
  double goodput_per_slot_t10 = 0.0;
  for (const auto n : tenant_counts) {
    const auto s = run_tenant_scaling(n, virtual_s, /*seed=*/42);
    const auto& rep = s.report;
    scaling["tenants" + std::to_string(n)] = common::Json::Object{
        {"tenants", s.tenants},
        {"slots", s.slots},
        {"virtual_s", s.virtual_s},
        {"offered_per_tenant", s.offered_per_tenant},
        {"submitted", rep.submitted},
        {"admitted", rep.admitted},
        {"rejected", rep.rejected},
        {"shed", rep.shed},
        {"completed", rep.completed},
        {"campaigns_per_s", s.campaigns_per_s},
        {"first_result_p50_s",
         static_cast<double>(rep.first_result_p50_ns) * 1e-9},
        {"first_result_p99_s",
         static_cast<double>(rep.first_result_p99_ns) * 1e-9},
        {"first_result_p999_s",
         static_cast<double>(rep.first_result_p999_ns) * 1e-9},
        {"fairness_jain", rep.fairness_jain},
        {"mean_admission_rate", s.mean_admission_rate},
        {"wall_s", s.wall_s},
    };
    std::cout << "scaling tenants=" << s.tenants << " slots=" << s.slots
              << ": " << s.campaigns_per_s << " campaigns/s, p50/p99/p999 "
              << static_cast<double>(rep.first_result_p50_ns) * 1e-9 << "/"
              << static_cast<double>(rep.first_result_p99_ns) * 1e-9 << "/"
              << static_cast<double>(rep.first_result_p999_ns) * 1e-9
              << " s, fairness " << rep.fairness_jain << ", rejected "
              << rep.rejected << ", shed " << rep.shed << " (wall "
              << s.wall_s << " s)\n";
    if (n == 10) {
      fairness_t10 = rep.fairness_jain;
      goodput_per_slot_t10 =
          s.campaigns_per_s / static_cast<double>(s.slots);
    }
  }

  // --- hot-path microbench (wall clock).
  const std::size_t hot_ops = opt.smoke ? 1u << 18 : 1u << 21;
  const auto hot = run_hot_path(hot_ops);
  std::cout << "hot path (1 thread): pooled " << hot.pooled_ns_per_op
            << " ns/op (" << hot.pooled_mops << " Mops/s, "
            << hot.pooled_admitted << "/" << hot_ops
            << " admitted, pool hw " << hot.pool_high_water << "), naive "
            << hot.naive_ns_per_op << " ns/op => " << hot.naive_over_pooled
            << "x\n";
  std::cout << "hot path (4 threads): pooled " << hot.pooled_mt_ns_per_op
            << " ns/op (" << hot.pooled_mt_mops << " Mops/s), naive "
            << hot.naive_mt_ns_per_op << " ns/op => "
            << hot.naive_over_pooled_mt << "x\n";

  // --- cross-machine-stable gates. The virtual-time numbers are
  // bit-deterministic; naive_over_pooled is a same-machine ratio.
  common::Json::Object ratios{
      {"naive_over_pooled", hot.naive_over_pooled},
      {"naive_over_pooled_mt", hot.naive_over_pooled_mt},
      {"fairness_tenants10", fairness_t10},
      {"goodput_per_slot_tenants10", goodput_per_slot_t10},
  };
  for (const auto& [name, value] : ratios)
    std::cout << "ratio " << name << ": " << value.as_number() << "\n";

  const common::Json doc{common::Json::Object{
      {"schema", "impress.bench_service.v1"},
      {"mode", opt.smoke ? "smoke" : "full"},
      {"hardware_threads",
       static_cast<std::size_t>(std::thread::hardware_concurrency())},
      {"tenant_scaling", std::move(scaling)},
      {"hot_path",
       common::Json::Object{
           {"ops", hot_ops},
           {"pooled_ns_per_op", hot.pooled_ns_per_op},
           {"pooled_mops", hot.pooled_mops},
           {"pooled_admitted", hot.pooled_admitted},
           {"pool_high_water", hot.pool_high_water},
           {"naive_ns_per_op", hot.naive_ns_per_op},
           {"naive_mops", hot.naive_mops},
           {"pooled_mt_ns_per_op", hot.pooled_mt_ns_per_op},
           {"pooled_mt_mops", hot.pooled_mt_mops},
           {"naive_mt_ns_per_op", hot.naive_mt_ns_per_op},
           {"naive_mt_mops", hot.naive_mt_mops},
       }},
      {"ratios", ratios},
  }};
  {
    std::ofstream out(opt.out);
    if (!out) {
      std::cerr << "bench_service: cannot write " << opt.out << "\n";
      return 1;
    }
    out << doc.dump(2) << "\n";
  }
  std::cout << "wrote " << opt.out << "\n";

  if (opt.check.empty()) return 0;

  // --- regression gate against the checked-in baseline.
  std::ifstream in(opt.check);
  if (!in) {
    std::cerr << "bench_service: cannot read baseline " << opt.check << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto baseline = common::Json::parse(buf.str());
  int failures = 0;
  constexpr double kRegressionFloor = 0.8;  // keep >= 80% of baseline
  for (const auto& [name, value] : ratios) {
    if (!baseline.at("ratios").contains(name)) continue;  // schema drift
    const double base = baseline.at("ratios").at(name).as_number();
    const double current = value.as_number();
    if (current < kRegressionFloor * base) {
      std::cerr << "FAIL: ratio '" << name << "' regressed: " << current
                << " < " << kRegressionFloor << " * baseline " << base
                << "\n";
      ++failures;
    }
  }
  // Absolute sanity floor: any machine that can run the suite at all
  // clears half a million pooled submissions per second; below that the
  // allocation-free path has rotted (e.g. a per-request allocation or a
  // string lookup crept back in).
  constexpr double kAbsoluteFloorMops = 0.5;
  if (hot.pooled_mops < kAbsoluteFloorMops) {
    std::cerr << "FAIL: pooled submit " << hot.pooled_mops
              << " Mops/s under the " << kAbsoluteFloorMops
              << " Mops/s sanity floor\n";
    ++failures;
  }
  if (failures == 0) std::cout << "bench_service check: OK\n";
  return failures == 0 ? 0 : 1;
}
