// Middleware microbenchmarks (google-benchmark): the primitive costs
// behind the paper's "asynchronous execution and dynamic resource
// allocation" claims — channel throughput, scheduler placement, event
// engine, thread-pool dispatch, and end-to-end simulated task turnaround.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/channel.hpp"
#include "common/thread_pool.hpp"
#include "hpc/profiler.hpp"
#include "hpc/resource_pool.hpp"
#include "runtime/session.hpp"
#include "sim/engine.hpp"

using namespace impress;

namespace {

void BM_ProfilerRecord(benchmark::State& state) {
  // Hot-path cost of one profiler record. The per-thread buffers mean the
  // multi-threaded variants should scale instead of serializing on a
  // global mutex. Iterations are pinned so the retained event log stays
  // bounded; the buffers are drained between runs.
  static hpc::Profiler profiler;
  if (state.thread_index() == 0) profiler.clear();
  double t = 0.0;
  for (auto _ : state)
    profiler.record(t += 1.0, "task.000001", "exec_start");
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) profiler.clear();
}
BENCHMARK(BM_ProfilerRecord)
    ->Iterations(1 << 15)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8);

void BM_ChannelSendReceive(benchmark::State& state) {
  common::Channel<int> ch;
  for (auto _ : state) {
    ch.send(1);
    benchmark::DoNotOptimize(ch.receive());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSendReceive);

void BM_ChannelMpmcThroughput(benchmark::State& state) {
  // Producer/consumer pair across threads, batched per iteration.
  const int kBatch = 1024;
  for (auto _ : state) {
    common::Channel<int> ch(256);
    std::thread producer([&] {
      for (int i = 0; i < kBatch; ++i) ch.send(i);
      ch.close();
    });
    int received = 0;
    while (ch.receive()) ++received;
    producer.join();
    if (received != kBatch) state.SkipWithError("lost messages");
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ChannelMpmcThroughput);

void BM_ResourcePoolAllocateRelease(benchmark::State& state) {
  hpc::ResourcePool pool(hpc::amarel_node());
  const hpc::ResourceRequest req{.cores = 7, .gpus = 1, .mem_gb = 0.0};
  for (auto _ : state) {
    auto a = pool.allocate(req);
    benchmark::DoNotOptimize(a);
    pool.release(*a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourcePoolAllocateRelease);

void BM_EngineEventThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i)
      engine.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    engine.run();
    if (fired != n) state.SkipWithError("missing events");
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(10000);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  common::ThreadPool pool(4);
  for (auto _ : state) {
    auto f = pool.submit([] { return 42; });
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThreadPoolDispatch);

void BM_SimulatedTaskTurnaround(benchmark::State& state) {
  // Full submit -> schedule -> execute -> complete cycle through the
  // pilot runtime with N tasks per iteration, simulated clock.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rp::Session session(rp::SessionConfig{});
    rp::PilotDescription pd;
    session.submit_pilot(pd);
    for (std::size_t i = 0; i < n; ++i)
      session.task_manager().submit(
          rp::make_simple_task("t" + std::to_string(i), 1, 0, 10.0));
    session.run();
    if (session.task_manager().done() != n)
      state.SkipWithError("tasks not completed");
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_SimulatedTaskTurnaround)->Arg(100)->Arg(1000);

void BM_SchedulerBackfillPlacement(benchmark::State& state) {
  // Mixed-width queue against a busy pool: cost of one scheduling pass.
  for (auto _ : state) {
    state.PauseTiming();
    rp::Session session(rp::SessionConfig{});
    rp::PilotDescription pd;
    pd.policy = rp::SchedulerPolicy::kBackfill;
    auto pilot = session.submit_pilot(pd);
    std::vector<rp::TaskDescription> tds;
    for (int i = 0; i < 200; ++i)
      tds.push_back(rp::make_simple_task("t" + std::to_string(i),
                                         i % 3 == 0 ? 7 : 2, i % 5 == 0 ? 1 : 0,
                                         50.0));
    state.ResumeTiming();
    session.task_manager().submit(std::move(tds));
    session.run();
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_SchedulerBackfillPlacement);

}  // namespace

BENCHMARK_MAIN();
