// Scaling study (beyond the paper's single node; its stated future
// direction is "adaptive execution of heterogeneous workflows across
// diverse platforms"): the 16-complex IM-RP campaign on pilots of 1-8
// Amarel-class nodes. Reports makespan, speedup, efficiency and
// utilization per node count.
//
// Expected shape: near-linear speedup while the concurrent pipeline count
// exceeds node capacity, flattening once every pipeline chain runs
// unblocked (the critical path — one trajectory's serial chain — bounds
// makespan from below).

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/campaign.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  std::size_t n_targets = 16;
  if (argc > 1) seed = std::stoull(argv[1]);
  if (argc > 2) n_targets = std::stoull(argv[2]);

  const auto targets = protein::pdz_benchmark(n_targets);

  common::Table table({"nodes", "cores", "gpus", "time (h)", "speedup",
                       "efficiency", "CPU %", "GPU %", "fold tasks"});
  for (std::size_t c = 0; c < table.columns(); ++c)
    table.set_align(c, common::Table::Align::kRight);

  double base_makespan = 0.0;
  for (const std::size_t nodes : {1u, 2u, 4u, 8u}) {
    auto cfg = core::im_rp_campaign(seed);
    cfg.name = "IM-RP-" + std::to_string(nodes) + "n";
    cfg.pilot.nodes.assign(nodes, hpc::amarel_node());
    const auto r = core::Campaign(cfg).run(targets);
    if (nodes == 1) base_makespan = r.makespan_h;
    const double speedup = base_makespan / r.makespan_h;
    table.add_row({
        std::to_string(nodes),
        std::to_string(nodes * 28),
        std::to_string(nodes * 4),
        common::format_fixed(r.makespan_h, 1),
        common::format_fixed(speedup, 2),
        common::format_fixed(speedup / static_cast<double>(nodes), 2),
        common::format_fixed(r.utilization.cpu_active * 100.0, 1) + "%",
        common::format_fixed(r.utilization.gpu_active * 100.0, 1) + "%",
        std::to_string(r.fold_tasks),
    });
  }

  std::printf("# IM-RP scaling over pilot size (%zu PDZ complexes, seed "
              "%llu)\n\n%s\n",
              n_targets, static_cast<unsigned long long>(seed),
              table.render().c_str());
  std::printf("speedup saturates once concurrency is no longer "
              "resource-bound: the critical path is one trajectory's serial "
              "MPNN->AF(->retry) chain.\n");
  return 0;
}
