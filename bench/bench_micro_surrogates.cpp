// Surrogate-model microbenchmarks (google-benchmark): the per-call cost
// of the science kernels — landscape fitness, ProteinMPNN design,
// AlphaFold prediction, Kabsch superposition and PDB round-trip — which
// bound how fast campaigns replay on the virtual clock.

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "fold/fold.hpp"
#include "fold/fold_cache.hpp"
#include "mpnn/mpnn.hpp"
#include "protein/datasets.hpp"
#include "protein/geometry.hpp"
#include "protein/kernel_tables.hpp"
#include "protein/pdb.hpp"

using namespace impress;

namespace {

/// A fixed stream of (position, residue) proposals so the naive and
/// incremental mutation-scoring benches evaluate the identical workload.
std::vector<std::pair<std::size_t, protein::AminoAcid>> proposal_stream(
    std::size_t length, std::size_t n) {
  common::Rng rng(11);
  std::vector<std::pair<std::size_t, protein::AminoAcid>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.emplace_back(rng.below(static_cast<std::uint32_t>(length)),
                     static_cast<protein::AminoAcid>(rng.below(
                         static_cast<std::uint32_t>(protein::kNumAminoAcids))));
  return out;
}

const protein::DesignTarget& target() {
  static const auto t = protein::make_target(
      "BENCH", 96, protein::alpha_synuclein().tail(10));
  return t;
}

void BM_LandscapeFitness(benchmark::State& state) {
  const auto& t = target();
  const auto seq = t.start_receptor;
  for (auto _ : state) benchmark::DoNotOptimize(t.landscape.fitness(seq));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LandscapeFitness);

void BM_MutationScoreNaive(benchmark::State& state) {
  // Score a point mutation the pre-optimization way: copy the sequence
  // and recompute the full fitness. Baseline for the incremental kernel.
  const auto& t = target();
  const auto seq = t.start_receptor;
  const auto proposals = proposal_stream(seq.size(), 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [pos, aa] = proposals[i++ & 1023];
    benchmark::DoNotOptimize(t.landscape.fitness(seq.with_mutation(pos, aa)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutationScoreNaive);

void BM_MutationScoreIncremental(benchmark::State& state) {
  // Same workload through MutationScorer::score_mutation — O(log L)
  // partial-sum updates, bit-identical results. Speedup vs the naive
  // bench above is the acceptance criterion for the kernel pass.
  const auto& t = target();
  const protein::FitnessLandscape::MutationScorer scorer(t.landscape,
                                                         t.start_receptor);
  const auto proposals = proposal_stream(t.start_receptor.size(), 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [pos, aa] = proposals[i++ & 1023];
    benchmark::DoNotOptimize(scorer.score_mutation(pos, aa));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutationScoreIncremental);

void BM_LandscapePreference(benchmark::State& state) {
  // O(1) pocket-index lookup (was a binary search per call).
  const auto& t = target();
  const auto proposals = proposal_stream(t.start_receptor.size(), 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [pos, aa] = proposals[i++ & 1023];
    benchmark::DoNotOptimize(t.landscape.preference(pos, aa));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LandscapePreference);

void BM_ResidueSimilarityDirect(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = static_cast<protein::AminoAcid>(i % protein::kNumAminoAcids);
    const auto b =
        static_cast<protein::AminoAcid>((i / 7) % protein::kNumAminoAcids);
    benchmark::DoNotOptimize(protein::detail::residue_similarity_direct(a, b));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResidueSimilarityDirect);

void BM_ResidueSimilarityTable(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = static_cast<protein::AminoAcid>(i % protein::kNumAminoAcids);
    const auto b =
        static_cast<protein::AminoAcid>((i / 7) % protein::kNumAminoAcids);
    benchmark::DoNotOptimize(protein::residue_similarity(a, b));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResidueSimilarityTable);

void BM_SeedSequence(benchmark::State& state) {
  // seed_sequence is the constructor-time hot loop of every DesignTarget;
  // it now runs on the incremental scorer.
  const auto& t = target();
  common::Rng rng(13);
  for (auto _ : state)
    benchmark::DoNotOptimize(t.landscape.seed_sequence(0.45, rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeedSequence);

void BM_FoldCacheHit(benchmark::State& state) {
  // Steady-state hit cost of the fold memo cache: every iteration after
  // the first resolves to the same entry.
  const auto& t = target();
  const auto cx = t.start_complex();
  const fold::AlphaFold model;
  fold::FoldCache cache;
  const common::Rng rng(7);
  for (auto _ : state) {
    common::Rng task_rng = rng;
    benchmark::DoNotOptimize(cache.predict(model, cx, t.landscape, task_rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FoldCacheHit);

void BM_MpnnDesign(benchmark::State& state) {
  const auto& t = target();
  const auto cx = t.start_complex();
  mpnn::SamplerConfig cfg;
  cfg.num_sequences = static_cast<std::size_t>(state.range(0));
  const mpnn::Mpnn model(cfg);
  common::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(model.design(cx, t.landscape, rng));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MpnnDesign)->Arg(10)->Arg(100);

void BM_AlphaFoldPredict(benchmark::State& state) {
  const auto& t = target();
  const auto cx = t.start_complex();
  const fold::AlphaFold model;
  common::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(model.predict(cx, t.landscape, rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AlphaFoldPredict);

void BM_KabschRmsd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = protein::ideal_helix(n);
  auto b = a;
  for (auto& p : b) p = protein::Vec3{p.z, p.x, p.y + 3.0};  // rotated+shifted
  for (auto _ : state)
    benchmark::DoNotOptimize(protein::rmsd_superposed(a, b));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KabschRmsd)->Arg(100)->Arg(1000);

void BM_PdbRoundTrip(benchmark::State& state) {
  const auto cx = target().start_complex();
  for (auto _ : state) {
    const auto text = protein::to_pdb(cx.structure);
    benchmark::DoNotOptimize(protein::from_pdb(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PdbRoundTrip);

}  // namespace

BENCHMARK_MAIN();
