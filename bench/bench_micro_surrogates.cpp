// Surrogate-model microbenchmarks (google-benchmark): the per-call cost
// of the science kernels — landscape fitness, ProteinMPNN design,
// AlphaFold prediction, Kabsch superposition and PDB round-trip — which
// bound how fast campaigns replay on the virtual clock.

#include <benchmark/benchmark.h>

#include "fold/fold.hpp"
#include "mpnn/mpnn.hpp"
#include "protein/datasets.hpp"
#include "protein/geometry.hpp"
#include "protein/pdb.hpp"

using namespace impress;

namespace {

const protein::DesignTarget& target() {
  static const auto t = protein::make_target(
      "BENCH", 96, protein::alpha_synuclein().tail(10));
  return t;
}

void BM_LandscapeFitness(benchmark::State& state) {
  const auto& t = target();
  const auto seq = t.start_receptor;
  for (auto _ : state) benchmark::DoNotOptimize(t.landscape.fitness(seq));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LandscapeFitness);

void BM_MpnnDesign(benchmark::State& state) {
  const auto& t = target();
  const auto cx = t.start_complex();
  mpnn::SamplerConfig cfg;
  cfg.num_sequences = static_cast<std::size_t>(state.range(0));
  const mpnn::Mpnn model(cfg);
  common::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(model.design(cx, t.landscape, rng));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MpnnDesign)->Arg(10)->Arg(100);

void BM_AlphaFoldPredict(benchmark::State& state) {
  const auto& t = target();
  const auto cx = t.start_complex();
  const fold::AlphaFold model;
  common::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(model.predict(cx, t.landscape, rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AlphaFoldPredict);

void BM_KabschRmsd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = protein::ideal_helix(n);
  auto b = a;
  for (auto& p : b) p = protein::Vec3{p.z, p.x, p.y + 3.0};  // rotated+shifted
  for (auto _ : state)
    benchmark::DoNotOptimize(protein::rmsd_superposed(a, b));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KabschRmsd)->Arg(100)->Arg(1000);

void BM_PdbRoundTrip(benchmark::State& state) {
  const auto cx = target().start_complex();
  for (auto _ : state) {
    const auto text = protein::to_pdb(cx.structure);
    benchmark::DoNotOptimize(protein::from_pdb(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PdbRoundTrip);

}  // namespace

BENCHMARK_MAIN();
