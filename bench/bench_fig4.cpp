// Fig 4 reproduction: CONT-V total CPU/GPU resource utilization over the
// campaign and its execution time. Paper: average CPU ~18.3%, GPU ~1%
// (one GPU occasionally busy), makespan 27.7 h. Expected shape: long
// CPU-only stretches (AlphaFold feature construction) with sparse, short
// GPU bursts, and large idle capacity throughout.

#include <cstdio>
#include <string>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);

  const auto targets = protein::four_pdz_domains();
  core::Campaign campaign(core::cont_v_campaign(seed));
  const auto result = campaign.run(targets);

  std::printf("# Fig 4: CONT-V total GPU/CPU resource utilization and "
              "execution time (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%s\n",
              core::render_utilization_figure(
                  result, "CONT-V utilization timeline (intensity ramp "
                          "' .:-=+*#%@' = 0-100%)")
                  .c_str());
  std::printf("paper reference: CPU ~18.3%%, GPU ~1%%, 27.7 h\n");
  return 0;
}
