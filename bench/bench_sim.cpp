// bench_sim: simulation-core scaling baseline.
//
// Self-timed (same conventions as bench_report): one JSON document —
// BENCH_sim.json — holding events/sec for every EventScheduler kind
// across total-event counts (1e6/1e7/1e8), pending-set sizes (1e2..1e6)
// and a cancel-heavy mix, plus a utilization-vs-scale study driving a
// simulated cluster of up to 10k heterogeneous nodes through the
// ResourcePool + UtilizationRecorder stack (the EXPERIMENTS.md §sim-scale
// tables come from this binary).
//
// Modes:
//   bench_sim [--out FILE]          full run (1e8-event sweeps; minutes)
//   bench_sim --smoke [--out FILE]  seconds-scale run for CI smoke jobs
//   bench_sim --check BASELINE      compare against a checked-in baseline:
//                                   fail (exit 1) if a gated scheduler
//                                   ratio drops below 0.8x its baseline
//                                   value or heap throughput falls under
//                                   the absolute sanity floor. Ratios are
//                                   gated, not raw ns — they are what
//                                   stays stable across machines.

#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "hpc/node.hpp"
#include "hpc/resource_pool.hpp"
#include "hpc/utilization.hpp"
#include "sim/engine.hpp"

using namespace impress;

namespace {

struct Options {
  std::string out = "BENCH_sim.json";
  std::string check;
  bool smoke = false;
};

constexpr sim::SchedulerKind kKinds[] = {sim::SchedulerKind::kHeap,
                                         sim::SchedulerKind::kMap,
                                         sim::SchedulerKind::kCalendar};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Deterministic delay stream: uniform in [0, 10) s at millisecond grain,
/// the near-sorted arrival regime event queues see in practice.
double next_delay(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>((state >> 33) % 10'000) * 1e-3;
}

/// Fire `total` events while holding ~`pending` in the queue: prefill
/// `pending` self-renewing events, each firing schedules one replacement
/// until the budget is spent, then the queue drains. Returns events/sec.
double run_throughput(sim::SchedulerKind kind, std::size_t total,
                      std::size_t pending) {
  sim::Engine e{sim::EngineConfig{.scheduler = kind}};
  std::uint64_t rng = 0x9E3779B97F4A7C15ULL;
  std::size_t scheduled = 0;
  std::function<void()> tick = [&] {
    if (scheduled < total) {
      ++scheduled;
      e.schedule_after(next_delay(rng), tick);
    }
  };
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < pending && scheduled < total; ++i) {
    ++scheduled;
    e.schedule_after(next_delay(rng), tick);
  }
  const std::size_t fired = e.run();
  const double s = seconds_since(start);
  if (fired != scheduled)
    std::cerr << "warning: fired " << fired << " != scheduled " << scheduled
              << "\n";
  return static_cast<double>(fired) / s;
}

/// Cancel-heavy mix: every fired event schedules its replacement plus a
/// decoy that is cancelled immediately — half of all queue insertions are
/// removed before firing (retry/backoff timer churn). Returns queue
/// operations (insert + cancel + fire) per second.
double run_cancel_heavy(sim::SchedulerKind kind, std::size_t total,
                        std::size_t pending) {
  sim::Engine e{sim::EngineConfig{.scheduler = kind}};
  std::uint64_t rng = 0xD1B54A32D192ED03ULL;
  std::size_t scheduled = 0;
  std::size_t cancels = 0;
  std::function<void()> tick = [&] {
    if (scheduled < total) {
      ++scheduled;
      e.schedule_after(next_delay(rng), tick);
    }
    const sim::EventId decoy = e.schedule_after(next_delay(rng), [] {});
    if (e.cancel(decoy)) ++cancels;
  };
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < pending && scheduled < total; ++i) {
    ++scheduled;
    e.schedule_after(next_delay(rng), tick);
  }
  const std::size_t fired = e.run();
  const double s = seconds_since(start);
  const double ops =
      static_cast<double>(fired) + 2.0 * static_cast<double>(cancels);
  return ops / s;
}

/// Utilization-vs-scale study: a FIFO task stream placed onto a
/// heterogeneous `nodes`-node cluster, completions releasing resources
/// and recording usage intervals. Measures what the campaign layer sees:
/// achieved active utilization, simulated makespan and allocator+engine
/// throughput at cluster scale.
struct ClusterStudy {
  std::size_t nodes = 0;
  std::size_t tasks = 0;
  double cpu_active = 0.0;
  double gpu_active = 0.0;
  double makespan_h = 0.0;
  double wall_s = 0.0;
  double ops_per_s = 0.0;  ///< allocations + releases per wall second
};

ClusterStudy run_cluster_study(std::size_t nodes, std::size_t tasks,
                               sim::SchedulerKind kind) {
  hpc::ResourcePool pool(hpc::make_cluster(nodes));
  hpc::UtilizationRecorder recorder(pool.total_cores(), pool.total_gpus());
  sim::Engine e{sim::EngineConfig{.scheduler = kind}};
  std::uint64_t rng = 0x853C49E6748FEA9BULL;

  // Four request shapes matching the cluster's node mix; durations
  // 10..70 simulated minutes.
  const hpc::ResourceRequest shapes[] = {
      {.cores = 16, .gpus = 0, .mem_gb = 32.0},
      {.cores = 4, .gpus = 1, .mem_gb = 16.0},
      {.cores = 28, .gpus = 4, .mem_gb = 64.0},
      {.cores = 1, .gpus = 0, .mem_gb = 2.0},
  };

  std::deque<std::size_t> waiting;  // task index FIFO
  for (std::size_t i = 0; i < tasks; ++i) waiting.push_back(i);
  std::size_t placements = 0;

  // Place the queue head whenever resources free up; completions release
  // and re-try. (Head-of-line blocking is intentional: it matches the
  // coordinator's submission order guarantee.)
  std::function<void()> try_place = [&] {
    while (!waiting.empty()) {
      const std::size_t idx = waiting.front();
      const auto& req = shapes[idx % std::size(shapes)];
      auto alloc = pool.allocate(req);
      if (!alloc) break;
      waiting.pop_front();
      ++placements;
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      const double dur = 600.0 + static_cast<double>((rng >> 33) % 3600);
      const double t0 = e.now();
      e.schedule_after(dur, [&, a = std::move(*alloc), t0, dur, idx] {
        recorder.record(hpc::UsageInterval{
            .start = t0,
            .end = t0 + dur,
            .cores = static_cast<std::uint32_t>(a.cores.size()),
            .gpus = static_cast<std::uint32_t>(a.gpus.size()),
            .cpu_intensity = 0.8,
            .gpu_intensity = 0.6,
            .task_uid = "task." + std::to_string(idx)});
        pool.release(a);
        try_place();
      });
    }
  };

  const auto start = std::chrono::steady_clock::now();
  try_place();
  e.run();
  const double wall = seconds_since(start);

  const auto summary = recorder.summarize();
  ClusterStudy s;
  s.nodes = nodes;
  s.tasks = tasks;
  s.cpu_active = summary.cpu_active;
  s.gpu_active = summary.gpu_active;
  s.makespan_h = recorder.latest_end() / 3600.0;
  s.wall_s = wall;
  s.ops_per_s = static_cast<double>(2 * placements) / wall;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      opt.check = argv[++i];
    } else {
      std::cerr << "usage: bench_sim [--smoke] [--out FILE] "
                   "[--check BASELINE]\n";
      return 2;
    }
  }

  // --- Throughput vs total events (pending set held at 1e4).
  const std::vector<std::size_t> totals =
      opt.smoke ? std::vector<std::size_t>{100'000, 1'000'000}
                : std::vector<std::size_t>{1'000'000, 10'000'000, 100'000'000};
  common::Json::Object throughput;
  for (const auto kind : kKinds) {
    common::Json::Object per_kind;
    for (const auto total : totals) {
      const double evps = run_throughput(kind, total, 10'000);
      per_kind["n" + std::to_string(total)] = evps;
      std::cout << "throughput " << sim::to_string(kind) << " n=" << total
                << ": " << static_cast<std::uint64_t>(evps) << " ev/s\n";
    }
    throughput[std::string(sim::to_string(kind))] = std::move(per_kind);
  }

  // --- Throughput vs pending-set size (fixed firing budget on top).
  const std::vector<std::size_t> pendings =
      opt.smoke ? std::vector<std::size_t>{100, 10'000}
                : std::vector<std::size_t>{100, 1'000, 10'000, 100'000,
                                           1'000'000};
  const std::size_t sweep_budget = opt.smoke ? 100'000 : 1'000'000;
  common::Json::Object pending_sweep;
  for (const auto kind : kKinds) {
    common::Json::Object per_kind;
    for (const auto pending : pendings) {
      const double evps =
          run_throughput(kind, pending + sweep_budget, pending);
      per_kind["p" + std::to_string(pending)] = evps;
      std::cout << "pending " << sim::to_string(kind) << " p=" << pending
                << ": " << static_cast<std::uint64_t>(evps) << " ev/s\n";
    }
    pending_sweep[std::string(sim::to_string(kind))] = std::move(per_kind);
  }

  // --- Cancel-heavy mix (half of all insertions cancelled).
  const std::size_t cancel_total = opt.smoke ? 100'000 : 1'000'000;
  common::Json::Object cancel_heavy;
  for (const auto kind : kKinds) {
    const double opss = run_cancel_heavy(kind, cancel_total, 10'000);
    cancel_heavy[std::string(sim::to_string(kind))] = opss;
    std::cout << "cancel-heavy " << sim::to_string(kind) << ": "
              << static_cast<std::uint64_t>(opss) << " ops/s\n";
  }

  // --- Cross-machine-stable ratios (gated by --check). p10000 exists in
  // both smoke and full sweeps.
  const auto pending_of = [&](const char* kind, const char* key) {
    return pending_sweep.at(kind).as_object().at(key).as_number();
  };
  common::Json::Object ratios{
      {"calendar_over_heap_p10000",
       pending_of("calendar", "p10000") / pending_of("heap", "p10000")},
      {"map_over_heap_p10000",
       pending_of("map", "p10000") / pending_of("heap", "p10000")},
  };
  for (const auto& [name, value] : ratios)
    std::cout << "ratio " << name << ": " << value.as_number() << "x\n";

  // --- Utilization vs cluster scale (the 10k-node study). Calendar
  // scheduler: the large-pending regime is what it exists for.
  const std::vector<std::size_t> cluster_sizes =
      opt.smoke ? std::vector<std::size_t>{100, 1'000}
                : std::vector<std::size_t>{100, 1'000, 10'000};
  const std::size_t tasks_per_node = opt.smoke ? 4 : 20;
  common::Json::Object utilization_scale;
  for (const auto nodes : cluster_sizes) {
    const auto s = run_cluster_study(nodes, nodes * tasks_per_node,
                                     sim::SchedulerKind::kCalendar);
    utilization_scale["nodes" + std::to_string(nodes)] = common::Json::Object{
        {"nodes", s.nodes},
        {"tasks", s.tasks},
        {"cpu_active", s.cpu_active},
        {"gpu_active", s.gpu_active},
        {"makespan_h", s.makespan_h},
        {"wall_s", s.wall_s},
        {"alloc_release_ops_per_s", s.ops_per_s},
    };
    std::cout << "cluster nodes=" << s.nodes << " tasks=" << s.tasks
              << " cpu_active=" << s.cpu_active
              << " gpu_active=" << s.gpu_active
              << " makespan_h=" << s.makespan_h << " wall_s=" << s.wall_s
              << "\n";
  }

  const common::Json doc{common::Json::Object{
      {"schema", "impress.bench_sim.v1"},
      {"mode", opt.smoke ? "smoke" : "full"},
      {"hardware_threads",
       static_cast<std::size_t>(std::thread::hardware_concurrency())},
      {"throughput", std::move(throughput)},
      {"pending_sweep", pending_sweep},
      {"cancel_heavy", std::move(cancel_heavy)},
      {"ratios", ratios},
      {"utilization_scale", std::move(utilization_scale)},
  }};
  {
    std::ofstream out(opt.out);
    if (!out) {
      std::cerr << "bench_sim: cannot write " << opt.out << "\n";
      return 1;
    }
    out << doc.dump(2) << "\n";
  }
  std::cout << "wrote " << opt.out << "\n";

  if (opt.check.empty()) return 0;

  // --- Regression gate against the checked-in baseline.
  std::ifstream in(opt.check);
  if (!in) {
    std::cerr << "bench_sim: cannot read baseline " << opt.check << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto baseline = common::Json::parse(buf.str());
  int failures = 0;
  constexpr double kRegressionFloor = 0.8;  // keep >= 80% of baseline ratio
  for (const auto& [name, value] : ratios) {
    if (!baseline.at("ratios").contains(name)) continue;  // schema drift
    const double base = baseline.at("ratios").at(name).as_number();
    const double current = value.as_number();
    if (current < kRegressionFloor * base) {
      std::cerr << "FAIL: ratio '" << name << "' regressed: " << current
                << "x < " << kRegressionFloor << " * baseline " << base
                << "x\n";
      ++failures;
    }
  }
  // Absolute sanity floor: any machine that can run the suite at all
  // clears 1e5 ev/s on the heap at p=1e4; below that something is badly
  // broken (e.g. an accidental O(n) scan on the hot path).
  constexpr double kAbsoluteFloor = 1e5;
  if (pending_of("heap", "p10000") < kAbsoluteFloor) {
    std::cerr << "FAIL: heap p10000 throughput "
              << pending_of("heap", "p10000") << " ev/s under the " << kAbsoluteFloor
              << " sanity floor\n";
    ++failures;
  }
  if (failures == 0) std::cout << "bench_sim check: OK\n";
  return failures == 0 ? 0 : 1;
}
