// bench_infer: inference-server batching baseline.
//
// Self-timed (same conventions as bench_sim): one JSON document —
// BENCH_infer.json — holding the modeled batching study (GPU-seconds
// speedup per batch size under the setup-dominated cost model), an
// arrival-cadence sweep showing how the linger budget erodes batching
// when requests are sparse, the dispatch hot-path wall throughput, the
// adaptive tuner's converged sizes per completion cadence, and a full
// campaign run with the server enabled (the EXPERIMENTS.md §gpu-batching
// tables come from this binary).
//
// Modes:
//   bench_infer [--out FILE]          full run
//   bench_infer --smoke [--out FILE]  seconds-scale run for CI smoke jobs
//   bench_infer --check BASELINE      compare against a checked-in
//                                     baseline: fail (exit 1) if the
//                                     batch-8 speedup drops under the 3x
//                                     acceptance gate or 0.8x its
//                                     baseline value, or the dispatch
//                                     path falls under the absolute
//                                     sanity floor.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "core/campaign.hpp"
#include "infer/infer.hpp"
#include "protein/datasets.hpp"

using namespace impress;

namespace {

struct Options {
  std::string out = "BENCH_infer.json";
  std::string check;
  bool smoke = false;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Bench-grade cost model: setup 6x the per-item cost, the regime where
/// batching pays (weight residency + launch setup amortized across the
/// batch). A full batch of 8 models (6 + 8) vs 8 x (6 + 1): 4x.
constexpr infer::GpuCostModel kCost{.setup_s = 6.0, .per_item_s = 1.0};

infer::InferenceServer::Config bench_config(std::uint32_t max_batch) {
  infer::InferenceServer::Config cfg;
  cfg.policy.max_batch = max_batch;
  cfg.policy.max_linger_s = 600.0;
  cfg.fold_cost = kCost;
  cfg.design_cost = kCost;
  return cfg;
}

std::vector<mpnn::ScoredSequence> no_designs() { return {}; }

/// Drive `n` design requests arriving `cadence_s` apart through a server
/// with the given max batch and report the accounting.
infer::StreamStats run_stream(std::uint32_t max_batch, std::size_t n,
                              double cadence_s) {
  infer::InferenceServer server(bench_config(max_batch));
  for (std::size_t i = 0; i < n; ++i)
    (void)server.design(no_designs, cadence_s * static_cast<double>(i));
  return server.snapshot().design;
}

common::Json::Object stream_json(const infer::StreamStats& s) {
  return common::Json::Object{
      {"requests", s.requests},
      {"batches", s.batches},
      {"max_batch", static_cast<std::size_t>(s.max_batch)},
      {"batched_gpu_s", s.batched_gpu_s},
      {"unbatched_gpu_s", s.unbatched_gpu_s},
      {"speedup", s.speedup()},
  };
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      opt.check = argv[++i];
    } else {
      std::cerr << "usage: bench_infer [--smoke] [--out FILE] "
                   "[--check BASELINE]\n";
      return 2;
    }
  }

  // --- Modeled batching study: back-to-back arrivals (cadence well under
  // the linger budget) so every batch fills to the configured size. The
  // speedup is pure arithmetic — B(setup+per) / (setup+B*per) — so it is
  // identical across machines and smoke/full modes.
  const std::size_t sweep_n = opt.smoke ? 4'096 : 65'536;
  common::Json::Object batching_sweep;
  double speedup_b8 = 0.0;
  for (const std::uint32_t b : {1u, 2u, 4u, 8u, 16u}) {
    const auto s = run_stream(b, sweep_n, 0.0);
    if (b == 8) speedup_b8 = s.speedup();
    batching_sweep["b" + std::to_string(b)] = stream_json(s);
    std::cout << "batching b=" << b << ": speedup " << s.speedup() << "x ("
              << s.batches << " batches)\n";
  }

  // --- Arrival-cadence sweep at max_batch 8: as the gap between requests
  // approaches the 600 s linger budget, batches close before they fill
  // and the speedup decays toward 1x.
  common::Json::Object cadence_sweep;
  for (const double cadence : {0.0, 75.0, 150.0, 300.0, 700.0}) {
    const auto s = run_stream(8, opt.smoke ? 1'024 : 8'192, cadence);
    cadence_sweep["gap" + std::to_string(static_cast<int>(cadence))] =
        stream_json(s);
    std::cout << "cadence gap=" << cadence << "s: speedup " << s.speedup()
              << "x (max batch " << s.max_batch << ")\n";
  }

  // --- Dispatch hot path: wall throughput of the accounting itself (the
  // science call is a no-op here). This is what executor threads pay per
  // request on top of the model call.
  const std::size_t dispatch_n = opt.smoke ? 200'000 : 2'000'000;
  infer::InferenceServer dispatch_server(bench_config(8));
  const auto dispatch_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < dispatch_n; ++i)
    (void)dispatch_server.design(no_designs, 0.0);
  const double dispatch_wall = seconds_since(dispatch_start);
  const double dispatch_rps = static_cast<double>(dispatch_n) / dispatch_wall;
  std::cout << "dispatch path: " << static_cast<std::uint64_t>(dispatch_rps)
            << " req/s\n";

  // --- Adaptive tuner: converged batch size per completion cadence
  // (linger 600 s, so the tuner targets 1 + floor(600/gap)).
  common::Json::Object tuner_study;
  for (const double gap : {50.0, 100.0, 300.0, 900.0}) {
    infer::BatchTuner tuner(
        infer::BatchTuner::Config{.ewma_alpha = 0.25,
                                  .min_batch = 1,
                                  .max_batch = 16,
                                  .max_linger_s = 600.0},
        /*initial_batch=*/8);
    for (int i = 0; i < 64; ++i)
      (void)tuner.observe(gap * static_cast<double>(i));
    tuner_study["gap" + std::to_string(static_cast<int>(gap))] =
        common::Json::Object{
            {"batch_size", static_cast<std::size_t>(tuner.batch_size())},
            {"decisions", tuner.decisions()},
        };
    std::cout << "tuner gap=" << gap << "s: batch " << tuner.batch_size()
              << " (" << tuner.decisions() << " decisions)\n";
  }

  // --- Campaign study: the IM-RP protocol with the server enabled and
  // the default (AlphaFold-calibrated) cost models. Virtual arrival times
  // come from the simulated schedule, so batching here reflects what the
  // protocol's real concurrency structure can fill.
  auto cfg = core::im_rp_campaign(7);
  cfg.enable_infer = true;
  cfg.infer_config.adaptive = true;
  std::vector<protein::DesignTarget> targets;
  targets.push_back(
      protein::make_target("BN-A", 84, protein::alpha_synuclein().tail(10)));
  if (!opt.smoke)
    targets.push_back(
        protein::make_target("BN-B", 90, protein::alpha_synuclein().tail(10)));
  const auto campaign_start = std::chrono::steady_clock::now();
  const auto r = core::Campaign(cfg).run(targets);
  const double campaign_wall = seconds_since(campaign_start);
  const common::Json::Object campaign{
      {"trajectories", r.total_trajectories()},
      {"fold", stream_json(r.infer.fold)},
      {"design", stream_json(r.infer.design)},
      {"cache_hits", r.infer.fold.cache_hits},
      {"batch_size", static_cast<std::size_t>(r.infer.batch_size)},
      {"tuner_decisions", r.infer.tuner_decisions},
      {"wall_s", campaign_wall},
  };
  std::cout << "campaign: fold speedup " << r.infer.fold.speedup()
            << "x over " << r.infer.fold.batches << " batches, design speedup "
            << r.infer.design.speedup() << "x\n";

  // Only the modeled batch-8 speedup is gated: it is pure arithmetic,
  // identical across machines and smoke/full modes. The campaign speedup
  // depends on the target mix, which differs between modes.
  const common::Json::Object ratios{
      {"speedup_b8", speedup_b8},
  };

  const common::Json doc{common::Json::Object{
      {"schema", "impress.bench_infer.v1"},
      {"mode", opt.smoke ? "smoke" : "full"},
      {"hardware_threads",
       static_cast<std::size_t>(std::thread::hardware_concurrency())},
      {"batching_sweep", batching_sweep},
      {"cadence_sweep", cadence_sweep},
      {"dispatch_path",
       common::Json::Object{{"requests", dispatch_n},
                            {"wall_s", dispatch_wall},
                            {"req_per_s", dispatch_rps}}},
      {"tuner", tuner_study},
      {"campaign", campaign},
      {"ratios", ratios},
  }};
  {
    std::ofstream out(opt.out);
    if (!out) {
      std::cerr << "bench_infer: cannot write " << opt.out << "\n";
      return 1;
    }
    out << doc.dump(2) << "\n";
  }
  std::cout << "wrote " << opt.out << "\n";

  if (opt.check.empty()) return 0;

  // --- Regression gate against the checked-in baseline.
  std::ifstream in(opt.check);
  if (!in) {
    std::cerr << "bench_infer: cannot read baseline " << opt.check << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto baseline = common::Json::parse(buf.str());
  int failures = 0;
  // Acceptance gate: a full batch of 8 must model at least a 3x gain
  // over one-request-per-dispatch.
  constexpr double kSpeedupGate = 3.0;
  if (speedup_b8 < kSpeedupGate) {
    std::cerr << "FAIL: batch-8 speedup " << speedup_b8 << "x under the "
              << kSpeedupGate << "x acceptance gate\n";
    ++failures;
  }
  constexpr double kRegressionFloor = 0.8;  // keep >= 80% of baseline ratio
  for (const auto& [name, value] : ratios) {
    if (!baseline.at("ratios").contains(name)) continue;  // schema drift
    const double base = baseline.at("ratios").at(name).as_number();
    const double current = value.as_number();
    if (current < kRegressionFloor * base) {
      std::cerr << "FAIL: ratio '" << name << "' regressed: " << current
                << "x < " << kRegressionFloor << " * baseline " << base
                << "x\n";
      ++failures;
    }
  }
  // Absolute sanity floor: the accounting is a mutex + a dozen counter
  // updates; any machine clears 1e5 req/s unless the hot path grew
  // something pathological.
  constexpr double kAbsoluteFloor = 1e5;
  if (dispatch_rps < kAbsoluteFloor) {
    std::cerr << "FAIL: dispatch path " << dispatch_rps << " req/s under the "
              << kAbsoluteFloor << " sanity floor\n";
    ++failures;
  }
  if (failures == 0) std::cout << "bench_infer check: OK\n";
  return failures == 0 ? 0 : 1;
}
