// Table I reproduction: experimental setup and results for CONT-V and
// IM-RP on the four named PDZ domains vs the alpha-synuclein 10-mer.
//
// Paper reference values:
//   CONT-V: 1 PL, N/A sub-PL, 4 structures/PL, 16 trajectories,
//           CPU 18.3%, GPU 1%, 27.7 h, net deltas pTM 0.28 / pLDDT 5.8 /
//           pAE -6.7
//   IM-RP:  2 PL, 7 sub-PL, 4 structures/PL, 23 trajectories,
//           CPU 88%, GPU 61%, 38.3 h, net deltas pTM 0.32 / pLDDT 7.7 /
//           pAE -6.61

#include <cstdio>
#include <string>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);

  const auto targets = protein::four_pdz_domains();

  core::Campaign cont_v(core::cont_v_campaign(seed));
  const auto cont_result = cont_v.run(targets);

  core::Campaign im_rp(core::im_rp_campaign(seed));
  const auto im_result = im_rp.run(targets);

  std::printf("# Table I: CONT-V vs IM-RP (4 PDZ domains, alpha-synuclein "
              "10-mer, %d cycles, seed %llu)\n\n",
              core::calibration::kCycles,
              static_cast<unsigned long long>(seed));
  std::printf("%s\n",
              core::table1(cont_result, im_result, core::calibration::kCycles)
                  .render()
                  .c_str());

  std::printf("supporting counts:\n");
  for (const auto* r : {&cont_result, &im_result}) {
    std::printf(
        "  %-7s generator_tasks=%zu fold_tasks=%zu fold_retries=%zu "
        "failed=%zu accepted_iterations=%zu\n",
        r->name.c_str(), r->generator_tasks, r->fold_tasks, r->fold_retries,
        r->failed_tasks, r->total_trajectories());
  }
  std::printf(
      "\npaper reference: CONT-V 16 traj, 18.3%% CPU, 1%% GPU, 27.7 h | "
      "IM-RP 23 traj, 7 sub-PL, 88%% CPU, 61%% GPU, 38.3 h\n");
  return 0;
}
