// Ablations of the design choices DESIGN.md calls out:
//
//   A1 retry budget        - Stage-6 alternative-selection budget 0/1/3/10
//   A2 sub-pipelines       - coordinator decision-making on/off
//   A3 selection strategy  - top log-likelihood vs random pick
//   A4 scheduler policy    - FIFO vs backfill under the concurrent load
//   A5 MSA mode            - full MSA vs single-sequence (EvoPro-style)
//   A6 feature reuse       - retries reuse MSA/features vs recompute
//
// Each row runs the 4-PDZ campaign and reports the science (final median
// pTM, net delta) and the cost (fold tasks, makespan, CPU%).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/crossover_generator.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

namespace {

struct Row {
  std::string group;
  std::string variant;
  core::CampaignResult result;
};

void report(common::Table& table, const Row& row, int cycles) {
  table.add_row({
      row.group,
      row.variant,
      common::format_fixed(
          core::median_at_cycle(row.result, core::Metric::kPtm, cycles, cycles), 3),
      common::format_fixed(core::net_delta(row.result, core::Metric::kPtm, cycles), 3),
      common::format_fixed(
          core::median_at_cycle(row.result, core::Metric::kIpae, cycles, cycles), 2),
      std::to_string(row.result.total_trajectories()),
      std::to_string(row.result.fold_tasks),
      std::to_string(row.result.fold_retries),
      common::format_fixed(row.result.makespan_h, 1),
      common::format_fixed(row.result.utilization.cpu_active * 100.0, 1) + "%",
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);
  const int cycles = core::calibration::kCycles;
  const auto targets = protein::four_pdz_domains();

  common::Table table({"ablation", "variant", "final pTM", "pTM net D",
                       "final pAE", "traj", "fold tasks", "retries",
                       "time (h)", "CPU %"});
  for (std::size_t c = 2; c < table.columns(); ++c)
    table.set_align(c, common::Table::Align::kRight);

  auto run = [&](const std::string& group, const std::string& variant,
                 const std::function<void(core::CampaignConfig&)>& tweak) {
    auto cfg = core::im_rp_campaign(seed);
    cfg.name = group + "/" + variant;
    tweak(cfg);
    core::Campaign campaign(cfg);
    report(table, Row{group, variant, campaign.run(targets)}, cycles);
  };

  // A1: retry budget.
  for (int budget : {0, 1, 3, 10})
    run("A1-retry-budget", std::to_string(budget),
        [&](core::CampaignConfig& c) { c.protocol.max_retries = budget; });

  // A2: sub-pipeline spawning.
  for (bool on : {true, false})
    run("A2-subpipelines", on ? "on" : "off",
        [&](core::CampaignConfig& c) { c.protocol.spawn_subpipelines = on; });

  // A3: selection strategy (both arms adaptive otherwise).
  for (bool random : {false, true})
    run("A3-selection", random ? "random" : "top-LL",
        [&](core::CampaignConfig& c) { c.protocol.random_selection = random; });

  // A4: scheduler policy on a FIXED heterogeneous workload (no adaptive
  // feedback, so the two rows run byte-identical task sets): 24 wide
  // CPU-bound feature-style tasks interleaved with 24 narrow GPU tasks.
  for (auto policy :
       {rp::SchedulerPolicy::kBackfill, rp::SchedulerPolicy::kFifo}) {
    rp::SessionConfig sc;
    sc.seed = seed;
    rp::Session session(sc);
    auto pd = core::calibration::amarel_pilot(policy);
    auto pilot = session.submit_pilot(pd);
    std::vector<rp::TaskDescription> tds;
    for (int i = 0; i < 24; ++i) {
      tds.push_back(rp::make_simple_task("wide" + std::to_string(i), 7, 0,
                                         3600.0));
      tds.push_back(rp::make_simple_task("narrow" + std::to_string(i), 2, 1,
                                         900.0));
    }
    session.task_manager().submit(std::move(tds));
    session.run();
    const double makespan_s = pilot->recorder().latest_end();
    const auto util = pilot->recorder().summarize(0.0, makespan_s);
    table.add_row({"A4-scheduler", std::string(rp::to_string(policy)),
                   "-", "-", "-", "-", "48", "-",
                   common::format_fixed(makespan_s / 3600.0, 1),
                   common::format_fixed(util.cpu_active * 100.0, 1) + "%"});
  }

  // A5: MSA mode (EvoPro-style single-sequence prediction).
  for (double msa : {1.0, 0.55})
    run("A5-msa-mode", msa == 1.0 ? "full-MSA" : "single-seq",
        [&](core::CampaignConfig& c) { c.predictor.msa_quality = msa; });

  // A6: feature reuse on Stage-6 retries.
  for (bool reuse : {false, true})
    run("A6-feature-reuse", reuse ? "reuse" : "recompute",
        [&](core::CampaignConfig& c) {
          c.protocol.reuse_features_on_retry = reuse;
        });

  // A7: backbone refinement stage (paper SI: "iterative runs of
  // ProteinMPNN and backbone refinement techniques").
  for (bool refine : {false, true})
    run("A7-refinement", refine ? "on" : "off",
        [&](core::CampaignConfig& c) {
          c.protocol.backbone_refinement = refine;
        });

  // A9: population crossover (the GA taken literally: recombine strong
  // accepted designs instead of only mutating the current one).
  for (bool crossover : {false, true})
    run("A9-crossover", crossover ? "on" : "off",
        [&](core::CampaignConfig& c) {
          if (crossover)
            c.generator = std::make_shared<core::CrossoverGenerator>(
                std::make_shared<core::MpnnGenerator>(c.sampler));
        });

  // A8: predictor noise sensitivity — how robust is the Stage-6 gate to
  // AlphaFold's measurement noise?
  for (double noise : {1.0, 2.0, 3.5, 5.0})
    run("A8-metric-noise", common::format_fixed(noise, 1),
        [&](core::CampaignConfig& c) { c.predictor.metric_noise = noise; });

  std::printf("# Ablation sweeps (4 PDZ domains, seed %llu)\n\n%s\n",
              static_cast<unsigned long long>(seed), table.render().c_str());
  std::printf(
      "reading guide: A1 higher budgets rescue declining cycles (more fold "
      "tasks, better final quality); A2 sub-pipelines add trajectories and "
      "lift below-median targets; A3 random selection wastes the ranking "
      "signal; A4 FIFO serializes behind wide feature stages; A5 single-seq "
      "mode blurs the classifier the protocol relies on; A6 reuse trades "
      "CPU hours for risk of stale features (modeled as time only); A7 "
      "refinement cuts false Stage-6 declines (fewer retries) at one extra "
      "CPU task per prediction; A8 the retry machinery is exactly the "
      "system's response to predictor noise — retries scale with it while "
      "final quality stays defended; A9 naive uniform crossover is a "
      "*negative result*: recombining two good designs breaks the pocket's "
      "epistatic couplings, the gate rejects most recombinants (retries "
      "explode), and quality drops — evidence for the paper's mutate-and-"
      "select design over recombination.\n");
  return 0;
}
