// bench_report: machine-readable hot-kernel baseline.
//
// Self-timed (no google-benchmark dependency) so the output is a single
// JSON document — BENCH_kernels.json — that CI can archive and diff. For
// each kernel it reports ns/op; for each optimized kernel it also reports
// the speedup over the naive implementation it replaced, which is what
// the regression check gates on (ratios are stable across machines in a
// way raw nanoseconds are not).
//
// Modes:
//   bench_report [--out FILE]          full run, writes FILE (default
//                                      BENCH_kernels.json in the cwd)
//   bench_report --smoke [--out FILE]  short run for CI smoke jobs
//   bench_report --check BASELINE      after measuring, compare against a
//                                      checked-in baseline: fail (exit 1)
//                                      if any speedup drops below 0.8x its
//                                      baseline value or the mutation-
//                                      scoring speedup falls under the 5x
//                                      acceptance floor.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "fold/fold.hpp"
#include "fold/fold_cache.hpp"
#include "hpc/profiler.hpp"
#include "protein/datasets.hpp"
#include "protein/kernel_tables.hpp"
#include "protein/landscape.hpp"

using namespace impress;

namespace {

volatile double g_sink = 0.0;  // defeats dead-code elimination

/// ns/op of `op(i)`, doubling the repetition count until the measured
/// window reaches `min_ms` (so short kernels are timed over many calls).
double time_kernel(const std::function<void(std::size_t)>& op, double min_ms) {
  using clock = std::chrono::steady_clock;
  std::size_t reps = 64;
  for (;;) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < reps; ++i) op(i);
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - start).count();
    if (ms >= min_ms || reps >= (std::size_t{1} << 26))
      return ms * 1e6 / static_cast<double>(reps);
    reps *= 4;
  }
}

/// ns/op with `threads` workers each performing `per_thread` calls of
/// `op(thread, i)` concurrently (wall time over total ops).
double time_threaded(int threads, std::size_t per_thread,
                     const std::function<void(int, std::size_t)>& op) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_thread; ++i) op(t, i);
    });
  for (auto& w : workers) w.join();
  const double ns =
      std::chrono::duration<double, std::nano>(clock::now() - start).count();
  return ns / (static_cast<double>(threads) * static_cast<double>(per_thread));
}

/// The global-mutex recorder the per-thread profiler replaced; kept here
/// as the contention baseline.
class NaiveRecorder {
 public:
  void record(double time, std::string_view entity, std::string_view event) {
    std::lock_guard lock(mutex_);
    events_.push_back(hpc::ProfileEvent{time, std::string(entity),
                                        std::string(event), {}});
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return events_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<hpc::ProfileEvent> events_;
};

struct Options {
  std::string out = "BENCH_kernels.json";
  std::string check;  // baseline path; empty = no check
  bool smoke = false;
};

int usage() {
  std::cerr << "usage: bench_report [--smoke] [--out FILE] [--check BASELINE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      opt.check = argv[++i];
    } else {
      return usage();
    }
  }
  const double min_ms = opt.smoke ? 2.0 : 80.0;

  const auto& target = protein::make_target(
      "BENCH", 96, protein::alpha_synuclein().tail(10));
  const auto& land = target.landscape;
  const auto seq = target.start_receptor;

  // One fixed proposal stream shared by both mutation-scoring paths.
  std::vector<std::pair<std::size_t, protein::AminoAcid>> proposals;
  {
    common::Rng rng(11);
    for (int i = 0; i < 1024; ++i)
      proposals.emplace_back(
          rng.below(static_cast<std::uint32_t>(seq.size())),
          static_cast<protein::AminoAcid>(rng.below(
              static_cast<std::uint32_t>(protein::kNumAminoAcids))));
  }

  common::Json::Object kernels;
  auto add_kernel = [&kernels](const std::string& name, double ns) {
    kernels[name] = common::Json::Object{{"ns_per_op", ns}};
    std::cout << name << ": " << ns << " ns/op\n";
  };

  // --- Mutation scoring: naive full recompute vs incremental scorer.
  const double naive_ns = time_kernel(
      [&](std::size_t i) {
        const auto& [pos, aa] = proposals[i & 1023];
        g_sink = g_sink + land.fitness(seq.with_mutation(pos, aa));
      },
      min_ms);
  const protein::FitnessLandscape::MutationScorer scorer(land, seq);
  const double incr_ns = time_kernel(
      [&](std::size_t i) {
        const auto& [pos, aa] = proposals[i & 1023];
        g_sink = g_sink + scorer.score_mutation(pos, aa);
      },
      min_ms);
  add_kernel("mutation_score_naive", naive_ns);
  add_kernel("mutation_score_incremental", incr_ns);

  // --- Residue-similarity kernel: direct formula vs 20x20 table.
  const double sim_direct_ns = time_kernel(
      [&](std::size_t i) {
        const auto a =
            static_cast<protein::AminoAcid>(i % protein::kNumAminoAcids);
        const auto b =
            static_cast<protein::AminoAcid>((i / 7) % protein::kNumAminoAcids);
        g_sink = g_sink + protein::detail::residue_similarity_direct(a, b);
      },
      min_ms);
  const double sim_table_ns = time_kernel(
      [&](std::size_t i) {
        const auto a =
            static_cast<protein::AminoAcid>(i % protein::kNumAminoAcids);
        const auto b =
            static_cast<protein::AminoAcid>((i / 7) % protein::kNumAminoAcids);
        g_sink = g_sink + protein::residue_similarity(a, b);
      },
      min_ms);
  add_kernel("residue_similarity_direct", sim_direct_ns);
  add_kernel("residue_similarity_table", sim_table_ns);

  // --- Preference lookup and seed_sequence (consumers of the above).
  add_kernel("preference",
             time_kernel(
                 [&](std::size_t i) {
                   const auto& [pos, aa] = proposals[i & 1023];
                   g_sink = g_sink + land.preference(pos, aa);
                 },
                 min_ms));
  {
    common::Rng rng(13);
    add_kernel("seed_sequence",
               time_kernel(
                   [&](std::size_t) {
                     g_sink =
                         g_sink +
                         static_cast<double>(land.seed_sequence(0.45, rng).size());
                   },
                   min_ms));
  }

  // --- Fold memo cache: steady-state hit cost, then a duplicate-heavy
  // workload (every distinct complex folded `repeats` times) for the hit
  // rate the campaign-level duplicates achieve.
  const fold::AlphaFold folder;
  const auto cx = target.start_complex();
  {
    fold::FoldCache cache;
    const common::Rng rng(7);
    add_kernel("fold_cache_hit",
               time_kernel(
                   [&](std::size_t) {
                     common::Rng task_rng = rng;
                     g_sink = g_sink +
                              cache.predict(folder, cx, land, task_rng)
                                  .best()
                                  .metrics.ptm;
                   },
                   min_ms));
  }
  common::Json::Object fold_cache_json;
  {
    fold::FoldCache cache;
    common::Rng root(7);
    const std::size_t distinct = opt.smoke ? 8 : 32;
    const std::size_t repeats = 4;
    common::Rng seq_rng(17);
    std::vector<protein::Complex> complexes;
    for (std::size_t d = 0; d < distinct; ++d)
      complexes.push_back(cx.with_receptor(land.seed_sequence(0.45, seq_rng)));
    for (std::size_t r = 0; r < repeats; ++r)
      for (const auto& c : complexes) {
        // Content-derived rng, exactly as the coordinator does it.
        common::Rng task_rng = root.fork(
            fold::FoldCache::content_key(c, land, folder.config()));
        g_sink = g_sink +
                 cache.predict(folder, c, land, task_rng).best().metrics.ptm;
      }
    const auto stats = cache.stats();
    fold_cache_json["hits"] = stats.hits;
    fold_cache_json["misses"] = stats.misses;
    fold_cache_json["evictions"] = stats.evictions;
    fold_cache_json["entries"] = stats.entries;
    fold_cache_json["duplicate_discards"] = stats.duplicate_discards;
    fold_cache_json["hit_rate"] = stats.hit_rate();
    // Conservation law: every miss must end up resident, evicted, or
    // discarded as a raced duplicate — otherwise the hit-rate math above
    // is built on leaky counters.
    if (stats.misses !=
        stats.entries + stats.evictions + stats.duplicate_discards) {
      std::cerr << "fold_cache stats violate conservation: misses="
                << stats.misses << " entries=" << stats.entries
                << " evictions=" << stats.evictions
                << " duplicate_discards=" << stats.duplicate_discards << "\n";
      return 1;
    }
    std::cout << "fold_cache workload hit_rate: " << stats.hit_rate() << "\n";
  }

  // --- Profiler record: per-thread buffers vs the global-mutex recorder.
  const int threads = 4;
  const std::size_t per_thread = opt.smoke ? 4096 : 65536;
  double prof_naive_ns = 0.0;
  double prof_sharded_ns = 0.0;
  {
    NaiveRecorder naive;
    prof_naive_ns = time_threaded(threads, per_thread, [&](int t, std::size_t i) {
      naive.record(static_cast<double>(i), "task.000001",
                   t % 2 == 0 ? "exec_start" : "exec_stop");
    });
    if (naive.size() != static_cast<std::size_t>(threads) * per_thread)
      std::cerr << "warning: naive recorder lost events\n";
  }
  {
    hpc::Profiler profiler;
    prof_sharded_ns =
        time_threaded(threads, per_thread, [&](int t, std::size_t i) {
          profiler.record(static_cast<double>(i), "task.000001",
                          t % 2 == 0 ? "exec_start" : "exec_stop");
        });
    if (profiler.size() != static_cast<std::size_t>(threads) * per_thread)
      std::cerr << "warning: profiler lost events\n";
  }
  add_kernel("profiler_record_naive", prof_naive_ns);
  add_kernel("profiler_record", prof_sharded_ns);

  common::Json::Object speedups{
      {"mutation_score", naive_ns / incr_ns},
      {"residue_similarity", sim_direct_ns / sim_table_ns},
  };
  // The profiler ratio measures mutex-contention relief. A single-core
  // runner has no contention to relieve, so the sharded recorder's extra
  // bookkeeping reads as a bogus sub-1x "slowdown" there — report the
  // ratio only where it means something. (Both raw timings are always in
  // `kernels` for cross-machine comparison.)
  if (std::thread::hardware_concurrency() > 1)
    speedups["profiler_record"] = prof_naive_ns / prof_sharded_ns;
  for (const auto& [name, value] : speedups)
    std::cout << "speedup " << name << ": " << value.as_number() << "x\n";

  const common::Json doc{common::Json::Object{
      {"schema", "impress.bench_kernels.v1"},
      {"mode", opt.smoke ? "smoke" : "full"},
      {"hardware_threads",
       static_cast<std::size_t>(std::thread::hardware_concurrency())},
      {"kernels", std::move(kernels)},
      {"speedups", speedups},
      {"fold_cache", std::move(fold_cache_json)},
  }};
  {
    std::ofstream out(opt.out);
    if (!out) {
      std::cerr << "bench_report: cannot write " << opt.out << "\n";
      return 1;
    }
    out << doc.dump(2) << "\n";
  }  // closed before --check may re-read the same path
  std::cout << "wrote " << opt.out << "\n";

  if (opt.check.empty()) return 0;

  // --- Regression gate against the checked-in baseline.
  std::ifstream in(opt.check);
  if (!in) {
    std::cerr << "bench_report: cannot read baseline " << opt.check << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto baseline = common::Json::parse(buf.str());
  int failures = 0;
  constexpr double kRegressionFloor = 0.8;  // keep >= 80% of baseline speedup
  // Only the compute-bound ratios are gated: the profiler_record ratio
  // measures lock contention, which single-core CI runners cannot
  // reproduce (it is still reported for machines that can).
  const std::vector<std::string> gated{"mutation_score", "residue_similarity"};
  for (const auto& name : gated) {
    if (!speedups.contains(name) ||
        !baseline.at("speedups").contains(name))
      continue;
    const double base = baseline.at("speedups").at(name).as_number();
    const double current = speedups.at(name).as_number();
    if (current < kRegressionFloor * base) {
      std::cerr << "FAIL: speedup '" << name << "' regressed: " << current
                << "x < " << kRegressionFloor << " * baseline " << base
                << "x\n";
      ++failures;
    }
  }
  constexpr double kMutationScoreFloor = 5.0;  // absolute acceptance criterion
  if (speedups.at("mutation_score").as_number() < kMutationScoreFloor) {
    std::cerr << "FAIL: mutation_score speedup "
              << speedups.at("mutation_score").as_number() << "x < "
              << kMutationScoreFloor << "x floor\n";
    ++failures;
  }
  if (failures != 0) return 1;
  std::cout << "check passed against " << opt.check << "\n";
  return 0;
}
