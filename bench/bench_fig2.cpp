// Fig 2 reproduction: median AlphaFold pLDDT (higher better), pTM (higher
// better) and inter-chain pAE (lower better) per design iteration, for
// CONT-V vs IM-RP across the four PDZ-peptide structures. Error bars are
// half a standard deviation, as in the paper.
//
// Expected shape: IM-RP above CONT-V on pLDDT/pTM and below on pAE at
// every iteration, with smaller spread.

#include <cstdio>
#include <string>

#include "core/campaign.hpp"
#include "common/stats.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);
  const int cycles = core::calibration::kCycles;

  const auto targets = protein::four_pdz_domains();
  core::Campaign cont_v(core::cont_v_campaign(seed));
  const auto cont = cont_v.run(targets);
  core::Campaign im_rp(core::im_rp_campaign(seed));
  const auto im = im_rp.run(targets);

  std::printf("# Fig 2: CONT-V vs IM-RP metric medians per iteration "
              "(4 PDZ domains, seed %llu)\n\n",
              static_cast<unsigned long long>(seed));
  const std::vector<const core::CampaignResult*> arms{&cont, &im};
  for (const auto metric :
       {core::Metric::kPlddt, core::Metric::kPtm, core::Metric::kIpae}) {
    std::printf("%s\n",
                core::render_metric_figure("Fig 2", arms, metric, cycles).c_str());
  }

  // Numeric series for EXPERIMENTS.md.
  std::printf("## numeric series (median +/- stddev/2 per iteration)\n");
  for (const auto metric :
       {core::Metric::kPlddt, core::Metric::kPtm, core::Metric::kIpae}) {
    for (const auto* arm : arms) {
      std::printf("%-16s %-7s", std::string(core::metric_name(metric)).c_str(),
                  arm->name.c_str());
      const auto matrix = core::metric_by_cycle(*arm, metric, cycles);
      for (int c = 0; c < cycles; ++c) {
        const auto& vals = matrix[static_cast<std::size_t>(c)];
        std::printf("  %7.2f+/-%.2f", common::median(vals),
                    common::stddev(vals) / 2.0);
      }
      std::printf("\n");
    }
  }
  return 0;
}
