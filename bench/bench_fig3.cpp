// Fig 3 reproduction: the expanded IM-RP workflow over 70 PDZ-peptide
// complexes (alpha-synuclein 4-mer target, EPEA), four design cycles,
// with adaptivity NOT enforced in the final cycle — the paper's setup.
//
// Expected shape: all three metrics improve over the first three
// iterations, then deteriorate at iteration 4 where the selection
// criteria are absent. The paper reports 354 trajectories across 96
// sub-pipelines at this scale.

#include <cstdio>
#include <string>

#include "core/campaign.hpp"
#include "common/stats.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  std::size_t n_targets = 70;
  if (argc > 1) seed = std::stoull(argv[1]);
  if (argc > 2) n_targets = std::stoull(argv[2]);
  const int cycles = core::calibration::kCycles;

  const auto targets = protein::pdz_benchmark(n_targets);

  auto cfg = core::im_rp_campaign(seed);
  cfg.name = "IM-RP-70";
  cfg.protocol.adaptivity_in_final_cycle = false;  // the Fig-3 setup
  // At 70 targets the coordinator budgets re-processing more tightly than
  // in the 4-target study (the paper reports 96 sub-pipelines for 70
  // complexes vs 7 for 4 structures — about one per target).
  cfg.protocol.max_subpipelines_per_target = 1;
  core::Campaign campaign(cfg);
  const auto result = campaign.run(targets);

  std::printf("# Fig 3: expanded IM-RP workflow (%zu PDZ-peptide complexes, "
              "EPEA target, adaptivity off in final cycle, seed %llu)\n\n",
              n_targets, static_cast<unsigned long long>(seed));
  const std::vector<const core::CampaignResult*> arms{&result};
  for (const auto metric :
       {core::Metric::kPlddt, core::Metric::kPtm, core::Metric::kIpae})
    std::printf("%s\n",
                core::render_metric_figure("Fig 3", arms, metric, cycles).c_str());

  std::printf("## numeric series (median +/- stddev/2 per iteration)\n");
  for (const auto metric :
       {core::Metric::kPlddt, core::Metric::kPtm, core::Metric::kIpae}) {
    std::printf("%-16s", std::string(core::metric_name(metric)).c_str());
    const auto matrix = core::metric_by_cycle(result, metric, cycles);
    for (int c = 0; c < cycles; ++c) {
      const auto& vals = matrix[static_cast<std::size_t>(c)];
      std::printf("  %7.2f+/-%.2f", common::median(vals),
                  common::stddev(vals) / 2.0);
    }
    std::printf("\n");
  }

  std::printf("\nscale: %zu trajectories across %zu sub-pipelines "
              "(paper: 354 across 96); %zu fold tasks, %zu retries, "
              "makespan %.1f h\n",
              result.total_trajectories(), result.subpipelines,
              result.fold_tasks, result.fold_retries, result.makespan_h);

  // The headline property of Fig 3: iteration 4 regresses without
  // adaptivity. Report it explicitly.
  const double p3 = core::median_at_cycle(result, core::Metric::kPlddt, 3, cycles);
  const double p4 = core::median_at_cycle(result, core::Metric::kPlddt, 4, cycles);
  std::printf("final-cycle check: median pLDDT iter3=%.2f iter4=%.2f (%s)\n",
              p3, p4,
              p4 < p3 ? "deteriorated without adaptivity, as in the paper"
                      : "no deterioration");
  return 0;
}
