// Related-work comparison (paper §IV, quantified): the same design
// problem solved by three protocol families.
//
//   IMPRESS   — structure-conditioned generation (ProteinMPNN surrogate)
//               + full-MSA AlphaFold; the adaptive IM-RP pipeline.
//   EvoPro    — iterative runs of sequence generation (ProteinMPNN or
//               random mutagenesis) + *single-sequence-mode* AlphaFold
//               for faster inference [9]; we model the accelerated mode
//               as msa_quality=0.55 with shortened feature stages.
//   MProt-DPO — purely sequence-based generation with preference
//               optimization [14]: the DpoGenerator fine-tunes on
//               evaluation feedback but never sees the structure.
//
// Expected shape (the paper's argument): EvoPro's single-sequence mode
// blurs AlphaFold's classifier and limits achievable quality; MProt-DPO
// learns but trails structure-conditioned design. IMPRESS wins on final
// design quality; EvoPro wins on wall-clock per evaluation.

#include <cstdio>
#include <map>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/dpo_generator.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);
  const int cycles = core::calibration::kCycles;
  const auto targets = protein::four_pdz_domains();

  common::Table table({"protocol", "generator", "MSA mode", "final pLDDT",
                       "final pTM", "final pAE", "pTM net D", "true fitness",
                       "fold tasks", "time (h)"});
  for (std::size_t c = 3; c < table.columns(); ++c)
    table.set_align(c, common::Table::Align::kRight);

  // Hidden-landscape ground truth: median over targets of the last
  // accepted design's true fitness. The surrogate metrics above are what
  // the protocols *see*; this is what they actually *achieved* — the
  // honest comparison when one arm's predictor is systematically
  // overconfident (single-sequence mode).
  auto final_true_fitness = [](const core::CampaignResult& r) {
    std::map<std::string, double> best;
    for (const auto& t : r.trajectories)
      if (!t.history.empty()) {
        const double f = t.history.back().true_fitness;
        auto [it, inserted] = best.emplace(t.target_name, f);
        if (!inserted && f > it->second) it->second = f;
      }
    std::vector<double> values;
    for (const auto& [name, f] : best) values.push_back(f);
    return common::median(values);
  };

  auto report = [&](const std::string& protocol, const std::string& generator,
                    const std::string& msa, const core::CampaignResult& r,
                    int row_cycles = core::calibration::kCycles) {
    const double truth = final_true_fitness(r);
    table.add_row({
        protocol,
        generator,
        msa,
        common::format_fixed(
            core::median_at_cycle(r, core::Metric::kPlddt, row_cycles, row_cycles), 1),
        common::format_fixed(
            core::median_at_cycle(r, core::Metric::kPtm, row_cycles, row_cycles), 3),
        common::format_fixed(
            core::median_at_cycle(r, core::Metric::kIpae, row_cycles, row_cycles), 2),
        common::format_fixed(core::net_delta(r, core::Metric::kPtm, row_cycles), 3),
        common::format_fixed(truth, 3),
        std::to_string(r.fold_tasks),
        common::format_fixed(r.makespan_h, 1),
    });
  };

  // IMPRESS (the paper's IM-RP arm).
  {
    const auto r = core::Campaign(core::im_rp_campaign(seed)).run(targets);
    report("IMPRESS (IM-RP)", "proteinmpnn", "full MSA", r);
  }

  // EvoPro-style: single-sequence AlphaFold (no MSA construction — the
  // feature stage drops to a brief featurization) + ProteinMPNN.
  {
    auto cfg = core::im_rp_campaign(seed);
    cfg.name = "EvoPro-style";
    cfg.predictor.msa_quality = 0.55;
    cfg.coordinator.fold_durations.features_s = 300.0;  // no MSA search
    cfg.coordinator.fold_durations.feature_cores = 2;
    const auto r = core::Campaign(cfg).run(targets);
    report("EvoPro-style", "proteinmpnn", "single-seq", r);
  }

  // MProt-DPO-style: sequence-only learning generator, full AlphaFold as
  // the downstream evaluator providing the preference signal.
  {
    auto cfg = core::im_rp_campaign(seed);
    cfg.name = "MProt-DPO-style";
    cfg.generator = std::make_shared<core::DpoGenerator>();
    const auto r = core::Campaign(cfg).run(targets);
    report("MProt-DPO-style", "mprot-dpo (seq-only)", "full MSA", r);
  }

  // MProt-DPO again with a 3x longer horizon: preference optimization
  // needs volume — its published results come from exascale sampling
  // campaigns, not four cycles. The gap to the 4-cycle row is the
  // learning effect.
  {
    auto cfg = core::im_rp_campaign(seed);
    cfg.name = "MProt-DPO-12c";
    cfg.generator = std::make_shared<core::DpoGenerator>();
    cfg.protocol.cycles = 3 * cycles;
    const auto r = core::Campaign(cfg).run(targets);
    report("MProt-DPO-style (12 cycles)", "mprot-dpo (seq-only)", "full MSA",
           r, 3 * cycles);
  }

  // Floor: blind random mutagenesis, no learning, no structure.
  {
    auto cfg = core::im_rp_campaign(seed);
    cfg.name = "random";
    cfg.generator = std::make_shared<core::RandomMutagenesisGenerator>(10, 3);
    const auto r = core::Campaign(cfg).run(targets);
    report("random-mutagenesis", "random", "full MSA", r);
  }

  std::printf("# Related-work protocol comparison (4 PDZ domains, %d cycles, "
              "seed %llu)\n\n%s\n",
              cycles, static_cast<unsigned long long>(seed),
              table.render().c_str());
  std::printf(
      "reading (paper SIV quantified): IMPRESS achieves the best hidden "
      "ground truth; EvoPro-style is ~2x faster per campaign and reports "
      "*higher* pTM while actually achieving less — the overconfident "
      "single-sequence classifier at work; MProt-DPO-style improves its "
      "observed metrics with horizon (pAE column) but, never conditioned "
      "on structure, barely moves the hidden binding fitness above the "
      "random-mutagenesis floor at this scale.\n");
  return 0;
}
