
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/impress_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/coordinator.cpp" "src/core/CMakeFiles/impress_core.dir/coordinator.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/coordinator.cpp.o.d"
  "/root/repo/src/core/crossover_generator.cpp" "src/core/CMakeFiles/impress_core.dir/crossover_generator.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/crossover_generator.cpp.o.d"
  "/root/repo/src/core/dpo_generator.cpp" "src/core/CMakeFiles/impress_core.dir/dpo_generator.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/dpo_generator.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/impress_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/export.cpp.o.d"
  "/root/repo/src/core/generator.cpp" "src/core/CMakeFiles/impress_core.dir/generator.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/generator.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/impress_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/impress_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/report.cpp.o.d"
  "/root/repo/src/core/session_dump.cpp" "src/core/CMakeFiles/impress_core.dir/session_dump.cpp.o" "gcc" "src/core/CMakeFiles/impress_core.dir/session_dump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  "/root/repo/build/src/protein/CMakeFiles/impress_protein.dir/DependInfo.cmake"
  "/root/repo/build/src/mpnn/CMakeFiles/impress_mpnn.dir/DependInfo.cmake"
  "/root/repo/build/src/fold/CMakeFiles/impress_fold.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/impress_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/impress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/impress_hpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
