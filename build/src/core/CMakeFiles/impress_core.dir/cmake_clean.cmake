file(REMOVE_RECURSE
  "CMakeFiles/impress_core.dir/campaign.cpp.o"
  "CMakeFiles/impress_core.dir/campaign.cpp.o.d"
  "CMakeFiles/impress_core.dir/coordinator.cpp.o"
  "CMakeFiles/impress_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/impress_core.dir/crossover_generator.cpp.o"
  "CMakeFiles/impress_core.dir/crossover_generator.cpp.o.d"
  "CMakeFiles/impress_core.dir/dpo_generator.cpp.o"
  "CMakeFiles/impress_core.dir/dpo_generator.cpp.o.d"
  "CMakeFiles/impress_core.dir/export.cpp.o"
  "CMakeFiles/impress_core.dir/export.cpp.o.d"
  "CMakeFiles/impress_core.dir/generator.cpp.o"
  "CMakeFiles/impress_core.dir/generator.cpp.o.d"
  "CMakeFiles/impress_core.dir/pipeline.cpp.o"
  "CMakeFiles/impress_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/impress_core.dir/report.cpp.o"
  "CMakeFiles/impress_core.dir/report.cpp.o.d"
  "CMakeFiles/impress_core.dir/session_dump.cpp.o"
  "CMakeFiles/impress_core.dir/session_dump.cpp.o.d"
  "libimpress_core.a"
  "libimpress_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
