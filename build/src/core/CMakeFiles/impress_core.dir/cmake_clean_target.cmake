file(REMOVE_RECURSE
  "libimpress_core.a"
)
