# Empty compiler generated dependencies file for impress_core.
# This may be replaced when dependencies are built.
