# Empty dependencies file for impress_fold.
# This may be replaced when dependencies are built.
