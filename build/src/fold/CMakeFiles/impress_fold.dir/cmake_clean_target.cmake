file(REMOVE_RECURSE
  "libimpress_fold.a"
)
