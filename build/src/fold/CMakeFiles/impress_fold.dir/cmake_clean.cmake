file(REMOVE_RECURSE
  "CMakeFiles/impress_fold.dir/fold.cpp.o"
  "CMakeFiles/impress_fold.dir/fold.cpp.o.d"
  "CMakeFiles/impress_fold.dir/fold_task.cpp.o"
  "CMakeFiles/impress_fold.dir/fold_task.cpp.o.d"
  "libimpress_fold.a"
  "libimpress_fold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_fold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
