file(REMOVE_RECURSE
  "CMakeFiles/impress_mpnn.dir/mpnn.cpp.o"
  "CMakeFiles/impress_mpnn.dir/mpnn.cpp.o.d"
  "CMakeFiles/impress_mpnn.dir/mpnn_task.cpp.o"
  "CMakeFiles/impress_mpnn.dir/mpnn_task.cpp.o.d"
  "libimpress_mpnn.a"
  "libimpress_mpnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_mpnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
