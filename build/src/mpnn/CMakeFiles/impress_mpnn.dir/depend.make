# Empty dependencies file for impress_mpnn.
# This may be replaced when dependencies are built.
