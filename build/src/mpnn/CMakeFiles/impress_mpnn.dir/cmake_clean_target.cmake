file(REMOVE_RECURSE
  "libimpress_mpnn.a"
)
