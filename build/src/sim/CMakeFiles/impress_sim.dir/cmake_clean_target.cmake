file(REMOVE_RECURSE
  "libimpress_sim.a"
)
