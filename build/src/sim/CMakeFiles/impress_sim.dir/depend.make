# Empty dependencies file for impress_sim.
# This may be replaced when dependencies are built.
