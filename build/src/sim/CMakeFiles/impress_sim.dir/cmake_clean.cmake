file(REMOVE_RECURSE
  "CMakeFiles/impress_sim.dir/engine.cpp.o"
  "CMakeFiles/impress_sim.dir/engine.cpp.o.d"
  "libimpress_sim.a"
  "libimpress_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
