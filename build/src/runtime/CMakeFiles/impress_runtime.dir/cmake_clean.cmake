file(REMOVE_RECURSE
  "CMakeFiles/impress_runtime.dir/pilot.cpp.o"
  "CMakeFiles/impress_runtime.dir/pilot.cpp.o.d"
  "CMakeFiles/impress_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/impress_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/impress_runtime.dir/session.cpp.o"
  "CMakeFiles/impress_runtime.dir/session.cpp.o.d"
  "CMakeFiles/impress_runtime.dir/sim_executor.cpp.o"
  "CMakeFiles/impress_runtime.dir/sim_executor.cpp.o.d"
  "CMakeFiles/impress_runtime.dir/task.cpp.o"
  "CMakeFiles/impress_runtime.dir/task.cpp.o.d"
  "CMakeFiles/impress_runtime.dir/task_graph.cpp.o"
  "CMakeFiles/impress_runtime.dir/task_graph.cpp.o.d"
  "CMakeFiles/impress_runtime.dir/task_manager.cpp.o"
  "CMakeFiles/impress_runtime.dir/task_manager.cpp.o.d"
  "CMakeFiles/impress_runtime.dir/thread_executor.cpp.o"
  "CMakeFiles/impress_runtime.dir/thread_executor.cpp.o.d"
  "libimpress_runtime.a"
  "libimpress_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
