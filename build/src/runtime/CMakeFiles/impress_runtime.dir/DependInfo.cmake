
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/pilot.cpp" "src/runtime/CMakeFiles/impress_runtime.dir/pilot.cpp.o" "gcc" "src/runtime/CMakeFiles/impress_runtime.dir/pilot.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/impress_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/impress_runtime.dir/scheduler.cpp.o.d"
  "/root/repo/src/runtime/session.cpp" "src/runtime/CMakeFiles/impress_runtime.dir/session.cpp.o" "gcc" "src/runtime/CMakeFiles/impress_runtime.dir/session.cpp.o.d"
  "/root/repo/src/runtime/sim_executor.cpp" "src/runtime/CMakeFiles/impress_runtime.dir/sim_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/impress_runtime.dir/sim_executor.cpp.o.d"
  "/root/repo/src/runtime/task.cpp" "src/runtime/CMakeFiles/impress_runtime.dir/task.cpp.o" "gcc" "src/runtime/CMakeFiles/impress_runtime.dir/task.cpp.o.d"
  "/root/repo/src/runtime/task_graph.cpp" "src/runtime/CMakeFiles/impress_runtime.dir/task_graph.cpp.o" "gcc" "src/runtime/CMakeFiles/impress_runtime.dir/task_graph.cpp.o.d"
  "/root/repo/src/runtime/task_manager.cpp" "src/runtime/CMakeFiles/impress_runtime.dir/task_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/impress_runtime.dir/task_manager.cpp.o.d"
  "/root/repo/src/runtime/thread_executor.cpp" "src/runtime/CMakeFiles/impress_runtime.dir/thread_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/impress_runtime.dir/thread_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/impress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/impress_hpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
