file(REMOVE_RECURSE
  "libimpress_runtime.a"
)
