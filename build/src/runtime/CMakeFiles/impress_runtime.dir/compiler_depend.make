# Empty compiler generated dependencies file for impress_runtime.
# This may be replaced when dependencies are built.
