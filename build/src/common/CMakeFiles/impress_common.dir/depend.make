# Empty dependencies file for impress_common.
# This may be replaced when dependencies are built.
