file(REMOVE_RECURSE
  "CMakeFiles/impress_common.dir/ascii_chart.cpp.o"
  "CMakeFiles/impress_common.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/impress_common.dir/histogram.cpp.o"
  "CMakeFiles/impress_common.dir/histogram.cpp.o.d"
  "CMakeFiles/impress_common.dir/json.cpp.o"
  "CMakeFiles/impress_common.dir/json.cpp.o.d"
  "CMakeFiles/impress_common.dir/logging.cpp.o"
  "CMakeFiles/impress_common.dir/logging.cpp.o.d"
  "CMakeFiles/impress_common.dir/rng.cpp.o"
  "CMakeFiles/impress_common.dir/rng.cpp.o.d"
  "CMakeFiles/impress_common.dir/stats.cpp.o"
  "CMakeFiles/impress_common.dir/stats.cpp.o.d"
  "CMakeFiles/impress_common.dir/string_util.cpp.o"
  "CMakeFiles/impress_common.dir/string_util.cpp.o.d"
  "CMakeFiles/impress_common.dir/table.cpp.o"
  "CMakeFiles/impress_common.dir/table.cpp.o.d"
  "CMakeFiles/impress_common.dir/thread_pool.cpp.o"
  "CMakeFiles/impress_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/impress_common.dir/time_util.cpp.o"
  "CMakeFiles/impress_common.dir/time_util.cpp.o.d"
  "CMakeFiles/impress_common.dir/uid.cpp.o"
  "CMakeFiles/impress_common.dir/uid.cpp.o.d"
  "libimpress_common.a"
  "libimpress_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
