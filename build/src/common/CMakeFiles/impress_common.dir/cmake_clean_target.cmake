file(REMOVE_RECURSE
  "libimpress_common.a"
)
