file(REMOVE_RECURSE
  "libimpress_protein.a"
)
