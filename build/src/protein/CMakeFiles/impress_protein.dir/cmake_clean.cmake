file(REMOVE_RECURSE
  "CMakeFiles/impress_protein.dir/contacts.cpp.o"
  "CMakeFiles/impress_protein.dir/contacts.cpp.o.d"
  "CMakeFiles/impress_protein.dir/datasets.cpp.o"
  "CMakeFiles/impress_protein.dir/datasets.cpp.o.d"
  "CMakeFiles/impress_protein.dir/fasta.cpp.o"
  "CMakeFiles/impress_protein.dir/fasta.cpp.o.d"
  "CMakeFiles/impress_protein.dir/geometry.cpp.o"
  "CMakeFiles/impress_protein.dir/geometry.cpp.o.d"
  "CMakeFiles/impress_protein.dir/landscape.cpp.o"
  "CMakeFiles/impress_protein.dir/landscape.cpp.o.d"
  "CMakeFiles/impress_protein.dir/msa.cpp.o"
  "CMakeFiles/impress_protein.dir/msa.cpp.o.d"
  "CMakeFiles/impress_protein.dir/pdb.cpp.o"
  "CMakeFiles/impress_protein.dir/pdb.cpp.o.d"
  "CMakeFiles/impress_protein.dir/residue.cpp.o"
  "CMakeFiles/impress_protein.dir/residue.cpp.o.d"
  "CMakeFiles/impress_protein.dir/sequence.cpp.o"
  "CMakeFiles/impress_protein.dir/sequence.cpp.o.d"
  "CMakeFiles/impress_protein.dir/structure.cpp.o"
  "CMakeFiles/impress_protein.dir/structure.cpp.o.d"
  "libimpress_protein.a"
  "libimpress_protein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_protein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
