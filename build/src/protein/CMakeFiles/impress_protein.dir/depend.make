# Empty dependencies file for impress_protein.
# This may be replaced when dependencies are built.
