
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protein/contacts.cpp" "src/protein/CMakeFiles/impress_protein.dir/contacts.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/contacts.cpp.o.d"
  "/root/repo/src/protein/datasets.cpp" "src/protein/CMakeFiles/impress_protein.dir/datasets.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/datasets.cpp.o.d"
  "/root/repo/src/protein/fasta.cpp" "src/protein/CMakeFiles/impress_protein.dir/fasta.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/fasta.cpp.o.d"
  "/root/repo/src/protein/geometry.cpp" "src/protein/CMakeFiles/impress_protein.dir/geometry.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/geometry.cpp.o.d"
  "/root/repo/src/protein/landscape.cpp" "src/protein/CMakeFiles/impress_protein.dir/landscape.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/landscape.cpp.o.d"
  "/root/repo/src/protein/msa.cpp" "src/protein/CMakeFiles/impress_protein.dir/msa.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/msa.cpp.o.d"
  "/root/repo/src/protein/pdb.cpp" "src/protein/CMakeFiles/impress_protein.dir/pdb.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/pdb.cpp.o.d"
  "/root/repo/src/protein/residue.cpp" "src/protein/CMakeFiles/impress_protein.dir/residue.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/residue.cpp.o.d"
  "/root/repo/src/protein/sequence.cpp" "src/protein/CMakeFiles/impress_protein.dir/sequence.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/sequence.cpp.o.d"
  "/root/repo/src/protein/structure.cpp" "src/protein/CMakeFiles/impress_protein.dir/structure.cpp.o" "gcc" "src/protein/CMakeFiles/impress_protein.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
