# Empty compiler generated dependencies file for impress_hpc.
# This may be replaced when dependencies are built.
