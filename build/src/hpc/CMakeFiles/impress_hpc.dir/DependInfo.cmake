
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpc/analytics.cpp" "src/hpc/CMakeFiles/impress_hpc.dir/analytics.cpp.o" "gcc" "src/hpc/CMakeFiles/impress_hpc.dir/analytics.cpp.o.d"
  "/root/repo/src/hpc/gantt.cpp" "src/hpc/CMakeFiles/impress_hpc.dir/gantt.cpp.o" "gcc" "src/hpc/CMakeFiles/impress_hpc.dir/gantt.cpp.o.d"
  "/root/repo/src/hpc/profiler.cpp" "src/hpc/CMakeFiles/impress_hpc.dir/profiler.cpp.o" "gcc" "src/hpc/CMakeFiles/impress_hpc.dir/profiler.cpp.o.d"
  "/root/repo/src/hpc/resource_pool.cpp" "src/hpc/CMakeFiles/impress_hpc.dir/resource_pool.cpp.o" "gcc" "src/hpc/CMakeFiles/impress_hpc.dir/resource_pool.cpp.o.d"
  "/root/repo/src/hpc/utilization.cpp" "src/hpc/CMakeFiles/impress_hpc.dir/utilization.cpp.o" "gcc" "src/hpc/CMakeFiles/impress_hpc.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
