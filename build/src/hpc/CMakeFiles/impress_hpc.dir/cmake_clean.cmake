file(REMOVE_RECURSE
  "CMakeFiles/impress_hpc.dir/analytics.cpp.o"
  "CMakeFiles/impress_hpc.dir/analytics.cpp.o.d"
  "CMakeFiles/impress_hpc.dir/gantt.cpp.o"
  "CMakeFiles/impress_hpc.dir/gantt.cpp.o.d"
  "CMakeFiles/impress_hpc.dir/profiler.cpp.o"
  "CMakeFiles/impress_hpc.dir/profiler.cpp.o.d"
  "CMakeFiles/impress_hpc.dir/resource_pool.cpp.o"
  "CMakeFiles/impress_hpc.dir/resource_pool.cpp.o.d"
  "CMakeFiles/impress_hpc.dir/utilization.cpp.o"
  "CMakeFiles/impress_hpc.dir/utilization.cpp.o.d"
  "libimpress_hpc.a"
  "libimpress_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
