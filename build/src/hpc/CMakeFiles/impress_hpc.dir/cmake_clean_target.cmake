file(REMOVE_RECURSE
  "libimpress_hpc.a"
)
