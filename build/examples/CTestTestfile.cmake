# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_custom_generator]=] "/root/repo/build/examples/custom_generator")
set_tests_properties([=[example_custom_generator]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_protease_redesign]=] "/root/repo/build/examples/protease_redesign")
set_tests_properties([=[example_protease_redesign]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_utilization_monitor]=] "/root/repo/build/examples/utilization_monitor")
set_tests_properties([=[example_utilization_monitor]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_specificity]=] "/root/repo/build/examples/specificity_matrix")
set_tests_properties([=[example_specificity]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_smoke]=] "/root/repo/build/examples/impress_cli" "--targets" "1" "--cycles" "2" "--dump" "/root/repo/build/examples/smoke.json")
set_tests_properties([=[example_cli_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_analyze_smoke]=] "/root/repo/build/examples/impress_analyze" "/root/repo/build/examples/smoke.json" "--cycles" "2")
set_tests_properties([=[example_analyze_smoke]=] PROPERTIES  DEPENDS "example_cli_smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
