file(REMOVE_RECURSE
  "CMakeFiles/impress_analyze.dir/impress_analyze.cpp.o"
  "CMakeFiles/impress_analyze.dir/impress_analyze.cpp.o.d"
  "impress_analyze"
  "impress_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
