# Empty compiler generated dependencies file for impress_analyze.
# This may be replaced when dependencies are built.
