file(REMOVE_RECURSE
  "CMakeFiles/specificity_matrix.dir/specificity_matrix.cpp.o"
  "CMakeFiles/specificity_matrix.dir/specificity_matrix.cpp.o.d"
  "specificity_matrix"
  "specificity_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specificity_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
