# Empty compiler generated dependencies file for specificity_matrix.
# This may be replaced when dependencies are built.
