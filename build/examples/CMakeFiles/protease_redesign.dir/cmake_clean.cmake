file(REMOVE_RECURSE
  "CMakeFiles/protease_redesign.dir/protease_redesign.cpp.o"
  "CMakeFiles/protease_redesign.dir/protease_redesign.cpp.o.d"
  "protease_redesign"
  "protease_redesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protease_redesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
