# Empty dependencies file for protease_redesign.
# This may be replaced when dependencies are built.
