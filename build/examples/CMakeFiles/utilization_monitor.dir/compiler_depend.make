# Empty compiler generated dependencies file for utilization_monitor.
# This may be replaced when dependencies are built.
