file(REMOVE_RECURSE
  "CMakeFiles/utilization_monitor.dir/utilization_monitor.cpp.o"
  "CMakeFiles/utilization_monitor.dir/utilization_monitor.cpp.o.d"
  "utilization_monitor"
  "utilization_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utilization_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
