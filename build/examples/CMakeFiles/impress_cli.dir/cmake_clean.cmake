file(REMOVE_RECURSE
  "CMakeFiles/impress_cli.dir/impress_cli.cpp.o"
  "CMakeFiles/impress_cli.dir/impress_cli.cpp.o.d"
  "impress_cli"
  "impress_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impress_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
