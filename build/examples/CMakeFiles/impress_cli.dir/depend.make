# Empty dependencies file for impress_cli.
# This may be replaced when dependencies are built.
