file(REMOVE_RECURSE
  "CMakeFiles/adaptive_campaign.dir/adaptive_campaign.cpp.o"
  "CMakeFiles/adaptive_campaign.dir/adaptive_campaign.cpp.o.d"
  "adaptive_campaign"
  "adaptive_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
