# Empty compiler generated dependencies file for adaptive_campaign.
# This may be replaced when dependencies are built.
