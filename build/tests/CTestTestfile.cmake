# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_hpc[1]_include.cmake")
include("/root/repo/build/tests/tests_runtime[1]_include.cmake")
include("/root/repo/build/tests/tests_protein[1]_include.cmake")
include("/root/repo/build/tests/tests_surrogates[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
