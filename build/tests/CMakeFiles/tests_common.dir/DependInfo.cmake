
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_ascii_chart.cpp" "tests/CMakeFiles/tests_common.dir/common/test_ascii_chart.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_ascii_chart.cpp.o.d"
  "/root/repo/tests/common/test_channel.cpp" "tests/CMakeFiles/tests_common.dir/common/test_channel.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_channel.cpp.o.d"
  "/root/repo/tests/common/test_histogram.cpp" "tests/CMakeFiles/tests_common.dir/common/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_histogram.cpp.o.d"
  "/root/repo/tests/common/test_json.cpp" "tests/CMakeFiles/tests_common.dir/common/test_json.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_json.cpp.o.d"
  "/root/repo/tests/common/test_logging.cpp" "tests/CMakeFiles/tests_common.dir/common/test_logging.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_logging.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/tests_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/tests_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_string_util.cpp" "tests/CMakeFiles/tests_common.dir/common/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_string_util.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/tests_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_table.cpp.o.d"
  "/root/repo/tests/common/test_thread_pool.cpp" "tests/CMakeFiles/tests_common.dir/common/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_thread_pool.cpp.o.d"
  "/root/repo/tests/common/test_uid.cpp" "tests/CMakeFiles/tests_common.dir/common/test_uid.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_uid.cpp.o.d"
  "/root/repo/tests/common/test_umbrella.cpp" "tests/CMakeFiles/tests_common.dir/common/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_umbrella.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/impress_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpnn/CMakeFiles/impress_mpnn.dir/DependInfo.cmake"
  "/root/repo/build/src/fold/CMakeFiles/impress_fold.dir/DependInfo.cmake"
  "/root/repo/build/src/protein/CMakeFiles/impress_protein.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/impress_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/impress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/impress_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
