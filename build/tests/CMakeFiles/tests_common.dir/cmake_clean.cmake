file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/common/test_ascii_chart.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_ascii_chart.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_channel.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_channel.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_histogram.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_histogram.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_json.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_json.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_logging.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_logging.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_string_util.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_string_util.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_table.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_table.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_thread_pool.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_uid.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_uid.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_umbrella.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_umbrella.cpp.o.d"
  "tests_common"
  "tests_common.pdb"
  "tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
