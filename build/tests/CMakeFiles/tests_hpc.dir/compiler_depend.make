# Empty compiler generated dependencies file for tests_hpc.
# This may be replaced when dependencies are built.
