file(REMOVE_RECURSE
  "CMakeFiles/tests_hpc.dir/hpc/test_analytics.cpp.o"
  "CMakeFiles/tests_hpc.dir/hpc/test_analytics.cpp.o.d"
  "CMakeFiles/tests_hpc.dir/hpc/test_gantt.cpp.o"
  "CMakeFiles/tests_hpc.dir/hpc/test_gantt.cpp.o.d"
  "CMakeFiles/tests_hpc.dir/hpc/test_profiler.cpp.o"
  "CMakeFiles/tests_hpc.dir/hpc/test_profiler.cpp.o.d"
  "CMakeFiles/tests_hpc.dir/hpc/test_resource_pool.cpp.o"
  "CMakeFiles/tests_hpc.dir/hpc/test_resource_pool.cpp.o.d"
  "CMakeFiles/tests_hpc.dir/hpc/test_utilization.cpp.o"
  "CMakeFiles/tests_hpc.dir/hpc/test_utilization.cpp.o.d"
  "tests_hpc"
  "tests_hpc.pdb"
  "tests_hpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
