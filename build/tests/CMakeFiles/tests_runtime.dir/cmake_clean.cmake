file(REMOVE_RECURSE
  "CMakeFiles/tests_runtime.dir/runtime/test_scheduler.cpp.o"
  "CMakeFiles/tests_runtime.dir/runtime/test_scheduler.cpp.o.d"
  "CMakeFiles/tests_runtime.dir/runtime/test_session_sim.cpp.o"
  "CMakeFiles/tests_runtime.dir/runtime/test_session_sim.cpp.o.d"
  "CMakeFiles/tests_runtime.dir/runtime/test_session_threaded.cpp.o"
  "CMakeFiles/tests_runtime.dir/runtime/test_session_threaded.cpp.o.d"
  "CMakeFiles/tests_runtime.dir/runtime/test_task.cpp.o"
  "CMakeFiles/tests_runtime.dir/runtime/test_task.cpp.o.d"
  "CMakeFiles/tests_runtime.dir/runtime/test_task_graph.cpp.o"
  "CMakeFiles/tests_runtime.dir/runtime/test_task_graph.cpp.o.d"
  "CMakeFiles/tests_runtime.dir/runtime/test_task_manager.cpp.o"
  "CMakeFiles/tests_runtime.dir/runtime/test_task_manager.cpp.o.d"
  "tests_runtime"
  "tests_runtime.pdb"
  "tests_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
