file(REMOVE_RECURSE
  "CMakeFiles/tests_protein.dir/protein/test_contacts.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_contacts.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_datasets.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_datasets.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_fasta.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_fasta.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_geometry.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_geometry.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_landscape.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_landscape.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_msa.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_msa.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_pdb.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_pdb.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_residue.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_residue.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_sequence.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_sequence.cpp.o.d"
  "CMakeFiles/tests_protein.dir/protein/test_structure.cpp.o"
  "CMakeFiles/tests_protein.dir/protein/test_structure.cpp.o.d"
  "tests_protein"
  "tests_protein.pdb"
  "tests_protein[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_protein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
