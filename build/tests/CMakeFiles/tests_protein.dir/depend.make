# Empty dependencies file for tests_protein.
# This may be replaced when dependencies are built.
