
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protein/test_contacts.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_contacts.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_contacts.cpp.o.d"
  "/root/repo/tests/protein/test_datasets.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_datasets.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_datasets.cpp.o.d"
  "/root/repo/tests/protein/test_fasta.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_fasta.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_fasta.cpp.o.d"
  "/root/repo/tests/protein/test_geometry.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_geometry.cpp.o.d"
  "/root/repo/tests/protein/test_landscape.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_landscape.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_landscape.cpp.o.d"
  "/root/repo/tests/protein/test_msa.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_msa.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_msa.cpp.o.d"
  "/root/repo/tests/protein/test_pdb.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_pdb.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_pdb.cpp.o.d"
  "/root/repo/tests/protein/test_residue.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_residue.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_residue.cpp.o.d"
  "/root/repo/tests/protein/test_sequence.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_sequence.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_sequence.cpp.o.d"
  "/root/repo/tests/protein/test_structure.cpp" "tests/CMakeFiles/tests_protein.dir/protein/test_structure.cpp.o" "gcc" "tests/CMakeFiles/tests_protein.dir/protein/test_structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/impress_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpnn/CMakeFiles/impress_mpnn.dir/DependInfo.cmake"
  "/root/repo/build/src/fold/CMakeFiles/impress_fold.dir/DependInfo.cmake"
  "/root/repo/build/src/protein/CMakeFiles/impress_protein.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/impress_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/impress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/impress_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
