file(REMOVE_RECURSE
  "CMakeFiles/tests_surrogates.dir/surrogates/test_fold.cpp.o"
  "CMakeFiles/tests_surrogates.dir/surrogates/test_fold.cpp.o.d"
  "CMakeFiles/tests_surrogates.dir/surrogates/test_mpnn.cpp.o"
  "CMakeFiles/tests_surrogates.dir/surrogates/test_mpnn.cpp.o.d"
  "CMakeFiles/tests_surrogates.dir/surrogates/test_task_factories.cpp.o"
  "CMakeFiles/tests_surrogates.dir/surrogates/test_task_factories.cpp.o.d"
  "tests_surrogates"
  "tests_surrogates.pdb"
  "tests_surrogates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_surrogates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
