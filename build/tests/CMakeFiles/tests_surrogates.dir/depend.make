# Empty dependencies file for tests_surrogates.
# This may be replaced when dependencies are built.
