
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_determinism.cpp" "tests/CMakeFiles/tests_integration.dir/integration/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/test_determinism.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/tests_integration.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_failure_injection.cpp" "tests/CMakeFiles/tests_integration.dir/integration/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/test_failure_injection.cpp.o.d"
  "/root/repo/tests/integration/test_heterogeneous_platform.cpp" "tests/CMakeFiles/tests_integration.dir/integration/test_heterogeneous_platform.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/test_heterogeneous_platform.cpp.o.d"
  "/root/repo/tests/integration/test_paper_shapes.cpp" "tests/CMakeFiles/tests_integration.dir/integration/test_paper_shapes.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/test_paper_shapes.cpp.o.d"
  "/root/repo/tests/integration/test_scheduler_fuzz.cpp" "tests/CMakeFiles/tests_integration.dir/integration/test_scheduler_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/test_scheduler_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/impress_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpnn/CMakeFiles/impress_mpnn.dir/DependInfo.cmake"
  "/root/repo/build/src/fold/CMakeFiles/impress_fold.dir/DependInfo.cmake"
  "/root/repo/build/src/protein/CMakeFiles/impress_protein.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/impress_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/impress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/impress_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
