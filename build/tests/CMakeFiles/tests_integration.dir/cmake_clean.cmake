file(REMOVE_RECURSE
  "CMakeFiles/tests_integration.dir/integration/test_determinism.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_determinism.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_failure_injection.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_failure_injection.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_heterogeneous_platform.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_heterogeneous_platform.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_paper_shapes.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_paper_shapes.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_scheduler_fuzz.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_scheduler_fuzz.cpp.o.d"
  "tests_integration"
  "tests_integration.pdb"
  "tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
