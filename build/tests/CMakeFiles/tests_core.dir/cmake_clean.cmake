file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/test_campaign.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_campaign.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_coordinator.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_coordinator.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_crossover_generator.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_crossover_generator.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_dpo_generator.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_dpo_generator.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_export.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_export.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_generator.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_generator.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_pipeline.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_pipeline.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_pipeline_fuzz.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_pipeline_fuzz.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_refinement.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_refinement.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_report.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_session_dump.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_session_dump.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
