
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_campaign.cpp" "tests/CMakeFiles/tests_core.dir/core/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_campaign.cpp.o.d"
  "/root/repo/tests/core/test_coordinator.cpp" "tests/CMakeFiles/tests_core.dir/core/test_coordinator.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_coordinator.cpp.o.d"
  "/root/repo/tests/core/test_crossover_generator.cpp" "tests/CMakeFiles/tests_core.dir/core/test_crossover_generator.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_crossover_generator.cpp.o.d"
  "/root/repo/tests/core/test_dpo_generator.cpp" "tests/CMakeFiles/tests_core.dir/core/test_dpo_generator.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_dpo_generator.cpp.o.d"
  "/root/repo/tests/core/test_export.cpp" "tests/CMakeFiles/tests_core.dir/core/test_export.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_export.cpp.o.d"
  "/root/repo/tests/core/test_generator.cpp" "tests/CMakeFiles/tests_core.dir/core/test_generator.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_generator.cpp.o.d"
  "/root/repo/tests/core/test_pipeline.cpp" "tests/CMakeFiles/tests_core.dir/core/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_pipeline.cpp.o.d"
  "/root/repo/tests/core/test_pipeline_fuzz.cpp" "tests/CMakeFiles/tests_core.dir/core/test_pipeline_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_pipeline_fuzz.cpp.o.d"
  "/root/repo/tests/core/test_refinement.cpp" "tests/CMakeFiles/tests_core.dir/core/test_refinement.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_refinement.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/tests_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_session_dump.cpp" "tests/CMakeFiles/tests_core.dir/core/test_session_dump.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_session_dump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/impress_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpnn/CMakeFiles/impress_mpnn.dir/DependInfo.cmake"
  "/root/repo/build/src/fold/CMakeFiles/impress_fold.dir/DependInfo.cmake"
  "/root/repo/build/src/protein/CMakeFiles/impress_protein.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/impress_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/impress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/impress_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
