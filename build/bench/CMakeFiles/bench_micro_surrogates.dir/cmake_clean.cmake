file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_surrogates.dir/bench_micro_surrogates.cpp.o"
  "CMakeFiles/bench_micro_surrogates.dir/bench_micro_surrogates.cpp.o.d"
  "bench_micro_surrogates"
  "bench_micro_surrogates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_surrogates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
