# Empty dependencies file for bench_micro_surrogates.
# This may be replaced when dependencies are built.
