
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1.cpp" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o" "gcc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/impress_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpnn/CMakeFiles/impress_mpnn.dir/DependInfo.cmake"
  "/root/repo/build/src/fold/CMakeFiles/impress_fold.dir/DependInfo.cmake"
  "/root/repo/build/src/protein/CMakeFiles/impress_protein.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/impress_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/impress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/impress_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/impress_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
