// Binding-specificity matrix: design one receptor per (domain, peptide)
// pair and cross-evaluate every optimized design against every peptide —
// the selectivity question that motivates PDZ engineering in the paper's
// introduction ("designing them for high affinity AND selectivity for a
// particular C-terminus").
//
//   $ ./examples/specificity_matrix [seed]
//
// A good design protocol should produce on-target designs that score
// higher against their own peptide than against the others (a diagonal-
// dominant matrix). Evaluation uses the AlphaFold surrogate's pTM plus
// the geometric interface analysis from protein/contacts.hpp.

#include <cstdio>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "protein/contacts.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);

  // Three peptide targets with distinct chemistry: the alpha-synuclein
  // acidic tail, a hydrophobic C-terminus, and a basic one.
  const std::vector<std::pair<std::string, std::string>> peptides{
      {"a-syn (acidic)", "EGYQDYEPEA"},
      {"hydrophobic", "LLVVILFAML"},
      {"basic", "GKRKSRRKQA"},
  };

  // Design one receptor per peptide (same scaffold size, distinct
  // landscapes derived from the pairing).
  struct Design {
    std::string label;
    protein::DesignTarget target;
    protein::Sequence receptor;
  };
  std::vector<Design> designs;
  for (const auto& [label, pep] : peptides) {
    auto target = protein::make_target("SPEC-" + label.substr(0, 5), 90,
                                       protein::Sequence::from_string(pep));
    std::vector<protein::DesignTarget> targets{target};
    auto cfg = core::im_rp_campaign(seed);
    cfg.protocol.spawn_subpipelines = false;
    const auto result = core::Campaign(cfg).run(targets);
    const auto& history = result.trajectories.front().history;
    if (history.empty()) {
      std::fprintf(stderr, "design failed for %s\n", label.c_str());
      return 1;
    }
    designs.push_back(
        Design{label, std::move(target),
               protein::Sequence::from_string(history.back().sequence)});
  }

  // Cross-evaluate: each design vs each peptide's landscape.
  std::printf("binding-specificity matrix (rows = designs, cols = peptides; "
              "surrogate pTM)\n\n%-22s", "");
  for (const auto& [label, pep] : peptides) std::printf(" %14s", label.c_str());
  std::printf("\n");

  bool diagonal_dominant = true;
  for (std::size_t d = 0; d < designs.size(); ++d) {
    std::printf("design@%-15s", designs[d].label.c_str());
    double own = 0.0;
    std::vector<double> row;
    for (std::size_t p = 0; p < peptides.size(); ++p) {
      // Evaluate the design against peptide p's landscape: rebuild the
      // complex with that peptide and ask the predictor.
      const auto& landscape = designs[p].target.landscape;
      const auto cx = protein::Complex::make(
          "eval", designs[d].receptor,
          protein::Sequence::from_string(peptides[p].second));
      common::Rng rng(common::stable_hash("spec") + d * 13 + p);
      fold::AlphaFold af;
      double ptm = 0.0;
      for (int i = 0; i < 5; ++i)
        ptm += af.predict(cx, landscape, rng).best().metrics.ptm;
      ptm /= 5.0;
      row.push_back(ptm);
      if (p == d) own = ptm;
      std::printf(" %14.3f", ptm);
    }
    for (std::size_t p = 0; p < row.size(); ++p)
      if (p != d && row[p] >= own) diagonal_dominant = false;
    std::printf("\n");
  }

  // Geometric sanity on the on-target complexes.
  std::printf("\non-target interface analysis:\n");
  for (const auto& design : designs) {
    const auto cx = protein::Complex::make("iface", design.receptor,
                                           design.target.peptide);
    const auto stats = protein::analyze_interface(cx);
    std::printf("  %-16s contacts=%zu salt_bridges=%zu hydrophobic=%zu "
                "packing=%.2f\n",
                design.label.c_str(), stats.contacts, stats.salt_bridges,
                stats.hydrophobic_pairs, stats.packing_score());
  }

  std::printf("\nmatrix is %sdiagonal-dominant: designs bind their own "
              "peptide best%s\n",
              diagonal_dominant ? "" : "NOT ",
              diagonal_dominant ? "" : " (selectivity failed)");
  return diagonal_dominant ? 0 : 1;
}
