// Trace-viewer export: run a small traced campaign and write everything
// the observability layer produces —
//
//   trace.json    chrome://tracing / Perfetto (load via ui.perfetto.dev)
//   metrics.prom  Prometheus text exposition
//
//   $ ./examples/trace_viewer_export [OUTDIR] [seed]
//
// The trace shows the full nesting the runtime records: the campaign
// root, one lane per pipeline (sub-pipelines included), stage spans per
// protocol cycle, task spans covering every retry, attempt spans per
// executor launch, and the phase/work spans inside them (exec_setup,
// mpnn.design, fold.predict, fold.cache hit/miss).

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/export.hpp"
#include "obs/export.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  const std::string outdir = argc > 1 ? argv[1] : ".";
  std::uint64_t seed = 5;
  if (argc > 2) seed = std::stoull(argv[2]);

  // Four targets keep the trace small enough to eyeball while still
  // exercising sub-pipeline spawns and fold retries.
  const auto targets = protein::four_pdz_domains();
  auto config = core::im_rp_campaign(seed);
  config.session.enable_tracing = true;
  config.session.enable_metrics = true;

  core::Campaign campaign(config);
  const auto result = campaign.run(targets);

  // Depth of the recorded span tree (campaign = 1).
  std::map<obs::SpanId, obs::SpanId> parent_of;
  for (const auto& span : result.trace) parent_of[span.id] = span.parent;
  std::size_t max_depth = 0;
  for (const auto& span : result.trace) {
    std::size_t depth = 1;
    for (auto it = parent_of.find(span.parent);
         it != parent_of.end() && depth <= parent_of.size();
         it = parent_of.find(it->second))
      ++depth;
    max_depth = std::max(max_depth, depth);
  }
  std::printf("campaign %s: %zu spans, %zu levels deep\n",
              result.name.c_str(), result.trace.size(), max_depth);

  const std::string trace_path = outdir + "/trace.json";
  core::write_text_file(trace_path,
                        obs::chrome_trace_json(result.trace, 2) + "\n");
  std::printf("wrote %s — open at https://ui.perfetto.dev\n",
              trace_path.c_str());

  const std::string metrics_path = outdir + "/metrics.prom";
  core::write_text_file(metrics_path, obs::prometheus_text(result.metrics));
  std::printf("wrote %s\n", metrics_path.c_str());

  // A taste of the metrics on stdout.
  for (const auto& c : result.metrics.counters)
    std::printf("  %-36s %llu\n", c.name.c_str(),
                static_cast<unsigned long long>(c.value));
  return max_depth >= 4 ? 0 : 1;  // the tree must actually nest
}
