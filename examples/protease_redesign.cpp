// The paper's Future Work protocol (§V), implemented: "ProteinMPNN runs
// must fix the catalytic residues rather than design the entire protein."
//
//   $ ./examples/protease_redesign [seed]
//
// We declare a synthetic protease whose catalytic triad must stay intact,
// fix those positions in the sampler, and verify after the campaign that
// every accepted design preserves them while the rest of the pocket was
// optimized.

#include <cstdio>
#include <string>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);

  // A protease-like target: 110 residues, substrate peptide.
  std::vector<protein::DesignTarget> targets;
  targets.push_back(protein::make_target(
      "PROTEASE-1", 110, protein::Sequence::from_string("AAPV"),
      /*start_fitness=*/0.30));
  const auto& target = targets.front();

  // Pick a catalytic "triad" inside the pocket so fixing it actually
  // constrains the design space.
  const auto& iface = target.landscape.interface_positions();
  const std::vector<std::size_t> triad{iface[0], iface[iface.size() / 2],
                                       iface.back()};
  std::printf("catalytic residues fixed at positions %zu, %zu, %zu: %c%c%c\n",
              triad[0], triad[1], triad[2],
              protein::to_char(target.start_receptor[triad[0]]),
              protein::to_char(target.start_receptor[triad[1]]),
              protein::to_char(target.start_receptor[triad[2]]));

  auto cfg = core::im_rp_campaign(seed);
  cfg.sampler.fixed_positions = triad;  // the one-line protocol change
  core::Campaign campaign(cfg);
  const auto result = campaign.run(targets);

  // Verify the constraint held through every accepted design.
  bool violated = false;
  for (const auto& traj : result.trajectories) {
    for (const auto& rec : traj.history) {
      const auto seq = protein::Sequence::from_string(rec.sequence);
      for (auto pos : triad)
        if (seq[pos] != target.start_receptor[pos]) violated = true;
    }
  }
  const int cycles = core::calibration::kCycles;
  std::printf("catalytic triad preserved in all %zu accepted designs: %s\n",
              result.total_trajectories(), violated ? "NO (BUG)" : "yes");
  std::printf("design still improved around the fixed residues: pTM "
              "%.3f -> %.3f, ipAE %.2f -> %.2f\n",
              core::median_at_cycle(result, core::Metric::kPtm, 1, cycles),
              core::median_at_cycle(result, core::Metric::kPtm, cycles, cycles),
              core::median_at_cycle(result, core::Metric::kIpae, 1, cycles),
              core::median_at_cycle(result, core::Metric::kIpae, cycles, cycles));
  return violated ? 1 : 0;
}
