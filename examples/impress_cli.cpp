// impress_cli: run IMPRESS campaigns from the command line.
//
//   impress_cli [--protocol imrp|contv] [--targets four|<N>]
//               [--cycles M] [--seed S] [--mode sim|threaded]
//               [--nodes K] [--csv DIR] [--trace FILE] [--metrics FILE]
//               [--gantt] [--verbose]
//
// Examples:
//   impress_cli                              # the Table-I IM-RP arm
//   impress_cli --protocol contv             # the control arm
//   impress_cli --targets 70 --csv out/      # Fig-3 campaign + CSV export
//   impress_cli --nodes 4 --targets 16       # multi-node pilot
//   impress_cli --mode threaded --gantt      # real threads + task gantt
//   impress_cli --trace trace.json           # chrome://tracing / Perfetto
//   impress_cli --metrics metrics.prom       # Prometheus text exposition
//   impress_cli --checkpoint-dir ckpt/ --checkpoint-every 25
//                                            # crash-consistent checkpoints
//   impress_cli --resume ckpt/checkpoint.json
//                                            # continue an interrupted run

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <system_error>

#include "common/logging.hpp"
#include "core/campaign.hpp"
#include "core/export.hpp"
#include "core/session_dump.hpp"
#include "core/report.hpp"
#include "obs/export.hpp"
#include "protein/datasets.hpp"

using namespace impress;

namespace {

struct CliOptions {
  std::string protocol = "imrp";
  std::string targets = "four";
  int cycles = core::calibration::kCycles;
  std::uint64_t seed = 5;
  std::string mode = "sim";
  std::size_t nodes = 1;
  std::optional<std::string> csv_dir;
  std::optional<std::string> dump_path;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> checkpoint_dir;
  std::size_t checkpoint_every = 25;
  std::optional<std::string> resume_path;
  bool gantt = false;
  bool verbose = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--protocol imrp|contv] [--targets four|<N>] [--cycles M]\n"
      "          [--seed S] [--mode sim|threaded] [--nodes K] [--csv DIR]\n"
      "          [--dump FILE.json] [--trace FILE.json] [--metrics FILE]\n"
      "          [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "          [--resume FILE.json] [--gantt] [--verbose]\n",
      argv0);
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    try {
      if (arg == "--protocol") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.protocol = v;
      } else if (arg == "--targets") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.targets = v;
      } else if (arg == "--cycles") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.cycles = std::stoi(v);
      } else if (arg == "--seed") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.seed = std::stoull(v);
      } else if (arg == "--mode") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.mode = v;
      } else if (arg == "--nodes") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.nodes = std::stoull(v);
      } else if (arg == "--csv") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.csv_dir = v;
      } else if (arg == "--dump") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.dump_path = v;
      } else if (arg == "--trace") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.trace_path = v;
      } else if (arg == "--metrics") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.metrics_path = v;
      } else if (arg == "--checkpoint-dir") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.checkpoint_dir = v;
      } else if (arg == "--checkpoint-every") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.checkpoint_every = std::stoull(v);
      } else if (arg == "--resume") {
        const char* v = value();
        if (!v) return std::nullopt;
        opts.resume_path = v;
      } else if (arg == "--gantt") {
        opts.gantt = true;
      } else if (arg == "--verbose") {
        opts.verbose = true;
      } else if (arg == "--help" || arg == "-h") {
        return std::nullopt;
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        return std::nullopt;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad value for %s: %s\n", arg.c_str(), e.what());
      return std::nullopt;
    }
  }
  if (opts.protocol != "imrp" && opts.protocol != "contv") {
    std::fprintf(stderr, "unknown protocol '%s'\n", opts.protocol.c_str());
    return std::nullopt;
  }
  if (opts.mode != "sim" && opts.mode != "threaded") {
    std::fprintf(stderr, "unknown mode '%s'\n", opts.mode.c_str());
    return std::nullopt;
  }
  if (opts.cycles < 1 || opts.nodes < 1) {
    std::fprintf(stderr, "cycles and nodes must be >= 1\n");
    return std::nullopt;
  }
  if (opts.checkpoint_dir && opts.checkpoint_every < 1) {
    std::fprintf(stderr, "--checkpoint-every must be >= 1\n");
    return std::nullopt;
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) {
    usage(argv[0]);
    return 2;
  }
  const CliOptions& opts = *parsed;
  if (opts.verbose) common::set_log_level(common::LogLevel::kInfo);

  // Targets.
  std::vector<protein::DesignTarget> targets;
  if (opts.targets == "four") {
    targets = protein::four_pdz_domains();
  } else {
    try {
      targets = protein::pdz_benchmark(std::stoull(opts.targets));
    } catch (const std::exception&) {
      std::fprintf(stderr, "--targets must be 'four' or a number\n");
      return 2;
    }
  }

  // Campaign configuration.
  auto cfg = opts.protocol == "imrp" ? core::im_rp_campaign(opts.seed)
                                     : core::cont_v_campaign(opts.seed);
  cfg.protocol.cycles = opts.cycles;
  cfg.pilot.nodes.assign(opts.nodes, hpc::amarel_node());
  if (opts.mode == "threaded") {
    cfg.session.mode = rp::ExecutionMode::kThreaded;
    cfg.session.time_scale = 1e-6;  // one simulated hour ~ 3.6 ms wall
    cfg.session.worker_threads = 16;
  }
  cfg.session.enable_tracing = opts.trace_path.has_value();
  cfg.session.enable_metrics = opts.metrics_path.has_value();
  if (opts.checkpoint_dir) {
    std::error_code ec;
    std::filesystem::create_directories(*opts.checkpoint_dir, ec);
    cfg.checkpoint.directory = *opts.checkpoint_dir;
    cfg.checkpoint.every_n_completions = opts.checkpoint_every;
  }

  std::printf("running %s on %zu target(s), %d cycle(s), %zu node(s), "
              "seed %llu, %s executor...\n",
              cfg.name.c_str(), targets.size(), opts.cycles, opts.nodes,
              static_cast<unsigned long long>(opts.seed), opts.mode.c_str());
  core::Campaign campaign(cfg);
  const auto result = [&] {
    if (!opts.resume_path) return campaign.run(targets);
    const auto checkpoint = core::load_checkpoint(*opts.resume_path);
    std::printf("resuming from %s (checkpoint #%llu, t=%.1fs)\n",
                opts.resume_path->c_str(),
                static_cast<unsigned long long>(checkpoint.ordinal),
                checkpoint.now);
    return campaign.resume(targets, checkpoint);
  }();

  // Report.
  std::printf("\n");
  for (const auto metric :
       {core::Metric::kPlddt, core::Metric::kPtm, core::Metric::kIpae}) {
    std::printf("  %-16s", std::string(core::metric_name(metric)).c_str());
    for (int c = 1; c <= opts.cycles; ++c)
      std::printf(" %8.2f",
                  core::median_at_cycle(result, metric, c, opts.cycles));
    std::printf("   (medians per cycle)\n");
  }
  std::printf(
      "\n  trajectories=%zu sub-pipelines=%zu fold-tasks=%zu retries=%zu "
      "failed=%zu\n  makespan=%.1fh CPU=%.1f%% GPU=%.1f%%\n",
      result.total_trajectories(), result.subpipelines, result.fold_tasks,
      result.fold_retries, result.failed_tasks, result.makespan_h,
      result.utilization.cpu_active * 100.0,
      result.utilization.gpu_active * 100.0);

  if (opts.gantt) std::printf("\n%s", result.gantt.c_str());

  if (opts.csv_dir) {
    const auto paths =
        core::export_campaign_csv(result, *opts.csv_dir, opts.cycles);
    std::printf("\nwrote:\n");
    for (const auto& p : paths) std::printf("  %s\n", p.c_str());
  }
  if (opts.dump_path) {
    core::save_session_dump(result, *opts.dump_path);
    std::printf("\nsession dump: %s (re-render with impress_analyze)\n",
                opts.dump_path->c_str());
  }
  if (opts.trace_path) {
    core::write_text_file(*opts.trace_path,
                          obs::chrome_trace_json(result.trace, 2) + "\n");
    std::printf("\ntrace: %s (%zu spans; open in Perfetto or "
                "chrome://tracing)\n",
                opts.trace_path->c_str(), result.trace.size());
  }
  if (opts.metrics_path) {
    core::write_text_file(*opts.metrics_path,
                          obs::prometheus_text(result.metrics));
    std::printf("metrics: %s (%zu counters, %zu gauges, %zu histograms)\n",
                opts.metrics_path->c_str(), result.metrics.counters.size(),
                result.metrics.gauges.size(),
                result.metrics.histograms.size());
  }
  return result.failed_tasks == 0 ? 0 : 1;
}
