// Plugging a custom sequence generator into the pipeline — the paper's
// closing claim: "IMPRESS allows any sequence generation method to be
// plugged into the design pipeline."
//
//   $ ./examples/custom_generator [seed]
//
// Three generators run the same campaign:
//   1. the ProteinMPNN surrogate (default),
//   2. EvoPro-style random mutagenesis (built-in alternative),
//   3. a user-defined "charge-greedy" generator written right here.

#include <cstdio>
#include <string>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

namespace {

/// A deliberately simple user generator: mutate pocket positions toward
/// residues whose charge complements the peptide's net charge. Shows the
/// full extent of the SequenceGenerator contract.
class ChargeGreedyGenerator final : public core::SequenceGenerator {
 public:
  explicit ChargeGreedyGenerator(std::size_t num_sequences = 10)
      : num_sequences_(num_sequences) {}

  std::vector<mpnn::ScoredSequence> generate(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape,
      common::Rng& rng) const override {
    int peptide_charge = 0;
    for (auto aa : complex.peptide().sequence)
      peptide_charge += protein::charge(aa);
    // Complementary-charge residues to sprinkle into the pocket.
    const auto pool = peptide_charge < 0
                          ? std::vector<protein::AminoAcid>{
                                protein::AminoAcid::kArg,
                                protein::AminoAcid::kLys}
                          : std::vector<protein::AminoAcid>{
                                protein::AminoAcid::kAsp,
                                protein::AminoAcid::kGlu};
    std::vector<mpnn::ScoredSequence> out;
    for (std::size_t s = 0; s < num_sequences_; ++s) {
      auto seq = complex.receptor().sequence;
      for (int m = 0; m < 3; ++m) {
        const auto& iface = landscape.interface_positions();
        const auto pos = iface[rng.below(static_cast<std::uint32_t>(iface.size()))];
        seq.set(pos, pool[rng.below(static_cast<std::uint32_t>(pool.size()))]);
      }
      // Score by salt-bridge count (the generator's own belief).
      double score = 0.0;
      for (auto pos : landscape.interface_positions())
        score += protein::charge(seq[pos]) * (peptide_charge < 0 ? 1 : -1);
      out.push_back({std::move(seq), score});
    }
    return out;
  }

  std::string name() const override { return "charge-greedy"; }

 private:
  std::size_t num_sequences_;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);
  const int cycles = core::calibration::kCycles;

  std::vector<protein::DesignTarget> targets;
  targets.push_back(protein::make_target(
      "PLUGIN-T", 92, protein::alpha_synuclein().tail(10)));

  struct Arm {
    std::string label;
    std::shared_ptr<const core::SequenceGenerator> generator;
  };
  const std::vector<Arm> arms{
      {"proteinmpnn (default)", nullptr},
      {"random-mutagenesis (EvoPro-style)",
       std::make_shared<core::RandomMutagenesisGenerator>(10, 3)},
      {"charge-greedy (user-defined)",
       std::make_shared<ChargeGreedyGenerator>(10)},
  };

  std::printf("generator plug-in comparison (target %s, %d cycles)\n\n",
              targets[0].name.c_str(), cycles);
  std::printf("%-36s %10s %10s %10s %8s\n", "generator", "pLDDT", "pTM",
              "ipAE", "traj");
  for (const auto& arm : arms) {
    auto cfg = core::im_rp_campaign(seed);
    cfg.generator = arm.generator;
    cfg.protocol.spawn_subpipelines = false;
    const auto r = core::Campaign(cfg).run(targets);
    std::printf("%-36s %10.1f %10.3f %10.2f %8zu\n", arm.label.c_str(),
                core::median_at_cycle(r, core::Metric::kPlddt, cycles, cycles),
                core::median_at_cycle(r, core::Metric::kPtm, cycles, cycles),
                core::median_at_cycle(r, core::Metric::kIpae, cycles, cycles),
                r.total_trajectories());
  }
  std::printf("\nstructure-conditioned generation should dominate; the "
              "pipeline machinery is identical across rows.\n");
  return 0;
}
