// Quickstart: design binders for one PDZ domain against the
// alpha-synuclein C-terminus, watching the pipeline stages go by.
//
//   $ ./examples/quickstart [seed]
//
// This is the smallest complete IMPRESS program: one target, one adaptive
// pipeline, the simulated runtime, and a printout of every accepted
// design iteration with its AlphaFold-surrogate confidence metrics.

#include <cstdio>
#include <string>

#include "common/logging.hpp"
#include "core/campaign.hpp"
#include "protein/datasets.hpp"
#include "protein/pdb.hpp"

using namespace impress;

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kInfo);  // show runtime progress
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);

  // 1. A design target: receptor scaffold + peptide to bind. The built-in
  //    datasets synthesize one deterministically from its name.
  std::vector<protein::DesignTarget> targets;
  targets.push_back(protein::make_target(
      "QUICKSTART", 90, protein::alpha_synuclein().tail(10)));
  const auto& target = targets.front();
  std::printf("target %s: %zu-residue receptor vs peptide %s\n",
              target.name.c_str(), target.start_receptor.size(),
              target.peptide.to_string().c_str());

  // 2. An IM-RP campaign: adaptive protocol on a simulated Amarel node.
  auto config = core::im_rp_campaign(seed);
  config.protocol.spawn_subpipelines = false;  // keep the output small
  core::Campaign campaign(config);
  const auto result = campaign.run(targets);

  // 3. Inspect the trajectory.
  std::printf("\naccepted design iterations:\n");
  for (const auto& traj : result.trajectories) {
    for (const auto& rec : traj.history) {
      std::printf(
          "  cycle %d: pLDDT %5.1f  pTM %.3f  ipAE %5.2f  (retries %d)\n",
          rec.cycle, rec.metrics.plddt, rec.metrics.ptm, rec.metrics.ipae,
          rec.retries);
    }
    std::printf("final receptor: %s\n",
                traj.history.empty()
                    ? "(none)"
                    : traj.history.back().sequence.c_str());
  }

  // 4. The final design as a PDB file on stdout (first 3 lines).
  const auto cx = protein::Complex::make(
      target.name,
      protein::Sequence::from_string(
          result.trajectories.front().history.back().sequence),
      target.peptide);
  const auto pdb = protein::to_pdb(cx.structure);
  std::printf("\nPDB head:\n%.*s...\n", 240, pdb.c_str());

  std::printf("\ncampaign: %.1f simulated hours, CPU %.1f%%, GPU %.1f%%\n",
              result.makespan_h, result.utilization.cpu_active * 100.0,
              result.utilization.gpu_active * 100.0);
  return 0;
}
