// Adaptive vs control, side by side: the paper's §III-A experiment on the
// four named PDZ domains, condensed into one program.
//
//   $ ./examples/adaptive_campaign [seed]
//
// Runs CONT-V (sequential, random selection, no pruning) and IM-RP
// (asynchronous, ranked selection, Stage-6 retries, sub-pipelines) on
// identical starting structures and prints the comparison.

#include <cstdio>
#include <string>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "protein/datasets.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::uint64_t seed = 5;
  if (argc > 1) seed = std::stoull(argv[1]);
  const int cycles = core::calibration::kCycles;

  const auto targets = protein::four_pdz_domains();
  std::printf("designing %zu PDZ domains against %s (last 10 residues of "
              "alpha-synuclein)\n\n",
              targets.size(), targets[0].peptide.to_string().c_str());

  const auto cont = core::Campaign(core::cont_v_campaign(seed)).run(targets);
  const auto im = core::Campaign(core::im_rp_campaign(seed)).run(targets);

  std::printf("%s\n", core::table1(cont, im, cycles).render().c_str());

  for (const auto metric :
       {core::Metric::kPlddt, core::Metric::kPtm, core::Metric::kIpae}) {
    std::printf("%s\n",
                core::render_metric_figure("adaptive vs control",
                                           {&cont, &im}, metric, cycles)
                    .c_str());
  }

  std::printf("takeaway: the adaptive arm evaluated %zu trajectories "
              "(%zu sub-pipelines, %zu Stage-6 retries) against the "
              "control's %zu, and converged to better medians on all three "
              "metrics.\n",
              im.total_trajectories(), im.subpipelines, im.fold_retries,
              cont.total_trajectories());
  return 0;
}
