// Watching the middleware itself: run a heterogeneous workload on the
// *threaded* executor (real worker threads, scaled wall-clock) and render
// the pilot's utilization timeline plus the profiler's phase breakdown —
// the machinery behind the paper's Figs 4-5.
//
//   $ ./examples/utilization_monitor

#include <cstdio>

#include "common/ascii_chart.hpp"
#include "common/time_util.hpp"
#include "runtime/session.hpp"

using namespace impress;

int main() {
  rp::SessionConfig cfg;
  cfg.mode = rp::ExecutionMode::kThreaded;
  cfg.time_scale = 2e-5;  // one simulated hour ~ 72 ms wall
  cfg.worker_threads = 12;
  rp::Session session(cfg);

  rp::PilotDescription pd;  // one Amarel-like node
  pd.bootstrap_s = 120.0;
  pd.exec_overhead = rp::ExecOverheadModel{.setup_mean_s = 60.0,
                                           .setup_jitter_sigma = 0.2};
  auto pilot = session.submit_pilot(pd);

  // A mixed workload: wide CPU-bound "feature" tasks, narrow GPU tasks,
  // and two-phase tasks like the AlphaFold footprint.
  for (int i = 0; i < 6; ++i)
    session.task_manager().submit(
        rp::make_simple_task("features" + std::to_string(i), 7, 0, 3600.0));
  for (int i = 0; i < 8; ++i)
    session.task_manager().submit(
        rp::make_simple_task("gpu" + std::to_string(i), 2, 1, 1200.0));
  for (int i = 0; i < 3; ++i) {
    rp::TaskDescription td;
    td.name = "twophase" + std::to_string(i);
    td.resources = {.cores = 6, .gpus = 1, .mem_gb = 16.0};
    td.phases.push_back(rp::TaskPhase{.name = "cpu",
                                      .duration_s = 2400.0,
                                      .cores = 6,
                                      .gpus = 0,
                                      .cpu_intensity = 0.9,
                                      .gpu_intensity = 0.0});
    td.phases.push_back(rp::TaskPhase{.name = "gpu",
                                      .duration_s = 1500.0,
                                      .cores = 2,
                                      .gpus = 1,
                                      .cpu_intensity = 0.3,
                                      .gpu_intensity = 0.9});
    session.task_manager().submit(std::move(td));
  }

  std::printf("running 17 tasks on %u cores / %u gpus (threaded executor, "
              "%zu workers)...\n",
              pilot->pool().total_cores(), pilot->pool().total_gpus(),
              cfg.worker_threads);
  session.run();

  const double makespan = pilot->recorder().latest_end();
  common::TimelineChart chart("threaded-run utilization",
                              common::seconds_to_hours(makespan));
  chart.add_row({"CPU", pilot->recorder().cpu_series(80)});
  chart.add_row({"GPU", pilot->recorder().gpu_series(80)});
  std::printf("\n%s\n", chart.render().c_str());

  const auto phases = session.profiler().phase_durations();
  std::printf("profiler phase totals: bootstrap=%s exec_setup=%s running=%s\n",
              common::format_duration(phases.at("bootstrap")).c_str(),
              common::format_duration(phases.at("exec_setup")).c_str(),
              common::format_duration(phases.at("running")).c_str());
  std::printf("tasks done=%zu failed=%zu, makespan %s (simulated)\n",
              session.task_manager().done(), session.task_manager().failed(),
              common::format_duration(makespan).c_str());
  return session.task_manager().failed() == 0 ? 0 : 1;
}
