// impress_analyze: re-render reports from stored session dumps without
// re-simulating (the radical.analytics-style post-processing workflow).
//
//   impress_analyze DUMP.json [DUMP2.json] [--cycles M] [--csv DIR]
//                   [--trace FILE.json] [--metrics FILE] [--gantt]
//
// With one dump: metric series, utilization figure and (optionally) the
// task gantt. With two dumps: a side-by-side Table-I style comparison,
// first dump treated as the baseline. --trace/--metrics re-export the
// observability harvest stored in the first dump (chrome://tracing JSON /
// Prometheus text) without re-running anything.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/export.hpp"
#include "core/report.hpp"
#include "core/session_dump.hpp"
#include "obs/export.hpp"

using namespace impress;

int main(int argc, char** argv) {
  std::vector<std::string> dumps;
  int cycles = core::calibration::kCycles;
  std::optional<std::string> csv_dir;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  bool gantt = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cycles" && i + 1 < argc) {
      cycles = std::stoi(argv[++i]);
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_dir = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: %s DUMP.json [DUMP2.json] [--cycles M] "
                   "[--csv DIR] [--trace FILE.json] [--metrics FILE] "
                   "[--gantt]\n",
                   argv[0]);
      return 2;
    } else {
      dumps.push_back(arg);
    }
  }
  if (dumps.empty() || dumps.size() > 2) {
    std::fprintf(stderr, "expected one or two session dumps\n");
    return 2;
  }

  std::vector<core::CampaignResult> results;
  for (const auto& path : dumps) {
    try {
      results.push_back(core::load_session_dump(path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(), e.what());
      return 1;
    }
    std::printf("loaded %s: campaign '%s', %zu trajectories, %.1f h\n",
                path.c_str(), results.back().name.c_str(),
                results.back().total_trajectories(),
                results.back().makespan_h);
  }
  std::printf("\n");

  if (results.size() == 2) {
    std::printf("%s\n",
                core::table1(results[0], results[1], cycles).render().c_str());
  }

  std::vector<const core::CampaignResult*> arms;
  for (const auto& r : results) arms.push_back(&r);
  for (const auto metric :
       {core::Metric::kPlddt, core::Metric::kPtm, core::Metric::kIpae})
    std::printf("%s\n",
                core::render_metric_figure("stored sessions", arms, metric,
                                           cycles)
                    .c_str());

  for (const auto& r : results)
    std::printf("%s\n",
                core::render_utilization_figure(r, r.name + " utilization")
                    .c_str());

  if (gantt)
    for (const auto& r : results)
      std::printf("%s\n", r.gantt.c_str());

  if (csv_dir)
    for (const auto& r : results) {
      const auto paths = core::export_campaign_csv(r, *csv_dir, cycles);
      for (const auto& p : paths) std::printf("wrote %s\n", p.c_str());
    }

  if (trace_path) {
    if (results[0].trace.empty()) {
      std::fprintf(stderr,
                   "%s holds no trace (run impress_cli with --trace)\n",
                   dumps[0].c_str());
      return 1;
    }
    core::write_text_file(*trace_path,
                          obs::chrome_trace_json(results[0].trace, 2) + "\n");
    std::printf("wrote %s (%zu spans)\n", trace_path->c_str(),
                results[0].trace.size());
  }
  if (metrics_path) {
    if (results[0].metrics.empty()) {
      std::fprintf(stderr,
                   "%s holds no metrics (run impress_cli with --metrics)\n",
                   dumps[0].c_str());
      return 1;
    }
    core::write_text_file(*metrics_path,
                          obs::prometheus_text(results[0].metrics));
    std::printf("wrote %s\n", metrics_path->c_str());
  }
  return 0;
}
